"""A5 [ablation]: per-disk queue scheduling under Hibernator.

The paper assumes FCFS queues (so does the CR optimizer's M/G/1 model).
Seek-aware disciplines (SSTF, SCAN) shorten service times when queues
are deep — which is mostly on Hibernator's slow tiers — so they give
the response-time budget back a little headroom at no energy cost. This
bench quantifies that interaction and checks that FCFS-based planning
is *conservative*: real response times under seek-aware scheduling are
never worse than the FCFS-planned ones.
"""

from __future__ import annotations

import dataclasses

from common import (
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single
from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.traces.tracestats import per_extent_rates

SCHEDULERS = ["fcfs", "sstf", "scan"]


def run_all():
    trace = bench_oltp_trace()
    results = {}
    bases = {}
    for scheduler in SCHEDULERS:
        config = dataclasses.replace(bench_array_config(), scheduler=scheduler)
        base = run_single(trace, config, AlwaysOnPolicy())
        goal = 2.0 * bases.setdefault("goal_base", base).mean_response_s
        hib_config = dataclasses.replace(
            bench_hibernator_config(), prime_rates=per_extent_rates(trace)
        )
        results[scheduler] = (
            base,
            run_single(trace, config, HibernatorPolicy(hib_config), goal_s=goal),
        )
    return bases["goal_base"], results


def test_a5_scheduler(benchmark):
    goal_base, results = run_once(benchmark, run_all)
    goal = 2.0 * goal_base.mean_response_s
    rows = [
        [
            scheduler,
            f"{base.mean_response_s * 1e3:.2f}",
            f"{hib.mean_response_s * 1e3:.2f}",
            f"{100.0 * hib.energy_savings_vs(goal_base):.1f} %",
            "yes" if hib.mean_response_s <= goal else "NO",
        ]
        for scheduler, (base, hib) in results.items()
    ]
    emit("A5", format_table(
        ["scheduler", "Base RT ms", "Hibernator RT ms", "savings", "meets goal"],
        rows,
        title=f"OLTP: queue discipline ablation (goal {goal * 1e3:.2f} ms)",
    ))
    fcfs = results["fcfs"][1]
    for scheduler in ("sstf", "scan"):
        hib = results[scheduler][1]
        # Seek-aware scheduling never hurts the planned outcome...
        assert hib.mean_response_s <= fcfs.mean_response_s * 1.05
        # ...and energy stays in the same band (scheduling moves seek
        # time, not spindle speed).
        assert abs(hib.energy_joules - fcfs.energy_joules) < 0.1 * fcfs.energy_joules
        assert hib.mean_response_s <= goal