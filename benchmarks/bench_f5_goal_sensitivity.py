"""F5 [reconstructed]: Hibernator's energy savings vs the response-time
goal.

The paper's sensitivity sweep: the looser the operator's response-time
limit (slack over the full-speed baseline), the more disks CR can run
slow and the more energy Hibernator saves; with no slack it degenerates
to ≈Base. Savings must grow monotonically with slack (S3).
"""

from __future__ import annotations

from common import (
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single, standard_policies
from repro.analysis.report import format_series
from repro.policies.always_on import AlwaysOnPolicy

SLACKS = [1.05, 1.25, 1.5, 2.0, 3.0, 4.0]


def run_sweep():
    trace = bench_oltp_trace()
    config = bench_array_config()
    base = run_single(trace, config, AlwaysOnPolicy())
    points = []
    for slack in SLACKS:
        goal = slack * base.mean_response_s
        policy = standard_policies(trace, config, bench_hibernator_config())[-1][0]
        result = run_single(trace, config, policy, goal_s=goal)
        savings = result.energy_savings_vs(base)
        meets = result.mean_response_s <= goal
        points.append((slack, savings, meets))
    return points


def test_f5_goal_sensitivity(benchmark):
    points = run_once(benchmark, run_sweep)
    text = format_series(
        "OLTP: Hibernator energy savings vs response-time slack",
        [(s, 100.0 * sav) for s, sav, _ in points],
        x_label="slack (x base RT)", y_label="savings %",
    )
    emit("F5", text)
    savings = [sav for _, sav, _ in points]
    # S3: monotone non-decreasing in slack (tiny numerical wiggle allowed).
    for a, b in zip(savings, savings[1:]):
        assert b >= a - 0.02
    # Tight goal -> nearly Base; loose goal -> large savings.
    assert savings[0] < 0.25
    assert savings[-1] > 0.45
    assert savings[-1] > savings[0] + 0.2
    # The goal is met at every point.
    assert all(meets for _, _, meets in points)
