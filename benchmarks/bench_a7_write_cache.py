"""A7 [extension]: controller write-back cache (NVRAM).

Arrays of the paper's era shipped NVRAM write caches: writes acknowledge
at controller latency and destage in the background. That removes write
latency from the goal accounting (reads still pay the spindle), so
Hibernator can run slower tiers within the same goal — the cache and
the energy manager compound.
"""

from __future__ import annotations

import dataclasses

from common import (
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single
from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.traces.tracestats import per_extent_rates


def run_all():
    trace = bench_oltp_trace()
    results = {}
    for cached in (False, True):
        config = dataclasses.replace(bench_array_config(), write_cache=cached)
        base = run_single(trace, config, AlwaysOnPolicy())
        goal = 2.0 * base.mean_response_s
        hib_config = dataclasses.replace(
            bench_hibernator_config(), prime_rates=per_extent_rates(trace)
        )
        hib = run_single(trace, config, HibernatorPolicy(hib_config), goal_s=goal)
        results[cached] = (base, goal, hib)
    return results


def test_a7_write_cache(benchmark):
    results = run_once(benchmark, run_all)
    rows = []
    for cached, (base, goal, hib) in results.items():
        rows.append([
            "NVRAM write-back" if cached else "write-through",
            f"{base.mean_response_s * 1e3:.2f}",
            f"{hib.mean_response_s * 1e3:.2f}",
            f"{100.0 * hib.energy_savings_vs(base):.1f} %",
            "yes" if hib.mean_response_s <= goal else "NO",
        ])
    emit("A7", format_table(
        ["controller", "Base RT ms", "Hibernator RT ms", "savings", "meets goal"],
        rows,
        title="OLTP: write-back cache x Hibernator",
    ))
    plain_base, plain_goal, plain_hib = results[False]
    cached_base, cached_goal, cached_hib = results[True]
    # The cache alone speeds up the baseline (writes at controller latency).
    assert cached_base.mean_response_s < plain_base.mean_response_s
    # Hibernator still meets its goal with the cache, saving at least as
    # much as without it.
    assert cached_hib.mean_response_s <= cached_goal
    assert cached_hib.energy_savings_vs(cached_base) >= \
        plain_hib.energy_savings_vs(plain_base) - 0.03