"""A2 [ablation]: coarse-grained (CR) vs fine-grained (DRPM-style) speed
setting.

DESIGN.md's granularity question: both exploit multi-speed disks, but
CR plans a whole epoch against a queueing model and a goal, while DRPM
reacts per-window per-disk with no goal. On OLTP the reactive scheme
serves a large share of requests at the wrong speed (it only ramps up
*after* queues build), blowing the goal; CR meets it.
"""

from __future__ import annotations

from common import (
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single, standard_policies
from repro.analysis.report import format_table
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.drpm import DrpmConfig, DrpmPolicy


def run_all():
    trace = bench_oltp_trace()
    config = bench_array_config()
    base = run_single(trace, config, AlwaysOnPolicy())
    goal = 2.0 * base.mean_response_s
    hibernator = standard_policies(trace, config, bench_hibernator_config())[-1][0]
    results = {
        "Hibernator (coarse/CR)": run_single(trace, config, hibernator, goal_s=goal),
        "DRPM (fine/reactive)": run_single(
            trace, config, DrpmPolicy(DrpmConfig()), goal_s=goal
        ),
    }
    return base, goal, results


def test_a2_granularity(benchmark):
    base, goal, results = run_once(benchmark, run_all)
    rows = [
        [
            name,
            f"{100.0 * result.energy_savings_vs(base):.1f} %",
            f"{result.mean_response_s * 1e3:.2f}",
            f"{result.speed_changes}",
            "yes" if result.mean_response_s <= goal else "NO",
        ]
        for name, result in results.items()
    ]
    emit("A2", format_table(
        ["speed setting", "savings", "mean RT ms", "speed changes", "meets goal"],
        rows,
        title=f"OLTP: coarse vs fine-grained speed control (goal {goal * 1e3:.2f} ms)",
    ))
    coarse = results["Hibernator (coarse/CR)"]
    fine = results["DRPM (fine/reactive)"]
    # Coarse-grained meets the goal; reactive does not.
    assert coarse.mean_response_s <= goal
    assert fine.mean_response_s > goal
    # Both save real energy (the disks are the same hardware).
    assert coarse.energy_savings_vs(base) > 0.25
    assert fine.energy_savings_vs(base) > 0.25
    # Fine-grained control changes speeds far more often.
    assert fine.speed_changes > 4 * max(coarse.speed_changes, 1)