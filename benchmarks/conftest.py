"""Benchmark-suite configuration.

``pytest benchmarks/ --benchmark-only`` runs every experiment once
(pedantic single-round timing) — the experiments are full simulations,
so multi-round statistical timing would multiply minutes of runtime for
no insight.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow `import common` regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
