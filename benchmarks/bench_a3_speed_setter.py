"""A3 [ablation]: what the queueing model buys — CR vs utilization
targeting.

Both setters are coarse-grained and epoch-based; they differ only in how
they pick speeds. The naive setter caps average utilization; CR
constrains *predicted response time against the operator's goal*.

Utilization is the wrong control variable because it does not see the
goal: a fixed target that happens to land near one goal (a low target
can luck into high savings just inside a loose goal) fails the moment
the goal tightens — the configuration it picks is goal-independent. A
high target under-spins, the boost takes over, and the savings die. CR
adapts to whichever goal it is given. The bench runs every setter at two
goal levels and checks that no fixed target matches CR at both.
"""

from __future__ import annotations

import dataclasses

from common import (
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single
from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.traces.tracestats import per_extent_rates

UTIL_TARGETS = [0.3, 0.6]
SLACKS = [1.35, 2.0]


def run_all():
    trace = bench_oltp_trace()
    config = bench_array_config()
    base = run_single(trace, config, AlwaysOnPolicy())
    prime = per_extent_rates(trace)
    results = {}
    for slack in SLACKS:
        goal = slack * base.mean_response_s
        cr_config = dataclasses.replace(bench_hibernator_config(), prime_rates=prime)
        results[("CR", slack)] = run_single(
            trace, config, HibernatorPolicy(cr_config), goal_s=goal
        )
        for target in UTIL_TARGETS:
            util_config = dataclasses.replace(
                bench_hibernator_config(),
                speed_setter="utilization",
                util_target=target,
                prime_rates=prime,
            )
            results[(f"util<={target:g}", slack)] = run_single(
                trace, config, HibernatorPolicy(util_config), goal_s=goal
            )
    return base, results


def test_a3_speed_setter(benchmark):
    base, results = run_once(benchmark, run_all)
    rows = [
        [
            setter,
            f"{slack:g}x",
            f"{100.0 * result.energy_savings_vs(base):.1f} %",
            f"{result.mean_response_s * 1e3:.2f}",
            f"{result.extras.get('boosts', 0):.0f}",
            "yes" if result.mean_response_s <= slack * base.mean_response_s else "NO",
        ]
        for (setter, slack), result in results.items()
    ]
    emit("A3", format_table(
        ["setter", "goal slack", "savings", "mean RT ms", "boosts", "meets goal"],
        rows,
        title="OLTP: CR vs utilization targeting, two goal levels",
    ))

    def ok(setter, slack):
        result = results[(setter, slack)]
        goal = slack * base.mean_response_s
        return result.mean_response_s <= goal, result.energy_savings_vs(base)

    # CR meets both goals; it saves when the goal has room (2x) and
    # correctly degenerates to ~Base when it does not (1.35x) — never
    # negative, never violating.
    for slack in SLACKS:
        meets, savings = ok("CR", slack)
        assert meets
        assert savings > -0.02
    assert ok("CR", 2.0)[1] > 0.1
    # No fixed utilization target matches CR at *both* goal levels:
    # at each level it either misses the goal outright or (after the
    # boost rescues it) saves materially less than CR.
    for target in UTIL_TARGETS:
        wins_both = True
        for slack in SLACKS:
            meets, savings = ok(f"util<={target:g}", slack)
            _, cr_savings = ok("CR", slack)
            if not meets or savings < cr_savings - 0.02:
                wins_both = False
        assert not wins_both, f"util<={target} matched CR at every goal"