"""F4 [reconstructed]: response time on the Cello99-style file server,
against the goal.

TPM's savings on this workload come at the price of spin-up stalls
(multi-second worst-case latencies); Hibernator's come with the goal
intact.
"""

from __future__ import annotations

from common import cello_comparison, emit
from conftest import run_once

from repro.analysis.report import format_table


def build():
    comparison = cello_comparison()
    rows = [
        [
            name,
            f"{result.mean_response_s * 1e3:.2f}",
            f"{result.p99_response_s * 1e3:.2f}",
            f"{result.max_response_s * 1e3:.0f}",
            f"{result.spinups}",
            "yes" if result.mean_response_s <= comparison.goal_s else "NO",
        ]
        for name, result in comparison.results.items()
    ]
    return comparison, format_table(
        ["scheme", "mean ms", "p99 ms", "max ms", "spin-ups", "meets goal"],
        rows,
        title=f"Cello: response time vs goal ({comparison.goal_s * 1e3:.2f} ms)",
    )


def test_f4_cello_response(benchmark):
    comparison, table = run_once(benchmark, build)
    emit("F4", table)
    goal = comparison.goal_s
    hib = comparison.results["Hibernator"]
    tpm = comparison.results["TPM"]
    assert hib.mean_response_s <= goal
    # If TPM slept at all, it paid multi-second spin-up stalls, far
    # worse than anything Hibernator's slow tiers inflict.
    if tpm.spinups > 0:
        assert tpm.max_response_s >= 2.0
        assert hib.max_response_s < tpm.max_response_s
