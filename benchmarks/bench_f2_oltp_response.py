"""F2 [reconstructed]: average response time of each scheme on OLTP,
against the response-time goal.

The companion of F1: energy savings only count if the goal survives.
Hibernator stays within the goal; DRPM (goal-blind) blows through it.
"""

from __future__ import annotations

from common import emit, oltp_comparison
from conftest import run_once

from repro.analysis.report import format_table


def build():
    comparison = oltp_comparison()
    rows = [
        [
            name,
            f"{result.mean_response_s * 1e3:.2f}",
            f"{result.p95_response_s * 1e3:.2f}",
            f"{result.p99_response_s * 1e3:.2f}",
            f"{result.mean_response_s / comparison.goal_s:.2f}",
            "yes" if result.mean_response_s <= comparison.goal_s else "NO",
        ]
        for name, result in comparison.results.items()
    ]
    table = format_table(
        ["scheme", "mean ms", "p95 ms", "p99 ms", "RT/goal", "meets goal"],
        rows,
        title=f"OLTP: response time vs goal ({comparison.goal_s * 1e3:.2f} ms)",
    )
    return comparison, table


def test_f2_oltp_response(benchmark):
    comparison, table = run_once(benchmark, build)
    emit("F2", table)
    goal = comparison.goal_s
    # S2: Hibernator meets the goal.
    assert comparison.results["Hibernator"].mean_response_s <= goal
    # S2: DRPM does not (no goal awareness).
    assert comparison.results["DRPM"].mean_response_s > goal
    # Base and TPM are (trivially) within the goal on steady OLTP.
    assert comparison.results["Base"].mean_response_s <= goal
    assert comparison.results["TPM"].mean_response_s <= goal
