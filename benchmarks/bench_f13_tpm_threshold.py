"""F13 [reconstructed]: TPM spin-down threshold sensitivity.

The classic trade-off the fixed-threshold scheme cannot escape: a short
threshold sleeps eagerly (more savings, more spin-up stalls and more
round-trip transition energy), a long one barely sleeps. The bench
sweeps the threshold as multiples of the break-even time on the
file-server day and shows that no point on the curve touches what
Hibernator gets at the same response-time goal (F3/F4).
"""

from __future__ import annotations

from common import bench_array_config, bench_cello_trace, emit
from conftest import run_once

from repro.analysis.experiments import run_single
from repro.analysis.report import format_table
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.tpm import TpmConfig, TpmPolicy, breakeven_seconds

MULTIPLES = [0.25, 0.5, 1.0, 2.0, 4.0]


def run_sweep():
    trace = bench_cello_trace()
    config = bench_array_config()
    base = run_single(trace, config, AlwaysOnPolicy())
    goal = 2.0 * base.mean_response_s
    rows = []
    for multiple in MULTIPLES:
        result = run_single(
            trace, config,
            TpmPolicy(TpmConfig(threshold_multiple=multiple)),
            goal_s=goal,
        )
        rows.append((multiple, result.energy_savings_vs(base),
                     result.mean_response_s, result.spinups))
    return base, goal, rows


def test_f13_tpm_threshold(benchmark):
    base, goal, rows = run_once(benchmark, run_sweep)
    breakeven = breakeven_seconds(bench_array_config().spec)
    emit("F13", format_table(
        ["threshold (x break-even)", "threshold s", "savings %", "mean RT ms", "spin-ups"],
        [
            [f"{m:g}", f"{m * breakeven:.0f}", f"{100 * sav:.1f}",
             f"{rt * 1e3:.1f}", f"{spinups}"]
            for m, sav, rt, spinups in rows
        ],
        title="Cello: TPM spin-down threshold sweep",
    ))
    by_multiple = {m: (sav, rt, spinups) for m, sav, rt, spinups in rows}
    # Eager thresholds sleep more (more spin-ups, more savings).
    assert by_multiple[0.25][2] > by_multiple[4.0][2]
    assert by_multiple[0.25][0] > by_multiple[4.0][0]
    # But every threshold that saves anything blows the goal by an order
    # of magnitude — the fixed-threshold scheme has no goal-respecting
    # operating point on this workload.
    for m, (sav, rt, spinups) in by_multiple.items():
        if sav > 0.05:
            assert rt > 2.0 * goal, f"threshold {m} saved energy within the goal"