"""F6 [reconstructed]: sensitivity to the epoch length.

Why Hibernator is *coarse*-grained: each reconfiguration costs spindle
transitions and migration I/O, and heat observed over a short window is
noisy, so short epochs thrash — they flip configurations, stall queues
mid-transition, trip the boost, and burn their own savings. Epochs of
one drift period and beyond amortize those costs and track the workload
with a fraction of the migration traffic.

Measured on a 4-"day" drifting file server (each compressed day shifts
30% of the working set): 300 s epochs manage 14% savings with 11
boosts; 3600 s epochs reach ~59% with none. This is the paper's
argument for multi-hour epochs, reproduced from the cost side; the
opposing pressure (epochs so long the layout goes stale) only bites
when the goal is tight enough that stranded-hot-data tiers violate it —
the regime F9/A1 probe directly.
"""

from __future__ import annotations

from common import (
    bench_array_config,
    bench_hibernator_config,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single, standard_policies
from repro.analysis.report import format_table
from repro.policies.always_on import AlwaysOnPolicy
from repro.traces.cello import CelloConfig, generate_cello

DAY_S = 3600.0  # drift period (one compressed "day")
EPOCHS = [300.0, 900.0, 3600.0, 10800.0]


def drifting_trace():
    return generate_cello(CelloConfig(
        days=4.0, day_length_s=DAY_S,
        day_rate=60.0, night_rate=10.0,
        drift_per_day=0.3, zipf_theta=1.2,
        burst_period_s=300.0, num_extents=800, seed=76,
    ))


def run_sweep():
    trace = drifting_trace()
    config = bench_array_config()
    base = run_single(trace, config, AlwaysOnPolicy())
    goal = 2.0 * base.mean_response_s
    rows = []
    for epoch_s in EPOCHS:
        policy = standard_policies(
            trace, config, bench_hibernator_config(epoch_seconds=epoch_s)
        )[-1][0]
        result = run_single(trace, config, policy, goal_s=goal)
        rows.append((
            epoch_s,
            result.energy_savings_vs(base),
            result.mean_response_s,
            goal,
            result.migration_extents,
            result.extras.get("boosts", 0.0),
        ))
    return rows


def test_f6_epoch_length(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("F6", format_table(
        ["epoch s", "epochs/drift-period", "savings %", "mean RT ms", "moves", "boosts"],
        [
            [f"{e:.0f}", f"{DAY_S / e:.1f}", f"{100 * sav:.1f}",
             f"{rt * 1e3:.2f}", f"{moves}", f"{boosts:.0f}"]
            for e, sav, rt, _, moves, boosts in rows
        ],
        title="drifting file server (4 compressed days): Hibernator vs epoch length",
    ))
    by_epoch = {e: (sav, moves, boosts) for e, sav, rt, _, moves, boosts in rows}
    # The coarse-grained argument: epochs at or beyond the drift period
    # decisively beat rapid-fire epochs.
    assert by_epoch[3600.0][0] > by_epoch[300.0][0] + 0.1
    assert by_epoch[10800.0][0] > by_epoch[300.0][0] + 0.1
    # Short epochs thrash: boosts fire; long epochs never need one.
    assert by_epoch[300.0][2] > by_epoch[3600.0][2]
    assert by_epoch[10800.0][2] == 0
    # Long epochs also migrate the least (fewer boundary shifts).
    assert by_epoch[10800.0][1] < by_epoch[900.0][1]
    # Every configuration still saves something and meets the goal.
    for _, sav, rt, goal, _, _ in rows:
        assert sav > 0.05
        assert rt <= goal