"""T2 [reconstructed]: the workload-characteristics table.

Regenerates the paper's trace table for the two stand-in workloads: rate,
read/write mix, request sizes, footprint, skew and burstiness — the
properties the substitution note (DESIGN.md) promises each generator
reproduces.
"""

from __future__ import annotations

from common import bench_cello_trace, bench_oltp_trace, emit
from conftest import run_once

from repro.analysis.report import format_table
from repro.traces.tracestats import compute_trace_stats


def build_table():
    oltp = compute_trace_stats(bench_oltp_trace(), window_s=300.0)
    cello = compute_trace_stats(bench_cello_trace(), window_s=3600.0)
    labels = [label for label, _ in oltp.rows()]
    rows = [
        [label, dict(oltp.rows())[label], dict(cello.rows())[label]]
        for label in labels
    ]
    return oltp, cello, format_table(["characteristic", "OLTP", "Cello"], rows,
                                     title="workload characteristics (bench scale)")


def test_t2_workloads(benchmark):
    oltp, cello, table = run_once(benchmark, build_table)
    emit("T2", table)
    # OLTP: steady, skewed, small, read-mostly.
    assert oltp.peak_to_mean_rate < 1.3
    assert oltp.top10pct_access_share > 0.35
    assert oltp.mean_size_bytes < 10_000
    assert 0.6 < oltp.read_fraction < 0.72
    # Cello: diurnal (peaky), mixed sizes.
    assert cello.peak_to_mean_rate > 1.5
    assert cello.mean_size_bytes > oltp.mean_size_bytes
