"""Shared infrastructure for the experiment benchmarks.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index) at *bench scale*: the same array
architecture and workload shapes, scaled down so the whole suite runs in
minutes on a laptop instead of simulating a 24-hour data-center trace.
Absolute joules therefore differ from the paper; the *shape* assertions
(who wins, by roughly what factor) are what each bench checks.

Results are printed and also written to ``benchmarks/results/<id>.txt``
so they survive pytest's output capture.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

from repro.analysis.cache import ResultCache
from repro.analysis.experiments import ComparisonResult, default_array_config, run_comparison
from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorConfig
from repro.traces.cello import CelloConfig, generate_cello
from repro.traces.oltp import OltpConfig, generate_oltp

RESULTS_DIR = Path(__file__).parent / "results"

# Bench scale: 8 disks, 30 simulated minutes of OLTP / 1 simulated day of
# file serving, 10-minute epochs.
OLTP_DISKS = 8
OLTP_EXTENTS = 800
OLTP_RATE = 200.0
OLTP_DURATION = 1800.0
EPOCH_S = 600.0
SLACK = 2.0

CELLO_DAY_RATE = 60.0
CELLO_NIGHT_RATE = 3.0
# The diurnal "day" is compressed to 4 simulated hours so the full
# comparison runs in about a minute; the day/night shape is preserved.
CELLO_DAY_LENGTH_S = 4 * 3600.0
CELLO_EPOCH_S = CELLO_DAY_LENGTH_S / 12.0


def bench_jobs() -> int:
    """Worker processes per comparison (``REPRO_BENCH_JOBS``, default 1).

    Results are identical for any value (runs are pure functions of
    their specs); only wall-clock time changes.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def bench_cache() -> ResultCache | None:
    """On-disk result cache shared by the suite (``REPRO_BENCH_CACHE``).

    Point the variable at a directory to make repeated suite runs skip
    already-simulated (trace, array, policy, goal) configurations.
    Unset (the default) disables caching.
    """
    path = os.environ.get("REPRO_BENCH_CACHE", "")
    return ResultCache(path) if path else None


def bench_oltp_trace():
    return generate_oltp(OltpConfig(
        duration=OLTP_DURATION, rate=OLTP_RATE,
        num_extents=OLTP_EXTENTS, seed=71,
    ))


def bench_cello_trace(days: float = 1.0, seed: int = 72):
    return generate_cello(CelloConfig(
        days=days, day_rate=CELLO_DAY_RATE, night_rate=CELLO_NIGHT_RATE,
        day_length_s=CELLO_DAY_LENGTH_S, burst_period_s=300.0,
        num_extents=OLTP_EXTENTS, seed=seed,
    ))


def bench_array_config(num_disks: int = OLTP_DISKS, num_speed_levels: int = 5,
                       seed: int = 73):
    return default_array_config(
        num_disks=num_disks,
        num_extents=OLTP_EXTENTS,
        num_speed_levels=num_speed_levels,
        seed=seed,
    )


def bench_hibernator_config(epoch_seconds: float = EPOCH_S, **kwargs):
    return HibernatorConfig(epoch_seconds=epoch_seconds, **kwargs)


@functools.lru_cache(maxsize=1)
def oltp_comparison() -> ComparisonResult:
    """The shared OLTP comparison behind F1 and F2."""
    return run_comparison(
        bench_oltp_trace(), bench_array_config(), slack=SLACK,
        hibernator_config=bench_hibernator_config(),
        jobs=bench_jobs(), cache=bench_cache(),
    )


@functools.lru_cache(maxsize=1)
def cello_comparison() -> ComparisonResult:
    """The shared file-server comparison behind F3 and F4.

    Epochs are 1/12 of the (compressed) day — the same epochs-per-day
    ratio as the paper's 2-hour epochs.
    """
    return run_comparison(
        bench_cello_trace(), bench_array_config(), slack=SLACK,
        hibernator_config=bench_hibernator_config(epoch_seconds=CELLO_EPOCH_S),
        jobs=bench_jobs(), cache=bench_cache(),
    )


def emit(experiment_id: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"=== {experiment_id} ==="
    block = f"{banner}\n{text}\n"
    print(block)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id.lower()}.txt").write_text(block, encoding="utf-8")
    return block


def comparison_table(comparison: ComparisonResult, title: str) -> str:
    return format_table(ComparisonResult.HEADERS, comparison.rows(), title=title)
