"""A4 [extension]: adaptive epoch length.

Beyond the paper: F6 shows short epochs thrash and long epochs react
slowly, so let the epoch *adapt* — double it while boundaries keep
choosing the same configuration, reset it when something changes (a new
configuration or a boost). On a steady workload the adaptive controller
should converge to long epochs (fewer reconfigurations, same or better
energy than the short fixed epoch it started from).
"""

from __future__ import annotations

import dataclasses

from common import (
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single
from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.traces.tracestats import per_extent_rates

BASE_EPOCH_S = 150.0


def run_all():
    trace = bench_oltp_trace()
    config = bench_array_config()
    base = run_single(trace, config, AlwaysOnPolicy())
    goal = 2.0 * base.mean_response_s
    prime = per_extent_rates(trace)
    results = {}
    for adaptive in (False, True):
        hib_config = dataclasses.replace(
            bench_hibernator_config(epoch_seconds=BASE_EPOCH_S),
            adaptive_epochs=adaptive,
            prime_rates=prime,
        )
        policy = HibernatorPolicy(hib_config)
        results[adaptive] = run_single(trace, config, policy, goal_s=goal)
    return base, goal, results


def test_a4_adaptive_epochs(benchmark):
    base, goal, results = run_once(benchmark, run_all)
    rows = [
        [
            "adaptive" if adaptive else f"fixed {BASE_EPOCH_S:.0f}s",
            f"{result.extras['epochs']:.0f}",
            f"{result.extras['final_epoch_s']:.0f}s",
            f"{100.0 * result.energy_savings_vs(base):.1f} %",
            f"{result.mean_response_s * 1e3:.2f} ms",
        ]
        for adaptive, result in results.items()
    ]
    emit("A4", format_table(
        ["epochs", "boundaries", "final epoch", "savings", "mean RT"],
        rows,
        title="OLTP (steady): fixed vs adaptive epoch length",
    ))
    fixed, adaptive = results[False], results[True]
    # The adaptive run stretches its epoch and reconfigures less often.
    assert adaptive.extras["final_epoch_s"] > BASE_EPOCH_S
    assert adaptive.extras["epochs"] < fixed.extras["epochs"]
    # At no cost in energy or the goal.
    assert adaptive.energy_savings_vs(base) >= fixed.energy_savings_vs(base) - 0.03
    assert adaptive.mean_response_s <= goal