"""F8 [reconstructed]: migration scheme comparison.

The randomized-shuffling claim (S4): across a multi-day file-server run
whose working set drifts day to day, shuffling moves a small fraction of
the data a full temperature-sorted re-layout moves, at equal or better
energy and response time; disabling migration entirely strands hot data
on slow tiers.
"""

from __future__ import annotations

import dataclasses

from common import (
    CELLO_EPOCH_S,
    bench_array_config,
    bench_cello_trace,
    bench_hibernator_config,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single
from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.traces.tracestats import per_extent_rates

SCHEMES = ["shuffle", "sorted", "none"]


def run_all():
    # Two compressed days with a fast-drifting working set.
    trace = bench_cello_trace(days=2.0, seed=75)
    config = bench_array_config()
    base = run_single(trace, config, AlwaysOnPolicy())
    goal = 2.0 * base.mean_response_s
    results = {}
    for scheme in SCHEMES:
        hib_config = dataclasses.replace(
            bench_hibernator_config(epoch_seconds=CELLO_EPOCH_S),
            migration=scheme,
            prime_rates=per_extent_rates(trace),
        )
        results[scheme] = run_single(
            trace, config, HibernatorPolicy(hib_config), goal_s=goal
        )
    return base, goal, results


def test_f8_migration(benchmark):
    base, goal, results = run_once(benchmark, run_all)
    rows = [
        [
            scheme,
            f"{results[scheme].migration_extents}",
            f"{results[scheme].migration_bytes >> 20} MiB",
            f"{100.0 * results[scheme].energy_savings_vs(base):.1f} %",
            f"{results[scheme].mean_response_s * 1e3:.2f} ms",
        ]
        for scheme in SCHEMES
    ]
    emit("F8", format_table(
        ["migration", "extents moved", "data moved", "savings", "mean RT"],
        rows,
        title="Cello, 2 drifting days: migration scheme comparison",
    ))
    shuffle, full_sort, none = results["shuffle"], results["sorted"], results["none"]
    # S4: shuffling moves a fraction of what sorting moves.
    assert 0 < shuffle.migration_extents < 0.5 * full_sort.migration_extents
    # Shuffling is no worse on energy than sorting (it does less work).
    assert shuffle.energy_joules <= full_sort.energy_joules * 1.05
    # Migration must pay for itself versus doing nothing: with drift,
    # no-migration serves hot data from slow tiers.
    assert none.migration_extents == 0
    assert shuffle.mean_response_s <= none.mean_response_s * 1.05