"""T1 [reconstructed]: the multi-speed disk model parameter table.

Regenerates the paper's disk-characteristics table: per speed level,
idle/active power, rotation time and transfer rate, plus the transition
costs — the numbers every other experiment's energy arithmetic rests on.
"""

from __future__ import annotations

from common import emit
from conftest import run_once

from repro.analysis.report import format_table
from repro.disks.mechanics import DiskMechanics
from repro.disks.specs import ultrastar_36z15


def build_table() -> str:
    spec = ultrastar_36z15()
    mech = DiskMechanics(spec)
    rows = []
    for rpm in spec.rpm_levels:
        moments = mech.service_moments(rpm, 4096.0)
        rows.append([
            f"{rpm}",
            f"{spec.idle_watts(rpm):.2f}",
            f"{spec.active_watts(rpm):.2f}",
            f"{spec.rotation_s(rpm) * 1e3:.2f}",
            f"{spec.transfer_bps(rpm) / 1e6:.1f}",
            f"{moments.mean * 1e3:.2f}",
        ])
    table = format_table(
        ["RPM", "idle W", "active W", "rotation ms", "MB/s", "E[S] ms (4 KiB)"],
        rows,
        title=f"{spec.name}: speed levels",
    )
    up_s, up_j = spec.transition_cost(0, spec.max_rpm)
    down_s, down_j = spec.transition_cost(spec.max_rpm, 0)
    step_s, step_j = spec.transition_cost(spec.rpm_levels[0], spec.rpm_levels[1])
    extra = format_table(
        ["transition", "seconds", "joules"],
        [
            ["spin-up (0 -> max)", f"{up_s:.1f}", f"{up_j:.0f}"],
            ["spin-down (max -> 0)", f"{down_s:.1f}", f"{down_j:.0f}"],
            ["adjacent speed step", f"{step_s:.2f}", f"{step_j:.1f}"],
        ],
        title="transition costs",
    )
    return table + "\n\n" + extra


def test_t1_disk_model(benchmark):
    text = run_once(benchmark, build_table)
    emit("T1", text)
    spec = ultrastar_36z15()
    # Data-sheet anchors.
    assert abs(spec.idle_watts(spec.max_rpm) - 10.2) < 0.01
    assert abs(spec.active_watts(spec.max_rpm) - 13.5) < 0.01
    # The energy opportunity: slowest level's idle power is a small
    # fraction of full speed's.
    assert spec.idle_watts(spec.min_rpm) < 0.3 * spec.idle_watts(spec.max_rpm)
