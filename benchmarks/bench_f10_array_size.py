"""F10 [reconstructed]: scaling with array size.

The paper's scaling result: Hibernator's relative savings hold (or grow)
as the array widens, because the CR optimizer gets finer-grained control
over how many disks run at each speed. We scale the workload with the
array so per-disk load stays constant.
"""

from __future__ import annotations

from common import OLTP_EXTENTS, bench_hibernator_config, emit
from conftest import run_once

from repro.analysis.experiments import default_array_config, run_single, standard_policies
from repro.analysis.report import format_series
from repro.policies.always_on import AlwaysOnPolicy
from repro.traces.oltp import OltpConfig, generate_oltp

SIZES = [4, 8, 16]
RATE_PER_DISK = 25.0


def run_sweep():
    points = []
    for num_disks in SIZES:
        trace = generate_oltp(OltpConfig(
            duration=1200.0,
            rate=RATE_PER_DISK * num_disks,
            num_extents=OLTP_EXTENTS,
            seed=83,
        ))
        config = default_array_config(num_disks=num_disks,
                                      num_extents=OLTP_EXTENTS, seed=84)
        base = run_single(trace, config, AlwaysOnPolicy())
        goal = 2.0 * base.mean_response_s
        policy = standard_policies(trace, config, bench_hibernator_config())[-1][0]
        result = run_single(trace, config, policy, goal_s=goal)
        points.append((num_disks, result.energy_savings_vs(base),
                       result.mean_response_s <= goal))
    return points


def test_f10_array_size(benchmark):
    points = run_once(benchmark, run_sweep)
    emit("F10", format_series(
        "OLTP (constant per-disk load): Hibernator savings vs array size",
        [(n, 100.0 * sav) for n, sav, _ in points],
        x_label="disks", y_label="savings %",
    ))
    savings = {n: sav for n, sav, _ in points}
    # Substantial savings at every size, goal met everywhere.
    assert all(sav > 0.3 for sav in savings.values())
    assert all(meets for _, _, meets in points)
    # Wider arrays give CR finer control: savings do not degrade.
    assert savings[16] >= savings[4] - 0.05