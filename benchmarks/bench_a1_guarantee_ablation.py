"""A1 [ablation]: the performance guarantee on vs off.

DESIGN.md's S5 at bench scale: on the drifting workload, disabling the
boost leaves the goal violated for the rest of the run (and saves a
little more energy — the trade the guarantee exists to refuse).
"""

from __future__ import annotations


import numpy as np

from bench_f9_boost_timeseries import EPOCH_S, GOAL_S, drift_trace
from common import bench_array_config, emit
from conftest import run_once

from repro.analysis.report import format_table
from repro.core.guarantee import GuaranteeConfig
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.sim.runner import ArraySimulation


def run_both():
    config = bench_array_config()
    trace = drift_trace(config.num_extents)
    prime = np.full(config.num_extents, 12.0 / config.num_extents)
    prime[: config.num_extents // 8] += 120.0 / (config.num_extents // 8)
    results = {}
    for enabled in (True, False):
        policy = HibernatorPolicy(HibernatorConfig(
            epoch_seconds=EPOCH_S,
            prime_rates=prime,
            guarantee=GuaranteeConfig(enabled=enabled,
                                      enter_threshold_requests=25.0),
        ))
        results[enabled] = (policy, ArraySimulation(
            trace, config, policy, goal_s=GOAL_S,
        ).run())
    return results


def test_a1_guarantee_ablation(benchmark):
    results = run_once(benchmark, run_both)
    rows = []
    for enabled in (True, False):
        policy, result = results[enabled]
        boosts = policy.boost.boosts_entered if policy.boost else 0
        rows.append([
            "on" if enabled else "off",
            f"{result.mean_response_s * 1e3:.2f}",
            f"{result.mean_response_s / GOAL_S:.2f}",
            f"{boosts}",
            f"{result.energy_joules / 1e3:.1f} kJ",
        ])
    emit("A1", format_table(
        ["guarantee", "mean RT ms", "RT/goal", "boosts", "energy"],
        rows,
        title=f"drift workload: guarantee ablation (goal {GOAL_S * 1e3:.0f} ms)",
    ))
    _, with_boost = results[True]
    _, without = results[False]
    bound = GOAL_S * 1.1 + 25.0 * GOAL_S / with_boost.num_requests
    # S5: with the boost the average holds; without, the goal is violated.
    assert with_boost.mean_response_s <= bound
    assert without.mean_response_s > GOAL_S
    assert without.mean_response_s > with_boost.mean_response_s
    # The boost costs energy — that is the deliberate trade.
    assert with_boost.energy_joules >= without.energy_joules