"""F9 [reconstructed]: time-series adaptation — the performance boost in
action.

The paper's behaviour-over-time figure: a working-set shift strands the
hot data on a slow tier mid-epoch; response time climbs past the goal;
the boost spins the array to full speed; at the next epoch boundary CR
re-tiers for the new hot set and savings resume. We print the windowed
response time and mean RPM series and check each phase.
"""

from __future__ import annotations

import numpy as np

from common import bench_array_config, emit
from conftest import run_once

from repro.analysis.report import format_table
from repro.core.guarantee import GuaranteeConfig
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.sim.runner import ArraySimulation
from repro.traces.model import trace_from_columns
from repro.traces.synthetic import interleave_traces

GOAL_S = 9.0e-3
EPOCH_S = 400.0


def drift_trace(num_extents: int):
    """300 s with one hot set, then 900 s with another."""

    def phase(start, dur, hot_lo, seed):
        rng = np.random.default_rng(seed)
        n_hot, n_cold = int(120.0 * dur), int(12.0 * dur)
        t = np.sort(rng.uniform(start, start + dur, n_hot + n_cold))
        ext = np.concatenate([
            rng.integers(hot_lo, hot_lo + num_extents // 8, n_hot),
            rng.integers(0, num_extents, n_cold),
        ])
        rng.shuffle(ext)
        return trace_from_columns("ph", num_extents, t, np.ones(len(t), bool),
                                  ext[: len(t)], np.full(len(t), 4096))

    return interleave_traces("drift", [
        phase(0.0, 300.0, 0, 81),
        phase(300.0, 900.0, num_extents * 3 // 4, 82),
    ])


def run_experiment():
    config = bench_array_config()
    trace = drift_trace(config.num_extents)
    prime = np.full(config.num_extents, 12.0 / config.num_extents)
    prime[: config.num_extents // 8] += 120.0 / (config.num_extents // 8)
    policy = HibernatorPolicy(HibernatorConfig(
        epoch_seconds=EPOCH_S,
        prime_rates=prime,
        guarantee=GuaranteeConfig(enter_threshold_requests=25.0),
    ))
    sim = ArraySimulation(trace, config, policy, goal_s=GOAL_S, window_s=60.0)
    result = sim.run()
    return policy, result


def test_f9_boost_timeseries(benchmark):
    policy, result = run_once(benchmark, run_experiment)
    speeds = {round(t): rpm for t, rpm, _ in result.speed_samples}
    rows = [
        [f"{t:.0f}", f"{rt * 1e3:.2f}" if n else "-", f"{n}",
         f"{speeds.get(round(t), float('nan')):.0f}"]
        for t, rt, n in result.latency_windows
    ]
    emit("F9", format_table(
        ["t (s)", "window mean RT ms", "requests", "mean rpm"],
        rows,
        title=f"drift workload: response time and speed over time (goal {GOAL_S * 1e3:.0f} ms)",
    ))
    # Phase 1 (pre-drift): tiered, below goal, not at full speed.
    pre = [rt for t, rt, n in result.latency_windows if t < 240 and n]
    assert max(pre) <= GOAL_S
    assert result.speed_samples[2][1] < 15000.0
    # The drift triggers at least one boost.
    assert policy.boost is not None and policy.boost.boosts_entered >= 1
    # During the boost the array runs at (near) full speed.
    boosted_rpms = [rpm for t, rpm, _ in result.speed_samples if 400 <= t <= 500]
    assert max(boosted_rpms) > 14000.0
    # The guarantee: cumulative average ends within the goal plus the
    # bounded entry overshoot.
    bound = GOAL_S * 1.1 + 25.0 * GOAL_S / result.num_requests
    assert result.mean_response_s <= bound
    # After re-tiering, the tail windows are back under the goal.
    tail = [rt for t, rt, n in result.latency_windows if t >= 900 and n]
    assert np.mean(tail) <= GOAL_S