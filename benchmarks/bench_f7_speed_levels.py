"""F7 [reconstructed]: effect of the number of disk speed levels.

The hardware design question the paper asks of multi-speed disks: how
many RPM levels are worth building? One level (a conventional disk)
gives Hibernator nothing to work with; two levels capture a large share
of the benefit; more levels add diminishing returns (S6).
"""

from __future__ import annotations

from common import bench_array_config, bench_hibernator_config, bench_oltp_trace, emit
from conftest import run_once

from repro.analysis.experiments import run_single, standard_policies
from repro.analysis.report import format_series
from repro.policies.always_on import AlwaysOnPolicy

LEVELS = [1, 2, 3, 5]


def run_sweep():
    trace = bench_oltp_trace()
    points = []
    for levels in LEVELS:
        config = bench_array_config(num_speed_levels=levels)
        base = run_single(trace, config, AlwaysOnPolicy())
        goal = 2.0 * base.mean_response_s
        policy = standard_policies(trace, config, bench_hibernator_config())[-1][0]
        result = run_single(trace, config, policy, goal_s=goal)
        points.append((levels, result.energy_savings_vs(base),
                       result.mean_response_s <= goal))
    return points


def test_f7_speed_levels(benchmark):
    points = run_once(benchmark, run_sweep)
    emit("F7", format_series(
        "OLTP: Hibernator savings vs number of speed levels",
        [(lv, 100.0 * sav) for lv, sav, _ in points],
        x_label="speed levels", y_label="savings %",
    ))
    savings = {lv: sav for lv, sav, _ in points}
    # One level = conventional single-speed disks: nothing to exploit.
    assert abs(savings[1]) < 0.05
    # Two levels already unlock a large share of the benefit.
    assert savings[2] > 0.2
    # More levels keep helping, with diminishing returns (S6).
    assert savings[3] >= savings[2] - 0.02
    assert savings[5] >= savings[3] - 0.02
    gain_1_to_2 = savings[2] - savings[1]
    gain_3_to_5 = savings[5] - savings[3]
    assert gain_1_to_2 > gain_3_to_5
    # The goal holds at every level count.
    assert all(meets for _, _, meets in points)
