"""F11 [reconstructed]: OLTP on RAID-5.

The paper's OLTP volume was RAID-5, where every logical write costs four
physical I/Os (read-modify-write on data + parity). The extra physical
load shrinks the slack CR can convert into slow tiers, so savings drop
versus the striped volume — but the ranking and the goal guarantee must
survive.
"""

from __future__ import annotations

import dataclasses

from common import (
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single
from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.traces.tracestats import per_extent_rates


def run_all():
    trace = bench_oltp_trace()
    results = {}
    for raid5 in (False, True):
        config = dataclasses.replace(bench_array_config(), raid5=raid5)
        base = run_single(trace, config, AlwaysOnPolicy())
        goal = 2.0 * base.mean_response_s
        hib_config = dataclasses.replace(
            bench_hibernator_config(),
            prime_rates=per_extent_rates(trace, write_weight=4.0 if raid5 else 1.0),
        )
        hib = run_single(trace, config, HibernatorPolicy(hib_config), goal_s=goal)
        results[raid5] = (base, goal, hib)
    return results


def test_f11_raid5(benchmark):
    results = run_once(benchmark, run_all)
    rows = []
    for raid5, (base, goal, hib) in results.items():
        rows.append([
            "RAID-5" if raid5 else "striped",
            f"{base.mean_response_s * 1e3:.2f}",
            f"{hib.mean_response_s * 1e3:.2f}",
            f"{100.0 * hib.energy_savings_vs(base):.1f} %",
            "yes" if hib.mean_response_s <= goal else "NO",
        ])
    emit("F11", format_table(
        ["volume", "Base RT ms", "Hibernator RT ms", "savings", "meets goal"],
        rows,
        title="OLTP: striped vs RAID-5 volume",
    ))
    striped_base, striped_goal, striped_hib = results[False]
    raid_base, raid_goal, raid_hib = results[True]
    # Write amplification slows the baseline itself.
    assert raid_base.mean_response_s > striped_base.mean_response_s
    # Hibernator still saves real energy and meets the goal on RAID-5.
    assert raid_hib.energy_savings_vs(raid_base) > 0.15
    assert raid_hib.mean_response_s <= raid_goal
    # But the extra physical load costs savings versus the striped volume.
    assert raid_hib.energy_savings_vs(raid_base) <= striped_hib.energy_savings_vs(striped_base) + 0.02