"""F12 [extension]: RAID-5 degraded mode under a failure sweep.

Beyond the paper: what disk failures do to the energy/performance
picture. Reads of a dead disk's data reconstruct from all survivors
(N-1 physical reads), writes degrade to parity-only updates, and the
dead spindle burns nothing. The fault plan schedules whole-disk
failures mid-run and the array rebuilds onto distributed spare slots.
One failure loses nothing. A second failure — even long after the
first rebuild finished — briefly loses requests: parity stripes span
the full array width, so reconstructing the newly dead disk's data
needs a read on *every* other disk, and one of them is permanently
gone. Only the second exposure window (failure until rebuild
re-protects the extent) is affected, so losses stay a tiny fraction of
the trace.

Hibernator keeps operating throughout: on each failure it cancels
in-flight migration, re-solves speed assignment over the survivors and
pins them at full speed until the rebuild completes, so the degraded
rows trade back some savings for the repair.
"""

from __future__ import annotations

import dataclasses

from common import (
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorPolicy
from repro.faults.plan import DiskFailure, FaultPlan
from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.runner import ArraySimulation
from repro.traces.tracestats import per_extent_rates

#: Failure schedule for the sweep: the second failure lands well after
#: the first rebuild completes, so each exposure window is single-disk.
FAILURE_TIMES = (300.0, 900.0)


def _plan(num_failures: int) -> FaultPlan | None:
    if num_failures == 0:
        return None
    return FaultPlan(disk_failures=tuple(
        DiskFailure(time_s=FAILURE_TIMES[i], disk=i)
        for i in range(num_failures)
    ))


def run_all():
    trace = bench_oltp_trace()
    config = dataclasses.replace(bench_array_config(), raid5=True)

    def run(policy, num_failures: int, goal=None):
        sim = ArraySimulation(trace, config, policy, goal_s=goal,
                              faults=_plan(num_failures))
        return sim.run()

    base = {n: run(AlwaysOnPolicy(), n) for n in (0, 1, 2)}
    goal = 2.0 * base[0].mean_response_s
    hib_config = dataclasses.replace(
        bench_hibernator_config(),
        prime_rates=per_extent_rates(trace, write_weight=4.0),
    )
    hib = {n: run(HibernatorPolicy(hib_config), n, goal=goal)
           for n in (0, 1, 2)}
    return base, hib, goal


def _row(label, result, goal=None):
    rebuilt = result.extras.get("fault_rebuilt_extents", 0)
    unplaced = result.extras.get("fault_unplaced_extents", 0)
    return [
        label,
        f"{result.mean_response_s * 1e3:.2f}",
        f"{result.energy_joules / 1e3:.1f}",
        f"{result.failed_requests}",
        f"{rebuilt:g}/{unplaced:g}",
        "-" if goal is None else ("yes" if result.mean_response_s <= goal else "NO"),
    ]


def test_f12_degraded(benchmark):
    base, hib, goal = run_once(benchmark, run_all)
    rows = []
    for n in (0, 1, 2):
        tag = "healthy" if n == 0 else f"{n} disk(s) failed"
        rows.append(_row(f"Base, {tag}", base[n]))
    for n in (0, 1, 2):
        tag = "healthy" if n == 0 else f"{n} disk(s) failed"
        rows.append(_row(f"Hibernator, {tag}", hib[n], goal=goal))
    emit("F12", format_table(
        ["configuration", "mean RT ms", "energy kJ", "lost requests",
         "rebuilt/unplaced", "meets goal"],
        rows,
        title=f"OLTP on RAID-5: failure sweep with rebuild "
              f"(goal {goal * 1e3:.2f} ms)",
    ))
    trace_len = base[0].num_requests + base[0].failed_requests
    for n in (1, 2):
        # Every failed disk's extents found spare slots.
        assert base[n].extras["fault_unplaced_extents"] == 0
        assert hib[n].extras["fault_unplaced_extents"] == 0
        assert base[n].extras["fault_failures_injected"] == n
    # RAID-5 plus rebuild loses nothing to a single failure.
    assert base[1].failed_requests == 0
    assert hib[1].failed_requests == 0
    # A second failure breaks full-width stripes whose data sat on the
    # newly dead disk, but only until the rebuild re-protects them:
    # losses stay a sliver of the trace.
    for result in (base[2], hib[2]):
        assert 0 < result.failed_requests < 0.005 * trace_len
    # Reconstruction amplification slows the degraded baseline.
    assert base[1].mean_response_s > base[0].mean_response_s
    # Dead spindles stop burning power; reconstruction adds load but the
    # net stays below healthy.
    assert base[2].energy_joules < base[1].energy_joules < base[0].energy_joules
    # Hibernator still operates and saves energy in every configuration.
    for n in (0, 1, 2):
        assert hib[n].energy_joules < base[n].energy_joules
