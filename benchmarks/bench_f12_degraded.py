"""F12 [extension]: RAID-5 degraded mode.

Beyond the paper: what a disk failure does to the energy/performance
picture. Reads of the dead disk's data reconstruct from all survivors
(N-1 physical reads), writes degrade to parity-only updates, and the
dead spindle burns nothing. Response time rises; Hibernator keeps
operating (its migration routes around the failed disk) and the boost
absorbs the extra load if the goal is threatened.
"""

from __future__ import annotations

import dataclasses

from common import (
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.runner import ArraySimulation
from repro.traces.tracestats import per_extent_rates


def run_all():
    trace = bench_oltp_trace()
    config = dataclasses.replace(bench_array_config(), raid5=True)

    def run(policy, fail: bool, goal=None):
        sim = ArraySimulation(trace, config, policy, goal_s=goal)
        if fail:
            sim.array.fail_disk(0)
        return sim.run()

    base_healthy = run(AlwaysOnPolicy(), fail=False)
    base_degraded = run(AlwaysOnPolicy(), fail=True)
    goal = 2.0 * base_healthy.mean_response_s
    hib_config = dataclasses.replace(
        bench_hibernator_config(),
        prime_rates=per_extent_rates(trace, write_weight=4.0),
    )
    hib_degraded = run(HibernatorPolicy(hib_config), fail=True, goal=goal)
    return base_healthy, base_degraded, hib_degraded, goal


def test_f12_degraded(benchmark):
    base_healthy, base_degraded, hib_degraded, goal = run_once(benchmark, run_all)
    rows = [
        ["Base, healthy", f"{base_healthy.mean_response_s * 1e3:.2f}",
         f"{base_healthy.energy_joules / 1e3:.1f}", "0", "-"],
        ["Base, 1 disk failed", f"{base_degraded.mean_response_s * 1e3:.2f}",
         f"{base_degraded.energy_joules / 1e3:.1f}",
         f"{base_degraded.failed_requests}", "-"],
        ["Hibernator, 1 disk failed", f"{hib_degraded.mean_response_s * 1e3:.2f}",
         f"{hib_degraded.energy_joules / 1e3:.1f}",
         f"{hib_degraded.failed_requests}",
         "yes" if hib_degraded.mean_response_s <= goal else "NO"],
    ]
    emit("F12", format_table(
        ["configuration", "mean RT ms", "energy kJ", "lost requests", "meets goal"],
        rows,
        title=f"OLTP on RAID-5: degraded-mode behaviour (goal {goal * 1e3:.2f} ms)",
    ))
    # RAID-5 loses nothing to a single failure.
    assert base_degraded.failed_requests == 0
    assert hib_degraded.failed_requests == 0
    # Reconstruction amplification slows the degraded baseline.
    assert base_degraded.mean_response_s > base_healthy.mean_response_s
    # The dead spindle stops burning power but reconstruction adds load;
    # net energy stays below healthy (7 idle spindles < 8).
    assert base_degraded.energy_joules < base_healthy.energy_joules
    # Hibernator still operates and saves energy in degraded mode.
    assert hib_degraded.energy_joules < base_degraded.energy_joules