"""F1 [reconstructed]: energy consumption of each scheme on OLTP.

The paper's headline OLTP figure: Base defines 100%; TPM saves nothing
(no idle gaps beyond break-even); DRPM saves some; PDC/MAID save little
or cost extra (migration/copy traffic with no sleep opportunity);
Hibernator saves the most among schemes that respect the goal.
"""

from __future__ import annotations

from common import comparison_table, emit, oltp_comparison
from conftest import run_once


def test_f1_oltp_energy(benchmark):
    comparison = run_once(benchmark, oltp_comparison)
    emit("F1", comparison_table(comparison, "OLTP: energy and response time by scheme"))
    # S1: TPM is a no-op on steady OLTP.
    assert abs(comparison.savings("TPM")) < 0.05
    assert comparison.results["TPM"].spinups == 0
    # S1: Hibernator achieves substantial savings (paper: ~29-65%).
    assert comparison.savings("Hibernator") > 0.25
    # S2: Hibernator saves the most among schemes that meet the goal.
    # (Goal-blind schemes may save more — by giving up the goal, which
    # F2 checks.)
    goal = comparison.goal_s
    for name, result in comparison.results.items():
        if name != "Hibernator" and result.mean_response_s <= goal:
            assert comparison.savings("Hibernator") > comparison.savings(name)
