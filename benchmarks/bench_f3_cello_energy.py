"""F3 [reconstructed]: energy consumption on the Cello99-style file
server.

The file-server day has deep overnight valleys, so — unlike OLTP —
threshold spin-down (TPM) finally finds gaps to exploit, and every
scheme saves something. Hibernator still leads among goal-respecting
schemes by running the valley hours on slow tiers instead of gambling on
spin-ups.
"""

from __future__ import annotations

from common import cello_comparison, comparison_table, emit
from conftest import run_once


def test_f3_cello_energy(benchmark):
    comparison = run_once(benchmark, cello_comparison)
    emit("F3", comparison_table(comparison, "Cello (file server): energy by scheme"))
    # The diurnal valley makes real savings possible for Hibernator.
    assert comparison.savings("Hibernator") > 0.3
    # Hibernator leads all goal-meeting schemes.
    goal = comparison.goal_s
    for name, result in comparison.results.items():
        if name != "Hibernator" and result.mean_response_s <= goal:
            assert comparison.savings("Hibernator") > comparison.savings(name)
