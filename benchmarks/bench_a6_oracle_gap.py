"""A6 [extension]: the oracle gap.

How close does Hibernator get to an unbeatable offline scheme with
perfect future knowledge and free migration? The gap decomposes the
remaining opportunity: prediction error (the oracle configures each
epoch from the *actual* upcoming rates) plus reconfiguration overhead
(the oracle's migration is free).
"""

from __future__ import annotations

import dataclasses

from common import (
    EPOCH_S,
    bench_array_config,
    bench_hibernator_config,
    bench_oltp_trace,
    emit,
)
from conftest import run_once

from repro.analysis.experiments import run_single
from repro.analysis.report import format_table
from repro.core.hibernator import HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.oracle import OraclePolicy
from repro.traces.tracestats import per_extent_rates


def run_all():
    trace = bench_oltp_trace()
    config = bench_array_config()
    base = run_single(trace, config, AlwaysOnPolicy())
    goal = 2.0 * base.mean_response_s
    hib_config = dataclasses.replace(
        bench_hibernator_config(), prime_rates=per_extent_rates(trace)
    )
    hibernator = run_single(trace, config, HibernatorPolicy(hib_config), goal_s=goal)
    oracle = run_single(trace, config, OraclePolicy(epoch_seconds=EPOCH_S), goal_s=goal)
    return base, goal, hibernator, oracle


def test_a6_oracle_gap(benchmark):
    base, goal, hibernator, oracle = run_once(benchmark, run_all)
    rows = [
        ["Base", "0.0 %", f"{base.mean_response_s * 1e3:.2f}", "-"],
        [
            "Hibernator",
            f"{100.0 * hibernator.energy_savings_vs(base):.1f} %",
            f"{hibernator.mean_response_s * 1e3:.2f}",
            f"{hibernator.migration_extents}",
        ],
        [
            "Oracle (offline bound)",
            f"{100.0 * oracle.energy_savings_vs(base):.1f} %",
            f"{oracle.mean_response_s * 1e3:.2f}",
            "free",
        ],
    ]
    emit("A6", format_table(
        ["scheme", "savings", "mean RT ms", "migration"],
        rows,
        title=f"OLTP: how close is Hibernator to the offline bound? (goal {goal * 1e3:.2f} ms)",
    ))
    # The bound is a bound.
    assert oracle.energy_joules <= hibernator.energy_joules * 1.02
    # Both respect the goal.
    assert oracle.mean_response_s <= goal
    assert hibernator.mean_response_s <= goal
    # And Hibernator captures most of the clairvoyant opportunity on a
    # steady workload (the paper's online-vs-offline gap is small).
    assert hibernator.energy_savings_vs(base) > 0.8 * oracle.energy_savings_vs(base)