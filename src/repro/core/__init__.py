"""Hibernator: the paper's contribution.

The pieces, matching the abstract's enumeration:

* :mod:`repro.core.temperature` -- per-extent access-heat tracking with
  exponential smoothing across epochs (what "the right data" means).
* :mod:`repro.core.response_model` -- M/G/1 response-time prediction per
  disk speed from observed load (how performance is predicted).
* :mod:`repro.core.speed_setting` -- the **CR** coarse-grained speed
  optimizer: choose how many disks spin at each speed for the next epoch
  to minimize energy subject to the predicted response-time goal.
* :mod:`repro.core.layout` -- multi-tier data layout: hot extents on
  fast tiers, spread evenly within a tier.
* :mod:`repro.core.migration` -- migration planning: randomized
  shuffling (move only what tier-boundary shifts require) vs. full
  temperature-sorted re-layout.
* :mod:`repro.core.guarantee` -- the response-time guarantee: deficit
  tracking and the full-speed performance boost.
* :mod:`repro.core.hibernator` -- the epoch controller gluing the above
  into a :class:`repro.policies.base.PowerPolicy`.
"""

from repro.core.guarantee import BoostController, GuaranteeConfig
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.core.layout import TierLayout
from repro.core.migration import MigrationPlan, plan_shuffle_migration, plan_sorted_migration
from repro.core.response_model import MG1ResponseModel, predict_tier_response
from repro.core.speed_setting import SpeedAssignment, SpeedSettingConfig, solve_speed_assignment
from repro.core.temperature import HeatTracker

__all__ = [
    "HeatTracker",
    "MG1ResponseModel",
    "predict_tier_response",
    "SpeedAssignment",
    "SpeedSettingConfig",
    "solve_speed_assignment",
    "TierLayout",
    "MigrationPlan",
    "plan_shuffle_migration",
    "plan_sorted_migration",
    "BoostController",
    "GuaranteeConfig",
    "HibernatorConfig",
    "HibernatorPolicy",
]
