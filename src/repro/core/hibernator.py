"""The Hibernator epoch controller.

Glues the four techniques from the abstract into one
:class:`repro.policies.base.PowerPolicy`:

1. multi-speed disks (the substrate in :mod:`repro.disks`),
2. coarse-grained speed setting — at every epoch boundary, fold the
   observed per-extent heat and run the CR optimizer
   (:mod:`repro.core.speed_setting`) to pick the next epoch's tier
   configuration,
3. data migration — plan moves with randomized shuffling (or the sorted
   strawman, for F8) and trickle them through a bounded-concurrency
   executor so migration never swamps foreground traffic,
4. the performance guarantee — every completed request feeds the boost
   controller; the moment the cumulative average response time would
   exceed the goal, all disks go to full speed and migration yields.

The first epoch is an *observation epoch*: with no heat history the
array runs at full speed while the tracker learns the workload (the
paper warms up the same way). Benchmarks that want steady state
immediately can prime the tracker from an offline trace scan via
``HibernatorConfig.prime_rates``.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

import numpy as np

from repro.core.guarantee import BoostController, GuaranteeConfig
from repro.core.layout import TierLayout, identity_layout
from repro.core.migration import (
    MigrationExecutor,
    MigrationPlan,
    plan_shuffle_migration,
    plan_sorted_migration,
)
from repro.core.response_model import MG1ResponseModel
from repro.core.speed_setting import (
    SpeedAssignment,
    SpeedSettingConfig,
    solve_speed_assignment,
    solve_utilization_assignment,
)
from repro.core.temperature import HeatTracker
from repro.obs.events import EpochBoundary
from repro.policies.base import PowerPolicy
from repro.sim.request import Request
from repro.sim.stats import DeficitTracker, OnlineStats

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runner import ArraySimulation


@dataclass
class EpochRecord:
    """What happened at one epoch boundary (for reports and tests)."""

    time: float
    configuration: str
    predicted_response_s: float
    predicted_energy_joules: float
    feasible: bool
    planned_moves: int
    boosted_at_boundary: bool


@dataclass
class HibernatorConfig:
    """Hibernator knobs.

    Attributes:
        epoch_seconds: length of the coarse-grained control period.
        heat_smoothing: exponential weight of history in the heat fold.
        migration: 'shuffle' (the paper's randomized shuffling),
            'sorted' (full temperature-sort strawman) or 'none'.
        max_inflight_migrations: concurrent extent copies allowed.
        speed_setting: CR optimizer knobs.
        guarantee: boost controller knobs (ignored when the run has no
            goal).
        prime_rates: optional per-extent request rates to seed the heat
            tracker, skipping the observation epoch.
        wave_fraction: fraction of the array whose spindles may be in
            transition at once. Speed changes are *staggered* in waves —
            a transitioning spindle serves nothing, so changing every
            disk simultaneously would black out the whole array for
            seconds and self-inflict exactly the latency spike the boost
            exists to fix.
        wave_poll_interval_s: how often a wave checks whether its disks
            have reached their targets before releasing the next wave.
        speed_setter: 'cr' (the paper's response-time-constrained
            optimizer) or 'utilization' (the naive target-utilization
            strawman; A3 ablation).
        util_target: utilization ceiling for the 'utilization' setter.
        adaptive_epochs: grow the epoch (up to ``max_epoch_multiple`` x
            the base length) while consecutive boundaries leave the
            configuration unchanged and no boost fired; reset to the
            base length otherwise. Extension beyond the paper: buys long-
            epoch efficiency on stable workloads without giving up
            responsiveness after a change.
        max_epoch_multiple: cap for the adaptive epoch growth.
        seed: randomness for shuffle tie-breaking.
    """

    epoch_seconds: float = 3600.0
    heat_smoothing: float = 0.5
    migration: str = "shuffle"
    max_inflight_migrations: int = 4
    speed_setting: SpeedSettingConfig = field(default_factory=SpeedSettingConfig)
    guarantee: GuaranteeConfig = field(default_factory=GuaranteeConfig)
    prime_rates: np.ndarray | None = None
    wave_fraction: float = 0.25
    wave_poll_interval_s: float = 0.25
    speed_setter: str = "cr"
    util_target: float = 0.6
    adaptive_epochs: bool = False
    max_epoch_multiple: float = 8.0
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if self.migration not in ("shuffle", "sorted", "none"):
            raise ValueError(f"unknown migration scheme {self.migration!r}")
        if not 0.0 < self.wave_fraction <= 1.0:
            raise ValueError("wave_fraction must be in (0, 1]")
        if self.wave_poll_interval_s <= 0:
            raise ValueError("wave_poll_interval_s must be positive")
        if self.speed_setter not in ("cr", "utilization"):
            raise ValueError(f"unknown speed setter {self.speed_setter!r}")
        if not 0.0 < self.util_target < 1.0:
            raise ValueError("util_target must be in (0, 1)")
        if self.max_epoch_multiple < 1.0:
            raise ValueError("max_epoch_multiple must be >= 1")


class HibernatorPolicy(PowerPolicy):
    """Energy management with a response-time goal (the paper's system)."""

    name = "Hibernator"

    def __init__(self, config: HibernatorConfig | None = None) -> None:
        super().__init__()
        self.config = config or HibernatorConfig()
        # Per-run state, initialized in attach().
        self.heat: HeatTracker | None = None
        self.boost: BoostController | None = None
        self.executor: MigrationExecutor | None = None
        self.assignment: SpeedAssignment | None = None
        self.layout: TierLayout | None = None
        self.epochs: list[EpochRecord] = []
        self._size_stats = OnlineStats()
        self._rng = np.random.default_rng(self.config.seed)
        self._model: MG1ResponseModel | None = None
        self._speed_change_gen = 0
        self._current_epoch_s = self.config.epoch_seconds
        self._reads_seen = 0
        self._writes_seen = 0
        self._rebuilding = False
        self._assignment_width = 0

    # -- lifecycle -----------------------------------------------------------

    def attach(self, sim: "ArraySimulation") -> None:
        super().attach(sim)
        array = sim.array
        cfg = self.config
        # On RAID-5 a logical write costs four physical ops
        # (read-modify-write on data + parity), so the load the CR
        # optimizer plans against must weight writes accordingly or it
        # will under-provision and live off the boost.
        self.heat = HeatTracker(
            num_extents=array.num_extents,
            smoothing=cfg.heat_smoothing,
            write_weight=4.0 if array.config.raid5 else 1.0,
        )
        self.boost = BoostController(sim.goal_s, cfg.guarantee) if sim.goal_s else None
        if self.boost is not None:
            self.boost.emit = sim.emit
        self.executor = MigrationExecutor(array, cfg.max_inflight_migrations)
        # Register every instrument up front so the extras key set is
        # stable (present even when the count stays zero), matching the
        # pre-registry dict exactly.
        self.metrics.counter("epochs")
        self.metrics.gauge("final_epoch_s").set(cfg.epoch_seconds)
        self.metrics.counter("infeasible_epochs")
        self.metrics.counter("planned_moves")
        if self.boost is not None:
            self.metrics.counter("boosts")
            self.metrics.gauge("boost_seconds")
            self.metrics.gauge("final_deficit_s")
        self.assignment = None
        self.layout = None
        self.epochs = []
        self._size_stats = OnlineStats()
        self._rng = np.random.default_rng(cfg.seed)
        self._model = None
        self._speed_change_gen = 0
        self._current_epoch_s = cfg.epoch_seconds
        self._reads_seen = 0
        self._writes_seen = 0
        self._rebuilding = False
        self._assignment_width = array.num_disks
        if cfg.prime_rates is not None:
            # Steady-state start: the array was already running Hibernator
            # before this window, so the primed configuration (speeds and
            # layout) is applied instantaneously before any I/O arrives.
            self.heat.prime(np.asarray(cfg.prime_rates, dtype=np.float64))
            self._reconfigure(instant=True)
        else:
            array.set_all_speeds(array.config.spec.max_rpm)
        sim.engine.schedule(self._current_epoch_s, self._epoch_boundary)

    # -- request hooks ----------------------------------------------------------

    def on_request_arrival(self, request: Request) -> None:
        assert self.heat is not None
        self.heat.record(request.extent, is_write=not request.is_read)
        self._size_stats.add(float(request.size))
        if request.is_read:
            self._reads_seen += 1
        else:
            self._writes_seen += 1

    def on_request_complete(self, request: Request) -> None:
        if self.boost is None:
            return
        self.boost.observe(request.latency)
        sim = self.sim
        assert sim is not None
        if self.boost.should_enter_boost():
            self.boost.enter_boost(sim.engine.now)
            self.metrics.counter("boosts").inc()
            self._boost_speeds()
            assert self.executor is not None
            self.executor.cancel()
        # Exit is evaluated only at epoch boundaries: leaving mid-epoch
        # would reinstate speeds chosen for the stale heat that caused
        # the violation in the first place.

    def on_disk_failed(self, disk: int, rebuild_active: bool = False) -> None:
        """React to a failure mid-epoch: the epoch's configuration was
        chosen for an array that no longer exists.

        Migration is cancelled (its plan names a dead disk's layout), the
        boost gets more eager while the data is exposed, and the speed
        assignment is re-solved over the surviving set immediately — the
        RT guarantee is re-evaluated now, not at the next boundary.
        """
        sim = self.sim
        assert sim is not None and self.executor is not None
        self._rebuilding = rebuild_active
        if self.boost is not None:
            self.boost.set_degraded(True)
        self.executor.cancel()
        self.metrics.counter("disk_failures").inc()
        self._reconfigure(instant=False, record=False)

    def on_rebuild_complete(self) -> None:
        """Exposure window over: relax the guarantee and re-solve so the
        survivors can leave the full-speed pin."""
        self._rebuilding = False
        if self.boost is not None:
            self.boost.set_degraded(False)
        self._reconfigure(instant=False, record=False)

    # -- online control hooks (repro serve) ----------------------------------

    def on_goal_changed(self, goal_s: float | None) -> None:
        """Rebuild the guarantee machinery around the new goal.

        Tightening or loosening the goal restarts the deficit from zero
        (overshoots against the old goal are not debts against the new
        one); clearing the goal retires the boost controller after
        closing its time accounting. An active boost is left boosted —
        the next epoch boundary re-evaluates exit against the new goal,
        exactly as it would after any other deficit reset.
        """
        sim = self.sim
        assert sim is not None
        now = sim.engine.now
        if goal_s is None:
            if self.boost is not None:
                self.boost.finish(now)
                self.metrics.gauge("boost_seconds").set(self.boost.boost_seconds)
                self.boost = None
            return
        if self.boost is None:
            self.boost = BoostController(goal_s, self.config.guarantee)
            self.boost.emit = sim.emit
            self.boost.set_degraded(self._rebuilding)
            self.metrics.counter("boosts")
            self.metrics.gauge("boost_seconds")
            self.metrics.gauge("final_deficit_s")
        else:
            self.boost.tracker = DeficitTracker(goal_s)

    def force_boost(self, now: float) -> bool:
        """Operator-forced boost: same entry path the deficit takes."""
        if self.boost is None or self.boost.boosted:
            return False
        self.boost.enter_boost(now)
        self.metrics.counter("boosts").inc()
        self._boost_speeds()
        if self.executor is not None:
            self.executor.cancel()
        return True

    def current_assignment(self) -> str | None:
        if self.assignment is None:
            return None
        return self.assignment.describe()

    def on_finish(self, now: float) -> None:
        if self.boost is not None:
            self.boost.finish(now)
        self.metrics.gauge("final_epoch_s").set(self._current_epoch_s)
        if self.boost is not None:
            self.metrics.gauge("boost_seconds").set(self.boost.boost_seconds)
            self.metrics.gauge("final_deficit_s").set(self.boost.deficit)

    # -- epoch machinery -----------------------------------------------------------

    def _epoch_boundary(self) -> None:
        sim = self.sim
        assert sim is not None and self.heat is not None
        self.heat.close_epoch(self._current_epoch_s)
        boosts_before = self.boost.boosts_entered if self.boost is not None else 0
        if self.boost is not None and self.boost.should_exit_boost():
            self.boost.exit_boost(sim.engine.now)
        previous = self.assignment.boundaries if self.assignment is not None else None
        self._reconfigure(instant=False)
        if self.config.adaptive_epochs:
            self._adapt_epoch_length(previous, boosts_before)
        if sim.workload_open:
            sim.engine.schedule_after(self._current_epoch_s, self._epoch_boundary)

    def _adapt_epoch_length(self, previous_boundaries, boosts_before: int) -> None:
        """Grow the epoch while nothing changes; reset when it does."""
        assert self.assignment is not None and self.boost is not None or True
        base = self.config.epoch_seconds
        boosted_since = (
            self.boost is not None and self.boost.boosts_entered > boosts_before
        ) or (self.boost is not None and self.boost.boosted)
        unchanged = (
            previous_boundaries is not None
            and self.assignment is not None
            and self.assignment.boundaries == previous_boundaries
        )
        if unchanged and not boosted_since:
            self._current_epoch_s = min(
                self._current_epoch_s * 2.0, base * self.config.max_epoch_multiple
            )
        else:
            self._current_epoch_s = base

    def _reconfigure(self, instant: bool, record: bool = True) -> None:
        """Re-solve the speed assignment and (re)plan migration.

        ``record=False`` is the mid-epoch path (failure / rebuild
        completion): the configuration changes but no epoch starts, so
        the epoch counter, records and boundary event are skipped.

        With failed disks, the solve runs over the *surviving* set:
        position ``p`` of the assignment maps to the p-th surviving disk
        (ascending index). The tier layout (and therefore migration
        planning) is suspended — extent placement is the rebuilder's
        business until the exposure is gone — and while a rebuild is in
        flight the survivors are pinned at full speed.
        """
        sim = self.sim
        assert sim is not None and self.heat is not None and self.executor is not None
        array = sim.array
        spec = array.config.spec
        survivors = [
            d for d in range(array.num_disks) if d not in array.failed_disks
        ]
        if not survivors:
            return  # the whole array is gone; nothing to control
        degraded = len(survivors) < array.num_disks
        mean_size = self._size_stats.mean if self._size_stats.n else 4096.0
        self._model = MG1ResponseModel(
            mechanics=array.disks[0].mechanics,
            mean_request_bytes=mean_size,
        )
        # Stale boundaries from a different array width would misalign
        # the solver's warm start; only reuse them at the same width.
        prev = None
        if self.assignment is not None and self._assignment_width == len(survivors):
            prev = self.assignment.boundaries
        planning_goal = self._planning_goal()
        if self.config.speed_setter == "utilization":
            assignment = solve_utilization_assignment(
                heat=self.heat.heat,
                num_disks=len(survivors),
                model=self._model,
                spec=spec,
                epoch_seconds=self._current_epoch_s,
                util_target=self.config.util_target,
            )
        else:
            assignment = solve_speed_assignment(
                heat=self.heat.heat,
                num_disks=len(survivors),
                model=self._model,
                spec=spec,
                epoch_seconds=self._current_epoch_s,
                goal_s=planning_goal,
                prev_boundaries=prev,
                config=self.config.speed_setting,
            )
        self.assignment = assignment
        self._assignment_width = len(survivors)
        boosted = self.boost is not None and self.boost.boosted
        if not degraded:
            self.layout = identity_layout(assignment)
            if instant:
                for disk in array.disks:
                    disk.force_speed(self.layout.rpm_of_disk(disk.index))
            elif not boosted:
                self._apply_speeds()
        else:
            self.layout = None
            if not boosted:
                self._apply_survivor_speeds(survivors, assignment)
        plan = self._plan_migration() if self.layout is not None else None
        if self.executor.active:
            self.executor.cancel()
        planned = plan.num_moves if plan is not None else 0
        if plan is not None and plan.num_moves:
            if instant:
                # Steady-state start: the layout is already in place.
                for extent, target in plan.moves:
                    if array.extent_map.free_slots(target) > 0:
                        array.extent_map.move(extent, target)
            elif not boosted:
                self.executor.start(plan)
        if not record:
            return
        self.epochs.append(
            EpochRecord(
                time=sim.engine.now,
                configuration=assignment.describe(),
                predicted_response_s=assignment.predicted_response_s,
                predicted_energy_joules=assignment.predicted_energy_joules,
                feasible=assignment.feasible,
                planned_moves=planned,
                boosted_at_boundary=boosted,
            )
        )
        self.metrics.counter("epochs").inc()
        if not assignment.feasible:
            self.metrics.counter("infeasible_epochs").inc()
        self.metrics.counter("planned_moves").inc(float(planned))
        if sim.emit is not None:
            sim.emit(EpochBoundary(
                time=sim.engine.now,
                epoch_index=len(self.epochs) - 1,
                configuration=assignment.describe(),
                tier_speeds=tuple(int(s) for s in assignment.speeds_desc),
                tier_counts=tuple(int(c) for c in assignment.counts),
                heat_total=float(self.heat.heat.sum()),
                predicted_response_s=assignment.predicted_response_s,
                predicted_energy_joules=assignment.predicted_energy_joules,
                feasible=assignment.feasible,
                planned_moves=planned,
                boosted=boosted,
                epoch_seconds=self._current_epoch_s,
            ))

    def _apply_survivor_speeds(self, survivors: list[int], assignment: SpeedAssignment) -> None:
        """Apply a survivor-width assignment to the surviving disks.

        While a rebuild is in flight every survivor is pinned at full
        speed instead — reconstruction fan-out plus rebuild traffic is
        the worst load the array sees, and a slow tier would stretch the
        exposure window.
        """
        sim = self.sim
        assert sim is not None
        if self._rebuilding:
            max_rpm = sim.array.config.spec.max_rpm
            self._staggered_speed_change({disk: max_rpm for disk in survivors})
            return
        self._staggered_speed_change({
            disk: assignment.rpm_for_position(position)
            for position, disk in enumerate(survivors)
        })

    def _planning_goal(self) -> float | None:
        """The goal the CR optimizer should plan disk responses against.

        With an NVRAM write-back cache, writes complete at controller
        latency and contribute essentially nothing to the measured mean,
        so the whole latency budget belongs to the reads:

            r * R_reads + (1 - r) * t_cache <= goal
            =>  R_reads <= (goal - (1 - r) * t_cache) / r
        """
        sim = self.sim
        assert sim is not None
        goal = sim.goal_s
        if goal is None or not sim.array.config.write_cache:
            return goal
        total = self._reads_seen + self._writes_seen
        read_fraction = self._reads_seen / total if total else 0.5
        if read_fraction < 0.01:
            return goal * 50.0  # essentially no read latency to bound
        cache_latency = sim.array.config.write_cache_latency_s
        adjusted = (goal - (1.0 - read_fraction) * cache_latency) / read_fraction
        return max(adjusted, goal)

    def _plan_migration(self) -> MigrationPlan | None:
        sim = self.sim
        assert sim is not None and self.heat is not None and self.layout is not None
        if self.config.migration == "none":
            return None
        hottest = self.heat.hottest_first()
        if self.config.migration == "shuffle":
            return plan_shuffle_migration(sim.array, self.layout, hottest, self._rng)
        return plan_sorted_migration(sim.array, self.layout, hottest)

    def _apply_speeds(self) -> None:
        """Roll the layout's speeds through the array in waves."""
        sim = self.sim
        assert sim is not None
        if self.layout is None:
            self._staggered_speed_change(
                {d.index: sim.array.config.spec.max_rpm for d in sim.array.disks}
            )
            return
        self._staggered_speed_change(
            {d.index: self.layout.rpm_of_disk(d.index) for d in sim.array.disks}
        )

    def _boost_speeds(self) -> None:
        """Boost entry: roll every disk up to full speed."""
        sim = self.sim
        assert sim is not None
        self._staggered_speed_change(
            {d.index: sim.array.config.spec.max_rpm for d in sim.array.disks}
        )

    def _staggered_speed_change(self, targets: dict[int, int]) -> None:
        """Issue speed changes in waves of ``wave_fraction`` of the array.

        A new call supersedes any staggering still in flight (the
        generation counter invalidates stale waves). Disks that need to
        speed *up* go in the earliest waves — under pressure, capacity
        arrives sooner.
        """
        sim = self.sim
        assert sim is not None
        array = sim.array
        self._speed_change_gen += 1
        gen = self._speed_change_gen
        pending = [
            (disk, rpm)
            for disk, rpm in targets.items()
            if array.disks[disk].requested_rpm != rpm or array.disks[disk].rpm != rpm
        ]
        if not pending:
            return
        # Upward changes first, largest jump first.
        pending.sort(key=lambda t: array.disks[t[0]].rpm - t[1])
        wave_size = max(1, int(round(self.config.wave_fraction * array.num_disks)))
        self._run_wave(gen, pending, 0, wave_size)

    def _run_wave(self, gen: int, pending: list[tuple[int, int]], start: int, wave_size: int) -> None:
        sim = self.sim
        assert sim is not None
        if gen != self._speed_change_gen or start >= len(pending):
            return
        wave = pending[start : start + wave_size]
        for disk, rpm in wave:
            sim.array.disks[disk].set_speed(rpm)

        def poll() -> None:
            if gen != self._speed_change_gen:
                return
            settled = all(
                sim.array.disks[disk].rpm == rpm and sim.array.disks[disk].is_spinning
                for disk, rpm in wave
            )
            if settled:
                self._run_wave(gen, pending, start + wave_size, wave_size)
            else:
                sim.engine.schedule_after(self.config.wave_poll_interval_s, poll)

        sim.engine.schedule_after(self.config.wave_poll_interval_s, poll)

    # -- reporting ----------------------------------------------------------------

    def describe(self) -> str:
        cfg = self.config
        return (
            f"Hibernator(epoch={cfg.epoch_seconds:g}s, migration={cfg.migration}, "
            f"guarantee={'on' if cfg.guarantee.enabled else 'off'})"
        )

    def extras(self) -> dict[str, float]:
        # The registry (filled incrementally during the run, gauges
        # finalized in on_finish) carries exactly the keys the old
        # hand-built dict did; refresh the gauges here so extras() is
        # also accurate when called mid-run by tests. counter() is
        # get-or-create, so the keys exist even before the first epoch.
        self.metrics.counter("epochs")
        self.metrics.counter("infeasible_epochs")
        self.metrics.counter("planned_moves")
        self.metrics.gauge("final_epoch_s").set(self._current_epoch_s)
        if self.boost is not None:
            self.metrics.gauge("boost_seconds").set(self.boost.boost_seconds)
            self.metrics.gauge("final_deficit_s").set(self.boost.deficit)
        return self.metrics.as_dict()
