"""Per-extent access-heat tracking.

Hibernator decides *which* data belongs on *which speed* of disk from
each extent's recent access rate — its "temperature". The tracker counts
accesses within the current epoch and, at each epoch boundary, folds the
observed epoch rate into a smoothed heat estimate with exponential
averaging:

    heat = smoothing * heat_prev + (1 - smoothing) * rate_this_epoch

Smoothing makes tier assignments stable against one-epoch noise while
still following genuine working-set drift within a few epochs — the same
trade-off the paper's coarse-grained approach makes by design.
"""

from __future__ import annotations

import numpy as np


class HeatTracker:
    """Exponentially smoothed per-extent access rates.

    Args:
        num_extents: size of the logical address space.
        smoothing: weight of history at each epoch fold (0 = use only the
            last epoch, 1 = never update).
        write_weight: relative weight of writes vs. reads; RAID-5 arrays
            may weight writes higher because of their amplification.
    """

    def __init__(
        self,
        num_extents: int,
        smoothing: float = 0.5,
        write_weight: float = 1.0,
    ) -> None:
        if num_extents <= 0:
            raise ValueError(f"num_extents must be positive, got {num_extents!r}")
        if not 0.0 <= smoothing < 1.0:
            raise ValueError(f"smoothing must be in [0, 1), got {smoothing!r}")
        if write_weight <= 0:
            raise ValueError(f"write_weight must be positive, got {write_weight!r}")
        self.num_extents = num_extents
        self.smoothing = smoothing
        self.write_weight = write_weight
        self.heat = np.zeros(num_extents, dtype=np.float64)
        self._window_counts = np.zeros(num_extents, dtype=np.float64)
        self._epochs_folded = 0

    def record(self, extent: int, is_write: bool = False) -> None:
        """Count one access in the current epoch window."""
        self._window_counts[extent] += self.write_weight if is_write else 1.0

    def record_bulk(self, extents: np.ndarray, write_mask: np.ndarray | None = None) -> None:
        """Count many accesses at once (used for priming from a trace)."""
        if write_mask is None:
            np.add.at(self._window_counts, extents, 1.0)
            return
        weights = np.where(write_mask, self.write_weight, 1.0)
        np.add.at(self._window_counts, extents, weights)

    def close_epoch(self, epoch_seconds: float) -> np.ndarray:
        """Fold the window into the smoothed heat; returns the new heat.

        The first fold seeds heat directly from the observed rate (there
        is no meaningful history to smooth against).
        """
        if epoch_seconds <= 0:
            raise ValueError(f"epoch_seconds must be positive, got {epoch_seconds!r}")
        rate = self._window_counts / epoch_seconds
        if self._epochs_folded == 0:
            self.heat = rate
        else:
            self.heat = self.smoothing * self.heat + (1.0 - self.smoothing) * rate
        self._window_counts = np.zeros(self.num_extents, dtype=np.float64)
        self._epochs_folded += 1
        return self.heat

    @property
    def epochs_folded(self) -> int:
        return self._epochs_folded

    @property
    def total_heat(self) -> float:
        """Sum of per-extent rates = predicted array request rate."""
        return float(self.heat.sum())

    def hottest_first(self) -> np.ndarray:
        """Extent ids ordered from hottest to coldest (stable)."""
        # Stable sort on -heat keeps equal-heat extents in id order, which
        # keeps migration plans deterministic.
        return np.argsort(-self.heat, kind="stable")

    def prime(self, rates: np.ndarray) -> None:
        """Seed heat directly (e.g. from an offline trace analysis)."""
        rates = np.asarray(rates, dtype=np.float64)
        if rates.shape != (self.num_extents,):
            raise ValueError(f"expected shape ({self.num_extents},), got {rates.shape}")
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        self.heat = rates.copy()
        self._epochs_folded = max(self._epochs_folded, 1)
