"""Analytic response-time prediction.

The CR optimizer must predict, *before* committing an epoch, what the
average response time would be if ``n_k`` disks ran at each speed ``k``.
Hibernator uses an open queueing approximation: each disk is an M/G/1
queue fed by the load its tier's extents are predicted to generate,
with service-time moments from the mechanical disk model at the tier's
speed:

    R(rpm, lambda) = E[S] + lambda * E[S^2] / (2 * (1 - rho)),
    rho = lambda * E[S]

The array-level prediction is the load-weighted mean of tier responses —
exactly the quantity the response-time goal constrains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.disks.mechanics import DiskMechanics, ServiceMoments

#: Utilization above which the queue is treated as saturated (R = inf).
MAX_STABLE_UTILIZATION = 0.95


@dataclass(frozen=True)
class TierPrediction:
    """Predicted behaviour of one tier for one candidate configuration."""

    rpm: int
    num_disks: int
    tier_lambda: float
    per_disk_lambda: float
    utilization: float
    response_s: float


class MG1ResponseModel:
    """M/G/1 response-time and utilization predictions for one disk model.

    Args:
        mechanics: mechanical model supplying service moments.
        mean_request_bytes: average transfer size used for the moments.
        seek_probability: fraction of requests paying a seek.
        max_utilization: stability cutoff; above it the predicted
            response is infinite.
    """

    def __init__(
        self,
        mechanics: DiskMechanics,
        mean_request_bytes: float = 4096.0,
        seek_probability: float = 1.0,
        max_utilization: float = MAX_STABLE_UTILIZATION,
    ) -> None:
        if mean_request_bytes <= 0:
            raise ValueError("mean_request_bytes must be positive")
        if not 0.0 < max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")
        self.mechanics = mechanics
        self.mean_request_bytes = mean_request_bytes
        self.seek_probability = seek_probability
        self.max_utilization = max_utilization
        self._moments_cache: dict[int, ServiceMoments] = {}

    def moments(self, rpm: int) -> ServiceMoments:
        """Cached service moments at ``rpm``."""
        cached = self._moments_cache.get(rpm)
        if cached is None:
            cached = self.mechanics.service_moments(
                rpm, self.mean_request_bytes, self.seek_probability
            )
            self._moments_cache[rpm] = cached
        return cached

    def utilization(self, rpm: int, per_disk_lambda: float) -> float:
        """Offered utilization rho = lambda * E[S]."""
        if per_disk_lambda < 0:
            raise ValueError("arrival rate must be non-negative")
        return per_disk_lambda * self.moments(rpm).mean

    def response_time(self, rpm: int, per_disk_lambda: float) -> float:
        """Predicted mean response time of one disk (inf if saturated)."""
        m = self.moments(rpm)
        rho = per_disk_lambda * m.mean
        if rho >= self.max_utilization:
            return math.inf
        wait = per_disk_lambda * m.second / (2.0 * (1.0 - rho))
        return m.mean + wait

    def max_lambda_for_goal(self, rpm: int, goal_s: float) -> float:
        """Largest per-disk arrival rate whose predicted R stays <= goal.

        Solves ``E[S] + lambda * E[S2] / (2 (1 - lambda E[S])) = goal``
        for lambda, capped at the stability limit. Used by sizing
        heuristics and tests.
        """
        m = self.moments(rpm)
        if goal_s <= m.mean:
            return 0.0
        # goal - ES = lam*ES2 / (2(1 - lam*ES))
        # (goal - ES) * 2 - (goal - ES) * 2 * lam * ES = lam * ES2
        # lam = 2 (goal-ES) / (ES2 + 2 ES (goal-ES))
        slack = goal_s - m.mean
        lam = 2.0 * slack / (m.second + 2.0 * m.mean * slack)
        return min(lam, self.max_utilization / m.mean)


def predict_tier_response(
    model: MG1ResponseModel,
    rpm: int,
    num_disks: int,
    tier_lambda: float,
) -> TierPrediction:
    """Predict one tier, assuming its load spreads evenly over its disks.

    The even spread is what the randomized within-tier layout is *for*;
    the prediction and the layout are two halves of the same design
    decision.
    """
    if num_disks <= 0:
        raise ValueError("a tier must have at least one disk")
    per_disk = tier_lambda / num_disks
    return TierPrediction(
        rpm=rpm,
        num_disks=num_disks,
        tier_lambda=tier_lambda,
        per_disk_lambda=per_disk,
        utilization=model.utilization(rpm, per_disk),
        response_s=model.response_time(rpm, per_disk),
    )


def weighted_array_response(predictions: list[TierPrediction]) -> float:
    """Load-weighted mean response across tiers (inf if any tier is
    saturated and carries load)."""
    total_lambda = sum(p.tier_lambda for p in predictions)
    if total_lambda <= 0:
        return 0.0
    acc = 0.0
    for p in predictions:
        if p.tier_lambda == 0.0:
            continue
        if math.isinf(p.response_s):
            return math.inf
        acc += p.tier_lambda * p.response_s
    return acc / total_lambda
