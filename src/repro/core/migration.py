"""Migration planning and execution.

Two planners, compared head-to-head by experiment F8:

* :func:`plan_shuffle_migration` — the paper's **randomized shuffling**:
  move *only* extents whose target tier differs from the tier of the
  disk they currently sit on, choosing the least-loaded disk of the
  target tier for each move. Extents already in the right tier never
  move; within-tier placement stays scattered, keeping tier load
  balanced without sorting.
* :func:`plan_sorted_migration` — the naive alternative: lay all extents
  out in strict temperature order (hottest extent at the outermost slot
  of the fastest disk, and so on). Near-perfect ordering, but nearly
  every boundary shift relocates a large fraction of all data.

Execution is asynchronous and bounded: :class:`MigrationExecutor` keeps
at most ``max_inflight`` extent copies in flight so migration trickles
through the array instead of flooding the queues — migration I/O shares
the disks with foreground traffic and is charged to the energy bill.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.layout import TierLayout
from repro.disks.array import DiskArray
from repro.obs.events import MigrationCancelled, MigrationPlanned


@dataclass
class MigrationPlan:
    """An ordered list of extent moves."""

    moves: list[tuple[int, int]] = field(default_factory=list)

    @property
    def num_moves(self) -> int:
        return len(self.moves)

    def bytes_to_move(self, extent_bytes: int) -> int:
        return self.num_moves * extent_bytes


def plan_shuffle_migration(
    array: DiskArray,
    layout: TierLayout,
    hottest_first: np.ndarray,
    rng: np.random.Generator | None = None,
) -> MigrationPlan:
    """Randomized shuffling: minimal moves to honour the tier layout.

    Only extents stranded on a wrong-tier disk move. Each move targets
    the disk of the correct tier with the lowest *projected* occupancy
    (current residents plus planned arrivals minus planned departures),
    which keeps tier load balanced without any global sort. Ties are
    broken randomly when ``rng`` is given, else by disk id — both keep
    the plan deterministic for a fixed seed.
    """
    target_tier = layout.target_tiers(hottest_first)
    emap = array.extent_map
    projected = emap.occupancy().astype(np.int64)
    tier_disks = [layout.disks_in_tier(t) for t in range(layout.num_tiers)]
    moves: list[tuple[int, int]] = []
    # Hottest extents first so the fast tier fills with the right data
    # even if capacity runs short mid-plan.
    for extent in hottest_first:
        extent = int(extent)
        tier = int(target_tier[extent])
        current_disk = emap.disk_of(extent)
        if layout.tier_of_disk(current_disk) == tier:
            continue
        candidates = tier_disks[tier]
        if not candidates:
            continue
        best_occupancy = min(projected[d] for d in candidates)
        best = [d for d in candidates if projected[d] == best_occupancy]
        if rng is not None and len(best) > 1:
            target = int(best[rng.integers(len(best))])
        else:
            target = best[0]
        moves.append((extent, target))
        projected[target] += 1
        projected[current_disk] -= 1
    return MigrationPlan(moves=moves)


def plan_sorted_migration(
    array: DiskArray,
    layout: TierLayout,
    hottest_first: np.ndarray,
) -> MigrationPlan:
    """Full temperature-sorted re-layout (the expensive strawman).

    Packs extents in strict heat order across disks in position order,
    each disk receiving its proportional share. Every extent not already
    on its sorted-order disk moves.
    """
    num_extents = len(hottest_first)
    num_disks = len(layout.disk_order)
    emap = array.extent_map
    share = num_extents / num_disks
    moves: list[tuple[int, int]] = []
    for rank, extent in enumerate(hottest_first):
        extent = int(extent)
        position = min(int(rank / share), num_disks - 1)
        desired_disk = layout.disk_order[position]
        if emap.disk_of(extent) != desired_disk:
            moves.append((extent, desired_disk))
    return MigrationPlan(moves=moves)


class MigrationExecutor:
    """Executes a :class:`MigrationPlan` with bounded concurrency.

    Moves are issued in plan order, at most ``max_inflight`` at a time.
    A move whose target disk has no free slot is deferred and retried
    after the next completion frees one; if nothing is in flight and all
    remaining moves are blocked, the executor gives up and reports them
    as unplaced (they will be re-planned next epoch).
    """

    def __init__(self, array: DiskArray, max_inflight: int = 4) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.array = array
        self.max_inflight = max_inflight
        self._pending: deque[tuple[int, int]] = deque()
        self._deferred: list[tuple[int, int]] = []
        self._inflight = 0
        self._cancelled = False
        self._on_done: Callable[["MigrationExecutor"], None] | None = None
        self.completed = 0
        self.unplaced = 0

    @property
    def active(self) -> bool:
        return self._inflight > 0 or bool(self._pending) or bool(self._deferred)

    def start(
        self,
        plan: MigrationPlan,
        on_done: Callable[["MigrationExecutor"], None] | None = None,
    ) -> None:
        """Begin executing ``plan``; ``on_done`` fires when it drains."""
        if self.active:
            raise RuntimeError("executor already running a plan")
        self._pending = deque(plan.moves)
        self._deferred = []
        self._cancelled = False
        self._on_done = on_done
        self.completed = 0
        self.unplaced = 0
        if self.array.emit is not None:
            self.array.emit(MigrationPlanned(
                time=self.array.engine.now, moves=plan.num_moves,
            ))
        self._pump()

    def cancel(self) -> None:
        """Stop issuing new moves (in-flight copies finish normally).

        Used when the performance boost kicks in: migration yields the
        disks to foreground traffic immediately.
        """
        self._cancelled = True
        dropped = len(self._pending) + len(self._deferred)
        self.unplaced += dropped
        self._pending.clear()
        self._deferred.clear()
        if dropped and self.array.emit is not None:
            self.array.emit(MigrationCancelled(
                time=self.array.engine.now, unplaced=dropped,
            ))

    def _pump(self) -> None:
        while not self._cancelled and self._inflight < self.max_inflight and self._pending:
            extent, target = self._pending.popleft()
            issued = self.array.migrate_extent(extent, target, self._move_done)
            if issued:
                self._inflight += 1
            elif self.array.extent_map.disk_of(extent) == target:
                pass  # already there; nothing to do
            else:
                self._deferred.append((extent, target))
        if self._inflight == 0:
            if self._pending or self._deferred:
                # Everything left is blocked on slots with no completions
                # coming to free any: give up for this epoch.
                dropped = len(self._pending) + len(self._deferred)
                self.unplaced += dropped
                self._pending.clear()
                self._deferred.clear()
                if self.array.emit is not None:
                    self.array.emit(MigrationCancelled(
                        time=self.array.engine.now, unplaced=dropped,
                    ))
            if self._on_done is not None:
                callback, self._on_done = self._on_done, None
                callback(self)

    def _move_done(self, _extent: int) -> None:
        self._inflight -= 1
        self.completed += 1
        if self._deferred and not self._cancelled:
            # A completed move freed a slot somewhere; give blocked moves
            # another chance.
            self._pending.extend(self._deferred)
            self._deferred.clear()
        self._pump()
