"""Multi-tier data layout.

A :class:`TierLayout` binds one epoch's :class:`SpeedAssignment` to the
physical array: which disks form each speed tier, and which tier each
extent *should* live on (hottest extents on the fastest tier, in
proportion to tier size). Within a tier, placement is deliberately
random/balanced rather than sorted — spreading each tier's load evenly
across its disks is what makes the per-tier M/G/1 prediction (and the
energy model behind the CR choice) hold in practice.

Disks keep a fixed order across epochs; tiers are contiguous runs of
that order. When the optimizer moves a boundary by one disk, exactly one
disk changes tier — the property the randomized shuffling migration
exploits to move minimal data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.speed_setting import SpeedAssignment


@dataclass
class TierLayout:
    """Physical realization of a speed assignment.

    Attributes:
        assignment: the CR decision this layout realizes.
        disk_order: physical disk id at each position (position p is in
            the tier whose boundary range contains p).
    """

    assignment: SpeedAssignment
    disk_order: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.disk_order) != self.assignment.boundaries[-1]:
            raise ValueError(
                f"disk_order has {len(self.disk_order)} disks, assignment covers "
                f"{self.assignment.boundaries[-1]}"
            )
        if sorted(self.disk_order) != list(range(len(self.disk_order))):
            raise ValueError("disk_order must be a permutation of disk ids")
        self._tier_by_disk = np.empty(len(self.disk_order), dtype=np.int32)
        for position, disk in enumerate(self.disk_order):
            self._tier_by_disk[disk] = self.assignment.tier_of_position(position)

    @property
    def num_tiers(self) -> int:
        return len(self.assignment.speeds_desc)

    def tier_of_disk(self, disk: int) -> int:
        """Tier index (0 = fastest) of a physical disk."""
        return int(self._tier_by_disk[disk])

    def rpm_of_disk(self, disk: int) -> int:
        """Speed the disk runs at under this layout."""
        return self.assignment.speeds_desc[self.tier_of_disk(disk)]

    def disks_in_tier(self, tier: int) -> list[int]:
        """Physical disks of one tier, in position order."""
        lo = self.assignment.boundaries[tier]
        hi = self.assignment.boundaries[tier + 1]
        return [self.disk_order[p] for p in range(lo, hi)]

    def target_tiers(self, hottest_first: np.ndarray) -> np.ndarray:
        """Desired tier per extent id.

        Args:
            hottest_first: extent ids ordered hottest to coldest (from
                :meth:`repro.core.temperature.HeatTracker.hottest_first`).

        Returns:
            int array indexed by extent id with the tier each extent
            belongs on. Extents that fall in an empty tier's (zero-width)
            range are pushed to the nearest non-empty tier below/above.
        """
        num_extents = len(hottest_first)
        eb = self.assignment.extent_boundaries
        if eb[-1] != num_extents:
            raise ValueError(
                f"layout was built for {eb[-1]} extents, got {num_extents}"
            )
        target = np.empty(num_extents, dtype=np.int32)
        nonempty = [t for t in range(self.num_tiers) if self.disks_in_tier(t)]
        if not nonempty:
            raise ValueError("layout has no disks")
        for tier in range(self.num_tiers):
            lo, hi = eb[tier], eb[tier + 1]
            if lo == hi:
                continue
            owner = tier
            if not self.disks_in_tier(tier):
                # Extent share rounded into an empty tier: reassign to the
                # nearest tier that actually has disks.
                owner = min(nonempty, key=lambda t: (abs(t - tier), t))
            target[hottest_first[lo:hi]] = owner
        return target

    def describe(self) -> str:
        return self.assignment.describe()


def identity_layout(assignment: SpeedAssignment) -> TierLayout:
    """Layout with disk i at position i (the default fixed order)."""
    return TierLayout(
        assignment=assignment,
        disk_order=tuple(range(assignment.boundaries[-1])),
    )
