"""CR: the coarse-grained disk-speed setting algorithm.

At each epoch boundary Hibernator chooses, for the *whole next epoch*,
how many disks spin at each supported speed. Disks are kept in a fixed
order and partitioned into contiguous *tiers*, fastest tier first; the
hottest extents are assigned to the fastest tier in proportion to its
disk count (the multi-tier layout), so a candidate partition fully
determines each tier's predicted load.

For every candidate partition the optimizer predicts

* **response time** — load-weighted M/G/1 mean across tiers
  (:mod:`repro.core.response_model`), and
* **energy** — per-tier idle power plus seek power times predicted
  utilization, over the epoch, plus a reconfiguration penalty
  proportional to how far tier boundaries move (speed transitions and
  migration are not free),

and picks the minimum-energy candidate whose predicted response time
meets the goal. If no candidate is predicted to meet the goal the
assignment falls back to all disks at full speed — the same conservative
choice the performance guarantee would force anyway.

The search enumerates all non-decreasing boundary vectors (compositions
of N disks over K speeds) with branch-and-bound pruning on both partial
energy and partial weighted response; for the paper-scale arrays
(N <= 32, K <= 5) this is exhaustive and exact within the monotone
hot-to-fast layout family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.response_model import MG1ResponseModel, TierPrediction
from repro.disks.specs import DiskSpec


@dataclass
class SpeedSettingConfig:
    """CR optimizer knobs.

    Attributes:
        change_penalty_joules: energy charged per disk-position a tier
            boundary moves (accounts for spindle transitions and the
            migration the move triggers). 0 disables the penalty.
        goal_margin: fraction of the goal held back as safety margin;
            the optimizer plans against ``goal * (1 - goal_margin)``.
    """

    change_penalty_joules: float = 200.0
    goal_margin: float = 0.1

    def __post_init__(self) -> None:
        if self.change_penalty_joules < 0:
            raise ValueError("change_penalty_joules must be non-negative")
        if not 0.0 <= self.goal_margin < 1.0:
            raise ValueError("goal_margin must be in [0, 1)")


@dataclass
class SpeedAssignment:
    """The CR optimizer's decision for one epoch.

    Attributes:
        speeds_desc: supported speeds, fastest first (the tier order).
        boundaries: cumulative disk counts per tier; tier ``t`` spans
            disk positions ``[boundaries[t], boundaries[t+1])``. Length
            ``K + 1`` with ``boundaries[0] == 0`` and
            ``boundaries[K] == num_disks``.
        extent_boundaries: cumulative extent counts per tier over the
            hottest-first extent order.
        predictions: per-tier M/G/1 predictions (only non-empty tiers).
        predicted_energy_joules: epoch energy of the chosen candidate
            (excluding the change penalty).
        predicted_response_s: load-weighted mean response time.
        feasible: False when the fallback (all full speed) was forced.
    """

    speeds_desc: tuple[int, ...]
    boundaries: tuple[int, ...]
    extent_boundaries: tuple[int, ...]
    predictions: list[TierPrediction]
    predicted_energy_joules: float
    predicted_response_s: float
    feasible: bool

    @property
    def counts(self) -> tuple[int, ...]:
        """Disks per speed, fastest first."""
        return tuple(
            self.boundaries[t + 1] - self.boundaries[t] for t in range(len(self.speeds_desc))
        )

    def rpm_for_position(self, position: int) -> int:
        """Speed of the disk at ``position`` in the fixed disk order."""
        for t in range(len(self.speeds_desc)):
            if self.boundaries[t] <= position < self.boundaries[t + 1]:
                return self.speeds_desc[t]
        raise ValueError(f"position {position} outside [0, {self.boundaries[-1]})")

    def tier_of_position(self, position: int) -> int:
        for t in range(len(self.speeds_desc)):
            if self.boundaries[t] <= position < self.boundaries[t + 1]:
                return t
        raise ValueError(f"position {position} outside [0, {self.boundaries[-1]})")

    def describe(self) -> str:
        parts = [
            f"{count}@{rpm}"
            for count, rpm in zip(self.counts, self.speeds_desc)
            if count > 0
        ]
        return "+".join(parts)


def _extent_boundaries(num_extents: int, num_disks: int, boundaries: tuple[int, ...]) -> tuple[int, ...]:
    """Map disk boundaries to extent boundaries (proportional shares)."""
    share = num_extents / num_disks
    out = [0]
    for b in boundaries[1:-1]:
        out.append(int(round(b * share)))
    out.append(num_extents)
    # Rounding can break monotonicity only at extremes; repair defensively.
    for i in range(1, len(out)):
        out[i] = max(out[i], out[i - 1])
    return tuple(out)


def solve_speed_assignment(
    heat: np.ndarray,
    num_disks: int,
    model: MG1ResponseModel,
    spec: DiskSpec,
    epoch_seconds: float,
    goal_s: float | None,
    prev_boundaries: tuple[int, ...] | None = None,
    config: SpeedSettingConfig | None = None,
) -> SpeedAssignment:
    """Choose the epoch's tier configuration (the CR algorithm).

    Args:
        heat: per-extent predicted request rates (requests/second).
        num_disks: array width.
        model: response model built on the array's disk mechanics.
        spec: disk hardware parameters (for speeds and power).
        epoch_seconds: planning horizon.
        goal_s: average response-time goal; None = energy-only (still
            requires every loaded tier to be stable).
        prev_boundaries: last epoch's boundary vector, for the
            reconfiguration penalty.
        config: optimizer knobs.
    """
    if num_disks <= 0:
        raise ValueError("num_disks must be positive")
    if epoch_seconds <= 0:
        raise ValueError("epoch_seconds must be positive")
    cfg = config or SpeedSettingConfig()
    heat = np.asarray(heat, dtype=np.float64)
    num_extents = len(heat)
    if num_extents == 0:
        raise ValueError("heat vector is empty")

    speeds_desc = tuple(sorted(spec.rpm_levels, reverse=True))
    num_speeds = len(speeds_desc)
    sorted_heat = np.sort(heat, kind="stable")[::-1]
    prefix = np.concatenate(([0.0], np.cumsum(sorted_heat)))
    total_lambda = float(prefix[-1])
    share = num_extents / num_disks

    planning_goal = None
    if goal_s is not None:
        planning_goal = goal_s * (1.0 - cfg.goal_margin)
    # Constraint in sum form: sum_t lambda_t * R_t <= goal * Lambda.
    response_budget = math.inf if planning_goal is None else planning_goal * total_lambda

    # Per-(speed, boundary-pair) tier evaluation, built incrementally in
    # the recursion below.
    def tier_cost(speed_idx: int, disk_lo: int, disk_hi: int) -> tuple[float, float, TierPrediction] | None:
        """(energy_J, weighted_response, prediction) for one tier, or
        None when the tier is saturated."""
        n = disk_hi - disk_lo
        rpm = speeds_desc[speed_idx]
        e_lo = int(round(disk_lo * share)) if disk_lo < num_disks else num_extents
        e_hi = num_extents if disk_hi == num_disks else int(round(disk_hi * share))
        e_hi = max(e_hi, e_lo)
        tier_lambda = float(prefix[e_hi] - prefix[e_lo])
        per_disk = tier_lambda / n
        moments = model.moments(rpm)
        rho = per_disk * moments.mean
        if rho >= model.max_utilization and tier_lambda > 0:
            return None
        if tier_lambda > 0:
            wait = per_disk * moments.second / (2.0 * (1.0 - rho))
            response = moments.mean + wait
        else:
            response = moments.mean
            rho = 0.0
        energy = n * spec.idle_watts(rpm) * epoch_seconds
        energy += tier_lambda * moments.mean * spec.seek_watts * epoch_seconds
        prediction = TierPrediction(
            rpm=rpm,
            num_disks=n,
            tier_lambda=tier_lambda,
            per_disk_lambda=per_disk,
            utilization=rho,
            response_s=response,
        )
        return energy, tier_lambda * response, prediction

    def change_penalty(boundaries: tuple[int, ...]) -> float:
        if prev_boundaries is None or cfg.change_penalty_joules == 0.0:
            return 0.0
        if len(prev_boundaries) != len(boundaries):
            return 0.0
        moved = sum(
            abs(boundaries[t] - prev_boundaries[t]) for t in range(1, len(boundaries) - 1)
        )
        return moved * cfg.change_penalty_joules

    best_energy = math.inf
    best: tuple[tuple[int, ...], list[TierPrediction], float, float] | None = None

    # Depth-first enumeration of non-decreasing boundary vectors.
    def recurse(
        speed_idx: int,
        disk_cursor: int,
        partial_energy: float,
        partial_weighted: float,
        partial_boundaries: list[int],
        partial_predictions: list[TierPrediction],
    ) -> None:
        nonlocal best_energy, best
        if speed_idx == num_speeds - 1:
            # Last (slowest) tier takes all remaining disks.
            lo, hi = disk_cursor, num_disks
            boundaries = tuple(partial_boundaries + [num_disks])
            if hi > lo:
                result = tier_cost(speed_idx, lo, hi)
                if result is None:
                    return
                energy, weighted, prediction = result
                partial_energy += energy
                partial_weighted += weighted
                predictions = partial_predictions + [prediction]
            else:
                predictions = list(partial_predictions)
            if partial_weighted > response_budget:
                return
            total = partial_energy + change_penalty(boundaries)
            if total < best_energy:
                best_energy = total
                response = partial_weighted / total_lambda if total_lambda > 0 else 0.0
                best = (boundaries, predictions, partial_energy, response)
            return
        for next_cursor in range(disk_cursor, num_disks + 1):
            energy = partial_energy
            weighted = partial_weighted
            predictions = partial_predictions
            if next_cursor > disk_cursor:
                result = tier_cost(speed_idx, disk_cursor, next_cursor)
                if result is None:
                    continue
                tier_energy, tier_weighted, prediction = result
                energy = partial_energy + tier_energy
                weighted = partial_weighted + tier_weighted
                if weighted > response_budget:
                    continue
                if energy >= best_energy:
                    continue
                predictions = partial_predictions + [prediction]
            recurse(
                speed_idx + 1,
                next_cursor,
                energy,
                weighted,
                partial_boundaries + [next_cursor],
                predictions,
            )

    recurse(0, 0, 0.0, 0.0, [0], [])

    if best is None:
        # Nothing met the goal: fall back to everything at full speed.
        boundaries = tuple([0, num_disks] + [num_disks] * (num_speeds - 1))
        result = tier_cost(0, 0, num_disks)
        if result is None:
            # Even full speed saturates; report it anyway (the simulation
            # will show the overload, as the real system would).
            moments = model.moments(speeds_desc[0])
            prediction = TierPrediction(
                rpm=speeds_desc[0],
                num_disks=num_disks,
                tier_lambda=total_lambda,
                per_disk_lambda=total_lambda / num_disks,
                utilization=1.0,
                response_s=math.inf,
            )
            energy = num_disks * spec.active_watts(speeds_desc[0]) * epoch_seconds
            weighted = math.inf
        else:
            energy, weighted, prediction = result
        return SpeedAssignment(
            speeds_desc=speeds_desc,
            boundaries=boundaries,
            extent_boundaries=_extent_boundaries(num_extents, num_disks, boundaries),
            predictions=[prediction],
            predicted_energy_joules=energy,
            predicted_response_s=(weighted / total_lambda if total_lambda > 0 else 0.0),
            feasible=False,
        )

    boundaries, predictions, energy, response = best
    return SpeedAssignment(
        speeds_desc=speeds_desc,
        boundaries=boundaries,
        extent_boundaries=_extent_boundaries(num_extents, num_disks, boundaries),
        predictions=predictions,
        predicted_energy_joules=energy,
        predicted_response_s=response,
        feasible=True,
    )


def solve_utilization_assignment(
    heat: np.ndarray,
    num_disks: int,
    model: MG1ResponseModel,
    spec: DiskSpec,
    epoch_seconds: float,
    util_target: float = 0.6,
) -> SpeedAssignment:
    """The naive coarse-grained strawman: utilization targeting.

    Instead of predicting response times against a goal, pick the single
    slowest speed at which the array's average utilization stays at or
    below ``util_target``, and run every disk there (no tiers). This is
    what a coarse-grained controller looks like *without* the paper's
    queueing model — the A3 ablation measures what the model buys.
    """
    if not 0.0 < util_target < 1.0:
        raise ValueError(f"util_target must be in (0, 1), got {util_target!r}")
    if num_disks <= 0:
        raise ValueError("num_disks must be positive")
    heat = np.asarray(heat, dtype=np.float64)
    if len(heat) == 0:
        raise ValueError("heat vector is empty")
    total_lambda = float(heat.sum())
    per_disk = total_lambda / num_disks
    speeds_desc = tuple(sorted(spec.rpm_levels, reverse=True))
    chosen_idx = 0  # fall back to fastest if nothing meets the target
    for idx in range(len(speeds_desc) - 1, -1, -1):  # slowest first
        rpm = speeds_desc[idx]
        if per_disk * model.moments(rpm).mean <= util_target:
            chosen_idx = idx
            break
    rpm = speeds_desc[chosen_idx]
    moments = model.moments(rpm)
    rho = per_disk * moments.mean
    if rho < model.max_utilization:
        wait = per_disk * moments.second / (2.0 * (1.0 - rho)) if total_lambda > 0 else 0.0
        response = moments.mean + wait
    else:
        response = math.inf
    energy = num_disks * spec.idle_watts(rpm) * epoch_seconds
    energy += total_lambda * moments.mean * spec.seek_watts * epoch_seconds
    boundaries = [0] * (len(speeds_desc) + 1)
    for t in range(chosen_idx + 1, len(speeds_desc) + 1):
        boundaries[t] = num_disks
    prediction = TierPrediction(
        rpm=rpm,
        num_disks=num_disks,
        tier_lambda=total_lambda,
        per_disk_lambda=per_disk,
        utilization=rho,
        response_s=response,
    )
    return SpeedAssignment(
        speeds_desc=speeds_desc,
        boundaries=tuple(boundaries),
        extent_boundaries=_extent_boundaries(len(heat), num_disks, tuple(boundaries)),
        predictions=[prediction],
        predicted_energy_joules=energy,
        predicted_response_s=response,
        feasible=rho < model.max_utilization,
    )
