"""The response-time guarantee: deficit tracking + full-speed boost.

Hibernator promises that the *cumulative average* response time stays at
or below the goal whenever the full-speed array could meet it. The
mechanism is a running deficit

    D = sum over completed requests of (latency - goal)

which is exactly ``n * (cumulative_average - goal)``. Whenever D turns
positive the guarantee is at risk: the controller **boosts** — spins
every disk to full speed and cancels background migration — and holds
the boost until enough negative slack (credit) has been rebuilt, with a
hysteresis margin so the array does not oscillate at the boundary.

Boosting is what lets the rest of the system be aggressive: the CR
optimizer can pick slow, cheap configurations knowing that a prediction
error is bounded by the boost's reaction, not by the epoch length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.events import BoostEnter, BoostExit, TraceEvent
from repro.sim.stats import DeficitTracker


@dataclass
class GuaranteeConfig:
    """Boost controller knobs.

    Attributes:
        enter_threshold_requests: enter the boost once the deficit
            exceeds ``goal * enter_threshold_requests``. A boost is not
            free — transitioning spindles cannot serve, so reacting to
            every sign-flip of the deficit would *cause* violations on
            transient blips. The threshold bounds the overshoot a boost
            is allowed to react to (the paper checks at intervals for
            the same reason).
        exit_credit_requests: extra credit required before leaving the
            boost: exit is allowed once the deficit has been driven to
            ``-goal * exit_credit_requests`` or below. The controller
            only *checks* this at epoch boundaries (exiting mid-epoch
            would return to a configuration chosen for stale heat — the
            exact mistake that triggered the boost). Default 0: exit as
            soon as the cumulative average is back at the goal.
        enabled: set False for the A1 ablation (no guarantee).
        degraded_enter_factor: multiplier applied to the entry threshold
            while the array is degraded (a disk failed / rebuilding).
            Degraded-mode latency spikes are structural — reconstruction
            fan-out, rebuild contention — not a prediction error a boost
            can fix cheaply, but the guarantee still holds; a factor
            below 1 makes the boost *more* eager during the exposure
            window, which is the safe direction.
    """

    enter_threshold_requests: float = 50.0
    exit_credit_requests: float = 0.0
    enabled: bool = True
    degraded_enter_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.enter_threshold_requests < 0:
            raise ValueError("enter_threshold_requests must be non-negative")
        if self.exit_credit_requests < 0:
            raise ValueError("exit_credit_requests must be non-negative")
        if self.degraded_enter_factor <= 0:
            raise ValueError("degraded_enter_factor must be positive")


class BoostController:
    """Tracks the deficit and decides when to enter/leave the boost."""

    def __init__(self, goal_s: float, config: GuaranteeConfig | None = None) -> None:
        self.config = config or GuaranteeConfig()
        self.tracker = DeficitTracker(goal_s)
        self.boosted = False
        self.boosts_entered = 0
        self.boost_seconds = 0.0
        self._boost_started: float | None = None
        self._degraded = False
        # Structured-trace hook (repro.obs); None = tracing disabled.
        self.emit: Callable[[TraceEvent], None] | None = None

    @property
    def goal_s(self) -> float:
        return self.tracker.goal

    @property
    def deficit(self) -> float:
        return self.tracker.deficit

    def observe(self, latency_s: float) -> None:
        """Fold one completed foreground request into the deficit."""
        self.tracker.add(latency_s)

    def set_degraded(self, degraded: bool) -> None:
        """Tell the controller the array is (no longer) degraded; the
        entry threshold scales by ``degraded_enter_factor`` while set."""
        self._degraded = degraded

    def should_enter_boost(self) -> bool:
        """True when the deficit has built past the entry threshold."""
        if not self.config.enabled or self.boosted:
            return False
        threshold = self.goal_s * self.config.enter_threshold_requests
        if self._degraded:
            threshold *= self.config.degraded_enter_factor
        return self.tracker.deficit > threshold

    def should_exit_boost(self) -> bool:
        """True when enough credit has accumulated to resume saving."""
        if not self.boosted:
            return False
        credit_target = self.goal_s * self.config.exit_credit_requests
        return self.tracker.deficit <= -credit_target

    def enter_boost(self, now: float) -> None:
        if self.boosted:
            raise RuntimeError("already boosted")
        self.boosted = True
        self.boosts_entered += 1
        self._boost_started = now
        if self.emit is not None:
            self.emit(BoostEnter(time=now, deficit_s=self.tracker.deficit))

    def exit_boost(self, now: float) -> None:
        if not self.boosted:
            raise RuntimeError("not boosted")
        if self._boost_started is not None:
            self.boost_seconds += now - self._boost_started
            self._boost_started = None
        self.boosted = False
        if self.emit is not None:
            self.emit(BoostExit(
                time=now,
                deficit_s=self.tracker.deficit,
                boost_seconds_total=self.boost_seconds,
            ))

    def finish(self, now: float) -> None:
        """Close accounting at end of run (boost may still be active).

        Idempotent: the open interval is added once and ``_boost_started``
        is cleared, so a later ``finish`` or ``exit_boost`` at the same
        time adds nothing. ``boosted`` stays True — the run *ended*
        boosted; only the time accounting is closed.
        """
        if self.boosted and self._boost_started is not None:
            self.boost_seconds += now - self._boost_started
            self._boost_started = None

    @property
    def cumulative_average(self) -> float:
        return self.tracker.cumulative_average

    @property
    def meets_goal(self) -> bool:
        """Whether the cumulative average currently satisfies the goal."""
        return not self.tracker.violated
