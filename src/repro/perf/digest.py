"""Content digests of simulation results.

A digest is the content hash of a :class:`SimulationResult` with the
``runtime_*`` extras stripped — those wall-clock gauges are the only
fields that legitimately vary between repeats of the same spec (see
:mod:`repro.analysis.parallel`). Everything else is a pure function of
the spec, so equal digests mean byte-identical results.

Digests are versioned independently of the cache's ``CODE_VERSION``:
the golden files pin *behaviour across optimizations*, which must
survive cache-key bumps for unrelated accounting changes.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.cache import content_key
from repro.sim.runner import SimulationResult

#: Bump only when the digest *algorithm* changes, never for code changes
#: that are supposed to keep results identical.
DIGEST_VERSION = "result-digest-1"


def strip_runtime(result: SimulationResult) -> SimulationResult:
    """Copy of ``result`` without the wall-clock ``runtime_*`` extras."""
    extras = {k: v for k, v in result.extras.items() if not k.startswith("runtime_")}
    return dataclasses.replace(result, extras=extras)


def result_digest(result: SimulationResult) -> str:
    """Stable hex digest of everything deterministic in ``result``."""
    return content_key(strip_runtime(result), version=DIGEST_VERSION)
