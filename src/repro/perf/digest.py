"""Content digests of simulation results.

A digest is the content hash of a :class:`SimulationResult` with the
``runtime_*`` extras stripped — those wall-clock gauges are the only
fields that legitimately vary between repeats of the same spec (see
:mod:`repro.analysis.parallel`). Everything else is a pure function of
the spec, so equal digests mean byte-identical results.

Digests are versioned independently of the cache's ``CODE_VERSION``:
the golden files pin *behaviour across optimizations*, which must
survive cache-key bumps for unrelated accounting changes.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.analysis.cache import content_key
from repro.sim.runner import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.fleet.result import FleetResult

#: Bump only when the digest *algorithm* changes, never for code changes
#: that are supposed to keep results identical.
DIGEST_VERSION = "result-digest-1"


def strip_runtime(result: SimulationResult) -> SimulationResult:
    """Copy of ``result`` without the wall-clock ``runtime_*`` extras."""
    extras = {k: v for k, v in result.extras.items() if not k.startswith("runtime_")}
    return dataclasses.replace(result, extras=extras)


def result_digest(result: SimulationResult) -> str:
    """Stable hex digest of everything deterministic in ``result``."""
    return content_key(strip_runtime(result), version=DIGEST_VERSION)


def fleet_result_digest(fleet_result: "FleetResult") -> str:
    """Stable hex digest of everything deterministic in a fleet result.

    Covers every per-array shard (runtime extras stripped), the merged
    fleet extras (deterministic by construction — ``run_fleet`` keeps
    wall-clock figures out of them) and the fleet-scoped event stream.
    Equal digests mean byte-identical fleet behaviour, so the perf
    harness's repeat check doubles as a fleet determinism canary.
    """
    return content_key(
        {
            "num_arrays": fleet_result.num_arrays,
            "results": [strip_runtime(r) for r in fleet_result.results],
            "extras": fleet_result.extras,
            "events": fleet_result.events,
        },
        version=DIGEST_VERSION,
    )
