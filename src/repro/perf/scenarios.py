"""The canonical benchmark scenario matrix.

Twelve scenarios cover the hot paths the simulator actually exercises:
{synthetic Poisson, cello-style diurnal} traces x {always-on,
Hibernator} policies x {fault-free, faulty}; ``fleet-small``, a
four-array fleet with a correlated batch failure that benchmarks the
:mod:`repro.fleet` expansion/partition/merge stack; ``imported-msr``,
which replays the packaged MSR-Cambridge-style fixture through the
whole :mod:`repro.traces.ingest` pipeline (parse, modernize, simulate);
and ``flashcrowd-hibernator`` / ``writeburst-base``, which exercise the
bursty scenario generators. Each scenario is expressed as a
:class:`~repro.analysis.parallel.RunSpec` (or
:class:`~repro.fleet.spec.FleetSpec`) recipe, so it runs through the
exact same stack as a real experiment (trace generated in place, policy
built fresh per run — policies are stateful).

Sizes are chosen so one scenario takes on the order of a second at the
pre-optimization throughput: big enough that per-event costs dominate
setup, small enough that ``repro perf`` stays a coffee-length command.

The smaller :func:`golden_specs` set anchors byte-identity: the results
of these runs are digest-pinned by ``tests/golden/golden_results.json``
and must survive any performance work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.experiments import default_array_config
from repro.analysis.parallel import PolicySpec, RunSpec, TraceSpec
from repro.disks.array import ArrayConfig
from repro.faults.plan import FaultPlan, SlowDiskFault, TransientFault
from repro.fleet.faults import CorrelatedFailure, FleetFaultPlan
from repro.fleet.spec import FleetSpec
from repro.traces.cello import CelloConfig
from repro.traces.ingest import IngestOptions
from repro.traces.synthetic import FlashCrowdConfig, SyntheticConfig, WriteBurstConfig

#: Array shape shared by every scenario: small enough to generate
#: quickly, wide enough that placement/queueing behave like the paper's.
NUM_DISKS = 8
NUM_EXTENTS = 800

#: Fixed response-time goal for the Hibernator scenarios. A constant
#: (rather than a Base-derived goal) keeps each scenario self-contained
#: and its digest independent of any other run.
GOAL_S = 0.03

#: Short control epoch so Hibernator actually migrates and changes
#: speeds inside the benchmark window.
EPOCH_S = 60.0


def _array() -> ArrayConfig:
    return default_array_config(num_disks=NUM_DISKS, num_extents=NUM_EXTENTS)


def _synthetic() -> TraceSpec:
    return TraceSpec.from_generator(
        "synthetic",
        SyntheticConfig(
            name="perf-synth",
            duration=240.0,
            rate=150.0,
            num_extents=NUM_EXTENTS,
            zipf_theta=0.9,
            seed=11,
        ),
    )


def _cello() -> TraceSpec:
    return TraceSpec.from_generator(
        "cello",
        CelloConfig(
            days=1.0,
            day_length_s=1200.0,
            day_rate=60.0,
            night_rate=6.0,
            num_extents=NUM_EXTENTS,
            seed=7,
        ),
    )


def _synthetic_faults() -> FaultPlan:
    # Transient error window plus one sick-but-alive disk; no outright
    # disk deaths, so the fault path is exercised without the run's
    # length depending on rebuild scheduling.
    return FaultPlan(
        transient_faults=(TransientFault(start_s=40.0, end_s=120.0, probability=0.05),),
        slow_disk_faults=(SlowDiskFault(start_s=60.0, end_s=150.0, factor=3.0, disks=(1,)),),
    )


def _cello_faults() -> FaultPlan:
    return FaultPlan(
        transient_faults=(TransientFault(start_s=200.0, end_s=600.0, probability=0.05),),
        slow_disk_faults=(SlowDiskFault(start_s=300.0, end_s=750.0, factor=3.0, disks=(1,)),),
    )


#: Packaged MSR-Cambridge-style sample replayed by ``imported-msr``.
#: ~5900 requests over 120 s on a 2000-extent volume, deterministic by
#: construction (see docs/traces.md).
MSR_FIXTURE = Path(__file__).parent / "data" / "msr-sample.csv.gz"


def _imported() -> TraceSpec:
    # Modernize the fixture onto the benchmark array: fold 2000 source
    # extents onto NUM_EXTENTS, stretch to 240 s, and superpose to ~6x
    # the request count — the full ingest pipeline, every call.
    return TraceSpec.from_import(
        str(MSR_FIXTURE),
        "msr",
        IngestOptions(
            name="perf-imported",
            target_extents=NUM_EXTENTS,
            target_duration_s=240.0,
            intensity=6.0,
            seed=17,
        ),
    )


def _flashcrowd() -> TraceSpec:
    return TraceSpec.from_generator(
        "flashcrowd",
        FlashCrowdConfig(
            name="perf-flashcrowd",
            duration=240.0,
            base_rate=80.0,
            spike_factor=6.0,
            spike_start=120.0,
            spike_duration=60.0,
            num_extents=NUM_EXTENTS,
            seed=13,
        ),
    )


def _writeburst() -> TraceSpec:
    return TraceSpec.from_generator(
        "writeburst",
        WriteBurstConfig(
            name="perf-writeburst",
            duration=240.0,
            read_rate=120.0,
            checkpoint_period=60.0,
            sweep_rate=300.0,
            sweep_fraction=0.15,
            num_extents=NUM_EXTENTS,
            seed=19,
        ),
    )


_TRACES = {
    "synthetic": _synthetic,
    "cello": _cello,
    "imported": _imported,
    "flashcrowd": _flashcrowd,
    "writeburst": _writeburst,
}
_FAULTS = {"synthetic": _synthetic_faults, "cello": _cello_faults}

#: Fleet width of the ``fleet-small`` scenario.
FLEET_ARRAYS = 4


def _fleet_trace(num_arrays: int, duration: float, rate: float) -> TraceSpec:
    """Global trace addressing the whole fleet's extent space."""
    return TraceSpec.from_generator(
        "synthetic",
        SyntheticConfig(
            name="perf-fleet",
            duration=duration,
            rate=rate,
            num_extents=num_arrays * NUM_EXTENTS,
            zipf_theta=0.9,
            seed=31,
        ),
    )


def _fleet_faults() -> FleetFaultPlan:
    # One correlated batch failure plus the usual transient window via
    # the common plan, so the fleet fault path (expansion, merge, seeds)
    # is all on the benchmarked path.
    return FleetFaultPlan(
        common=FaultPlan(
            transient_faults=(
                TransientFault(start_s=30.0, end_s=90.0, probability=0.03),
            ),
        ),
        correlated_failures=(
            CorrelatedFailure(time_s=60.0, disk=2, arrays=(0, 2), stagger_s=5.0),
        ),
    )


def _fleet_spec(engine: str = "scalar") -> FleetSpec:
    return FleetSpec(
        num_arrays=FLEET_ARRAYS,
        trace=_fleet_trace(FLEET_ARRAYS, duration=120.0, rate=200.0),
        array=_array(),
        policy=PolicySpec.named("hibernator", epoch_seconds=EPOCH_S),
        partitioner="block",
        goal_s=GOAL_S,
        faults=_fleet_faults(),
        engine=engine,
    )


@dataclass(frozen=True)
class PerfScenario:
    """One canonical benchmark scenario.

    Attributes:
        name: stable identifier, used as the key in BENCH files —
            renaming a scenario orphans its baseline history.
        trace: ``"synthetic"`` or ``"cello"``.
        policy: ``"base"`` (always-on) or ``"hibernator"``.
        faults: inject the trace kind's fault plan.
        quick: member of the ``--quick`` subset (CI smoke).
        fleet: a fleet-scale scenario — ``spec()`` returns a
            :class:`FleetSpec` and the harness runs it through
            :func:`repro.fleet.executor.run_fleet` (``trace``/``policy``/
            ``faults`` are fixed by the fleet recipe).
    """

    name: str
    trace: str
    policy: str
    faults: bool
    quick: bool = False
    fleet: bool = False

    def spec(self, engine: str = "scalar") -> RunSpec | FleetSpec:
        """A fresh, fully self-contained run recipe for this scenario."""
        if self.fleet:
            return _fleet_spec(engine)
        if self.policy == "base":
            policy = PolicySpec.named("base")
            goal = None
        else:
            policy = PolicySpec.named("hibernator", epoch_seconds=EPOCH_S)
            goal = GOAL_S
        return RunSpec(
            trace=_TRACES[self.trace](),
            array=_array(),
            policy=policy,
            goal_s=goal,
            faults=_FAULTS[self.trace]() if self.faults else None,
            engine=engine,
        )


PERF_SCENARIOS: tuple[PerfScenario, ...] = (
    PerfScenario("synth-base", "synthetic", "base", faults=False, quick=True),
    PerfScenario("synth-hibernator", "synthetic", "hibernator", faults=False),
    PerfScenario("synth-base-faults", "synthetic", "base", faults=True),
    PerfScenario("synth-hibernator-faults", "synthetic", "hibernator", faults=True,
                 quick=True),
    PerfScenario("cello-base", "cello", "base", faults=False),
    PerfScenario("cello-hibernator", "cello", "hibernator", faults=False, quick=True),
    PerfScenario("cello-base-faults", "cello", "base", faults=True),
    PerfScenario("cello-hibernator-faults", "cello", "hibernator", faults=True),
    PerfScenario("fleet-small", "synthetic", "hibernator", faults=True,
                 quick=True, fleet=True),
    PerfScenario("imported-msr", "imported", "hibernator", faults=False, quick=True),
    PerfScenario("flashcrowd-hibernator", "flashcrowd", "hibernator", faults=False,
                 quick=True),
    PerfScenario("writeburst-base", "writeburst", "base", faults=False, quick=True),
)


def select_scenarios(
    names: list[str] | None = None, quick: bool = False
) -> tuple[PerfScenario, ...]:
    """Resolve a CLI selection to scenarios (ValueError on unknown names)."""
    if names:
        by_name = {s.name: s for s in PERF_SCENARIOS}
        unknown = sorted(set(names) - set(by_name))
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {unknown}; known: {sorted(by_name)}"
            )
        return tuple(by_name[n] for n in names)
    if quick:
        return tuple(s for s in PERF_SCENARIOS if s.quick)
    return PERF_SCENARIOS


# -- golden (byte-identity) scenarios ---------------------------------------


def _golden_trace() -> TraceSpec:
    return TraceSpec.from_generator(
        "synthetic",
        SyntheticConfig(
            name="golden-synth",
            duration=60.0,
            rate=60.0,
            num_extents=NUM_EXTENTS,
            zipf_theta=0.9,
            seed=23,
        ),
    )


def golden_specs() -> dict[str, RunSpec | FleetSpec]:
    """The digest-pinned run recipes, by name.

    Small on purpose (they run inside the tier-1 test suite) but chosen
    to cover every accounting surface performance work touches: plain
    replay, Hibernator control flow, fault injection with retries, the
    time-series sampler (``window_s``), the no-retained-samples
    percentile path, (``golden-fleet``) the fleet
    expansion/partition/merge stack including correlated failures, and
    (``golden-imported`` / ``golden-flashcrowd`` / ``golden-writeburst``)
    the ingest pipeline and the bursty scenario generators.
    """
    return {
        "golden-base": RunSpec(
            trace=_golden_trace(),
            array=_array(),
            policy=PolicySpec.named("base"),
            window_s=10.0,
        ),
        "golden-hibernator": RunSpec(
            trace=_golden_trace(),
            array=_array(),
            policy=PolicySpec.named("hibernator", epoch_seconds=20.0),
            goal_s=GOAL_S,
            window_s=10.0,
        ),
        "golden-faults": RunSpec(
            trace=_golden_trace(),
            array=_array(),
            policy=PolicySpec.named("base"),
            faults=FaultPlan(
                transient_faults=(
                    TransientFault(start_s=10.0, end_s=30.0, probability=0.08),
                ),
                slow_disk_faults=(
                    SlowDiskFault(start_s=15.0, end_s=40.0, factor=2.5, disks=(2,)),
                ),
            ),
        ),
        "golden-nosamples": RunSpec(
            trace=_golden_trace(),
            array=_array(),
            policy=PolicySpec.named("base"),
            keep_latency_samples=False,
        ),
        "golden-fleet": FleetSpec(
            num_arrays=3,
            trace=_fleet_trace(3, duration=40.0, rate=90.0),
            array=_array(),
            policy=PolicySpec.named("base"),
            partitioner="stripe",
            faults=FleetFaultPlan(
                correlated_failures=(
                    CorrelatedFailure(time_s=15.0, disk=1, arrays=(0, 2),
                                      stagger_s=2.0),
                ),
            ),
            observe=True,
        ),
        "golden-imported": RunSpec(
            trace=TraceSpec.from_import(
                str(MSR_FIXTURE),
                "msr",
                IngestOptions(
                    name="golden-imported",
                    target_extents=NUM_EXTENTS,
                    target_duration_s=60.0,
                    seed=17,
                ),
            ),
            array=_array(),
            policy=PolicySpec.named("base"),
        ),
        "golden-flashcrowd": RunSpec(
            trace=TraceSpec.from_generator(
                "flashcrowd",
                FlashCrowdConfig(
                    name="golden-flashcrowd",
                    duration=60.0,
                    base_rate=40.0,
                    spike_factor=6.0,
                    spike_start=30.0,
                    spike_duration=15.0,
                    num_extents=NUM_EXTENTS,
                    seed=29,
                ),
            ),
            array=_array(),
            policy=PolicySpec.named("hibernator", epoch_seconds=20.0),
            goal_s=GOAL_S,
        ),
        "golden-writeburst": RunSpec(
            trace=TraceSpec.from_generator(
                "writeburst",
                WriteBurstConfig(
                    name="golden-writeburst",
                    duration=60.0,
                    read_rate=50.0,
                    checkpoint_period=20.0,
                    sweep_rate=200.0,
                    sweep_fraction=0.1,
                    num_extents=NUM_EXTENTS,
                    seed=37,
                ),
            ),
            array=_array(),
            policy=PolicySpec.named("base"),
        ),
    }
