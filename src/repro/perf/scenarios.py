"""The canonical benchmark scenario matrix.

Eight scenarios cover the hot paths the simulator actually exercises:
{synthetic Poisson, cello-style diurnal} traces x {always-on,
Hibernator} policies x {fault-free, faulty}. Each is expressed as a
:class:`~repro.analysis.parallel.RunSpec` recipe, so a scenario runs
through the exact same stack as a real experiment (trace generated in
place, policy built fresh per run — policies are stateful).

Sizes are chosen so one scenario takes on the order of a second at the
pre-optimization throughput: big enough that per-event costs dominate
setup, small enough that ``repro perf`` stays a coffee-length command.

The smaller :func:`golden_specs` set anchors byte-identity: the results
of these runs are digest-pinned by ``tests/golden/golden_results.json``
and must survive any performance work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiments import default_array_config
from repro.analysis.parallel import PolicySpec, RunSpec, TraceSpec
from repro.disks.array import ArrayConfig
from repro.faults.plan import FaultPlan, SlowDiskFault, TransientFault
from repro.traces.cello import CelloConfig
from repro.traces.synthetic import SyntheticConfig

#: Array shape shared by every scenario: small enough to generate
#: quickly, wide enough that placement/queueing behave like the paper's.
NUM_DISKS = 8
NUM_EXTENTS = 800

#: Fixed response-time goal for the Hibernator scenarios. A constant
#: (rather than a Base-derived goal) keeps each scenario self-contained
#: and its digest independent of any other run.
GOAL_S = 0.03

#: Short control epoch so Hibernator actually migrates and changes
#: speeds inside the benchmark window.
EPOCH_S = 60.0


def _array() -> ArrayConfig:
    return default_array_config(num_disks=NUM_DISKS, num_extents=NUM_EXTENTS)


def _synthetic() -> TraceSpec:
    return TraceSpec.from_generator(
        "synthetic",
        SyntheticConfig(
            name="perf-synth",
            duration=240.0,
            rate=150.0,
            num_extents=NUM_EXTENTS,
            zipf_theta=0.9,
            seed=11,
        ),
    )


def _cello() -> TraceSpec:
    return TraceSpec.from_generator(
        "cello",
        CelloConfig(
            days=1.0,
            day_length_s=1200.0,
            day_rate=60.0,
            night_rate=6.0,
            num_extents=NUM_EXTENTS,
            seed=7,
        ),
    )


def _synthetic_faults() -> FaultPlan:
    # Transient error window plus one sick-but-alive disk; no outright
    # disk deaths, so the fault path is exercised without the run's
    # length depending on rebuild scheduling.
    return FaultPlan(
        transient_faults=(TransientFault(start_s=40.0, end_s=120.0, probability=0.05),),
        slow_disk_faults=(SlowDiskFault(start_s=60.0, end_s=150.0, factor=3.0, disks=(1,)),),
    )


def _cello_faults() -> FaultPlan:
    return FaultPlan(
        transient_faults=(TransientFault(start_s=200.0, end_s=600.0, probability=0.05),),
        slow_disk_faults=(SlowDiskFault(start_s=300.0, end_s=750.0, factor=3.0, disks=(1,)),),
    )


_TRACES = {"synthetic": _synthetic, "cello": _cello}
_FAULTS = {"synthetic": _synthetic_faults, "cello": _cello_faults}


@dataclass(frozen=True)
class PerfScenario:
    """One canonical benchmark scenario.

    Attributes:
        name: stable identifier, used as the key in BENCH files —
            renaming a scenario orphans its baseline history.
        trace: ``"synthetic"`` or ``"cello"``.
        policy: ``"base"`` (always-on) or ``"hibernator"``.
        faults: inject the trace kind's fault plan.
        quick: member of the ``--quick`` subset (CI smoke).
    """

    name: str
    trace: str
    policy: str
    faults: bool
    quick: bool = False

    def spec(self) -> RunSpec:
        """A fresh, fully self-contained run recipe for this scenario."""
        if self.policy == "base":
            policy = PolicySpec.named("base")
            goal = None
        else:
            policy = PolicySpec.named("hibernator", epoch_seconds=EPOCH_S)
            goal = GOAL_S
        return RunSpec(
            trace=_TRACES[self.trace](),
            array=_array(),
            policy=policy,
            goal_s=goal,
            faults=_FAULTS[self.trace]() if self.faults else None,
        )


PERF_SCENARIOS: tuple[PerfScenario, ...] = (
    PerfScenario("synth-base", "synthetic", "base", faults=False, quick=True),
    PerfScenario("synth-hibernator", "synthetic", "hibernator", faults=False),
    PerfScenario("synth-base-faults", "synthetic", "base", faults=True),
    PerfScenario("synth-hibernator-faults", "synthetic", "hibernator", faults=True,
                 quick=True),
    PerfScenario("cello-base", "cello", "base", faults=False),
    PerfScenario("cello-hibernator", "cello", "hibernator", faults=False, quick=True),
    PerfScenario("cello-base-faults", "cello", "base", faults=True),
    PerfScenario("cello-hibernator-faults", "cello", "hibernator", faults=True),
)


def select_scenarios(
    names: list[str] | None = None, quick: bool = False
) -> tuple[PerfScenario, ...]:
    """Resolve a CLI selection to scenarios (ValueError on unknown names)."""
    if names:
        by_name = {s.name: s for s in PERF_SCENARIOS}
        unknown = sorted(set(names) - set(by_name))
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {unknown}; known: {sorted(by_name)}"
            )
        return tuple(by_name[n] for n in names)
    if quick:
        return tuple(s for s in PERF_SCENARIOS if s.quick)
    return PERF_SCENARIOS


# -- golden (byte-identity) scenarios ---------------------------------------


def _golden_trace() -> TraceSpec:
    return TraceSpec.from_generator(
        "synthetic",
        SyntheticConfig(
            name="golden-synth",
            duration=60.0,
            rate=60.0,
            num_extents=NUM_EXTENTS,
            zipf_theta=0.9,
            seed=23,
        ),
    )


def golden_specs() -> dict[str, RunSpec]:
    """The digest-pinned run recipes, by name.

    Small on purpose (they run inside the tier-1 test suite) but chosen
    to cover every accounting surface performance work touches: plain
    replay, Hibernator control flow, fault injection with retries, the
    time-series sampler (``window_s``), and the no-retained-samples
    percentile path.
    """
    return {
        "golden-base": RunSpec(
            trace=_golden_trace(),
            array=_array(),
            policy=PolicySpec.named("base"),
            window_s=10.0,
        ),
        "golden-hibernator": RunSpec(
            trace=_golden_trace(),
            array=_array(),
            policy=PolicySpec.named("hibernator", epoch_seconds=20.0),
            goal_s=GOAL_S,
            window_s=10.0,
        ),
        "golden-faults": RunSpec(
            trace=_golden_trace(),
            array=_array(),
            policy=PolicySpec.named("base"),
            faults=FaultPlan(
                transient_faults=(
                    TransientFault(start_s=10.0, end_s=30.0, probability=0.08),
                ),
                slow_disk_faults=(
                    SlowDiskFault(start_s=15.0, end_s=40.0, factor=2.5, disks=(2,)),
                ),
            ),
        ),
        "golden-nosamples": RunSpec(
            trace=_golden_trace(),
            array=_array(),
            policy=PolicySpec.named("base"),
            keep_latency_samples=False,
        ),
    }
