"""cProfile wrapper for the benchmark scenarios (``repro perf --profile``)."""

from __future__ import annotations

import cProfile
import io
import pstats

from repro.analysis.parallel import run_spec
from repro.fleet.executor import run_fleet
from repro.fleet.spec import FleetSpec
from repro.perf.scenarios import PerfScenario


def profile_scenarios(scenarios: tuple[PerfScenario, ...], top: int = 25) -> str:
    """Run the scenarios once each under one profiler; return the report.

    One shared profiler (rather than one per scenario) answers the
    question the flag exists for — *where does the whole matrix spend
    its time* — and keeps rarely-hit paths from being drowned out by
    per-report noise floors. Fleet scenarios run serially (``jobs=1``)
    so their shard work is visible to the profiler instead of hiding in
    worker processes.
    """
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top!r}")
    profiler = cProfile.Profile()
    for scenario in scenarios:
        spec = scenario.spec()
        profiler.enable()
        if isinstance(spec, FleetSpec):
            run_fleet(spec)
        else:
            run_spec(spec)
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return stream.getvalue()
