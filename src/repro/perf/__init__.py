"""Performance harness: canonical benchmark scenarios and regression gate.

``repro perf`` runs a fixed scenario matrix (trace kind x policy x
faults) through the real experiment stack, records throughput into a
machine-readable ``BENCH_<date>.json`` at the repo root, and compares
against the most recent committed baseline — exit nonzero on regression,
exactly like ``repro lint`` exits nonzero on findings.

The same scenarios double as the determinism anchor: every benchmark
record carries a content digest of its (runtime-stripped) result, and
the smaller golden set is pinned byte-for-byte by
``tests/test_golden_identity.py``, so "faster" can never silently mean
"different".
"""

from repro.perf.digest import DIGEST_VERSION, result_digest, strip_runtime
from repro.perf.harness import (
    BENCH_PREFIX,
    BENCH_SCHEMA_VERSION,
    DEFAULT_THRESHOLD,
    compare_benchmarks,
    find_baseline,
    load_bench,
    run_benchmark,
    write_bench,
    write_golden,
)
from repro.perf.profiling import profile_scenarios
from repro.perf.scenarios import (
    PERF_SCENARIOS,
    PerfScenario,
    golden_specs,
    select_scenarios,
)

__all__ = [
    "BENCH_PREFIX",
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_THRESHOLD",
    "DIGEST_VERSION",
    "PERF_SCENARIOS",
    "PerfScenario",
    "compare_benchmarks",
    "find_baseline",
    "golden_specs",
    "load_bench",
    "profile_scenarios",
    "result_digest",
    "run_benchmark",
    "select_scenarios",
    "strip_runtime",
    "write_bench",
    "write_golden",
]
