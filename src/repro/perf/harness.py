"""Benchmark execution, BENCH files, and the regression gate.

A BENCH document is plain JSON::

    {
      "schema": 1,
      "generated_at": "2026-08-05T12:00:00+00:00",
      "code_version": "...",          # repro.analysis.cache.CODE_VERSION
      "environment": {"python": ..., "platform": ..., "cpu_count": ...},
      "repeats": 3,
      "scenarios": {
        "synth-base": {
          "events": 71234, "requests": 35617, "wall_s": 1.04,
          "events_per_s": 68494.2, "requests_per_s": 34247.1,
          "digest": "<sha256 of the runtime-stripped result>"
        }, ...
      }
    }

The *baseline* is the committed ``BENCH_*.json`` at the repo root with
the newest ``generated_at`` (the output file itself excluded), so simply
committing a new BENCH file advances the baseline for the next run.
Comparison is per-scenario on ``events_per_s``; a scenario below
``threshold`` times its baseline rate is a regression and the CLI exits
nonzero, mirroring ``repro lint``'s exit-code contract.

Wall time per scenario is the **best of N repeats** — the minimum is the
standard estimator for "the code's cost" because every source of noise
(scheduler, turbo, page cache) only ever adds time.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable

from repro.analysis.atomicio import atomic_write
from repro.analysis.cache import CODE_VERSION
from repro.analysis.parallel import run_spec
from repro.fleet.executor import run_fleet
from repro.fleet.spec import FleetSpec
from repro.lint.guard import resolve_repo_root
from repro.perf.digest import DIGEST_VERSION, fleet_result_digest, result_digest
from repro.perf.scenarios import PerfScenario, golden_specs

BENCH_SCHEMA_VERSION = 1
BENCH_PREFIX = "BENCH_"

#: A scenario is a regression when its events/s falls below this
#: fraction of the baseline's (0.9 = tolerate 10% noise).
DEFAULT_THRESHOLD = 0.9


def _measure(spec: Any) -> tuple[Any, str, int, int, float]:
    """Run one spec (single-array or fleet) and digest the result."""
    start = time.perf_counter()
    if isinstance(spec, FleetSpec):
        fleet_result = run_fleet(spec)
        wall = time.perf_counter() - start
        return (
            fleet_result,
            fleet_result_digest(fleet_result),
            int(fleet_result.extras["fleet_events_executed"]),
            fleet_result.num_requests + fleet_result.failed_requests,
            wall,
        )
    result = run_spec(spec)
    wall = time.perf_counter() - start
    return (
        result,
        result_digest(result),
        int(result.extras["runtime_events"]),
        result.num_requests + result.failed_requests,
        wall,
    )


def _run_one(
    scenario: PerfScenario, repeats: int, engine: str = "scalar"
) -> tuple[dict[str, Any], int]:
    """Run ``scenario`` ``repeats`` times; record best wall time.

    Returns ``(record, distinct_digests)``. The digest count is the
    caller's determinism canary: it must be 1, but the verdict is left
    to :func:`run_benchmark` so a full matrix run reports *every*
    nondeterministic scenario at once instead of aborting on the first.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")
    best_wall = float("inf")
    digests: set[str] = set()
    events = requests = 0
    for _ in range(repeats):
        # Fresh spec per repeat: policies are stateful.
        spec = scenario.spec(engine)
        _, digest, events, requests, wall = _measure(spec)
        best_wall = min(best_wall, wall)
        digests.add(digest)
    record = {
        "events": events,
        "requests": requests,
        "wall_s": best_wall,
        "events_per_s": events / best_wall,
        "requests_per_s": requests / best_wall,
        "digest": min(digests),
    }
    return record, len(digests)


def run_benchmark(
    scenarios: tuple[PerfScenario, ...],
    repeats: int = 3,
    log: Callable[[str], None] | None = None,
    engine: str = "scalar",
) -> dict[str, Any]:
    """Run the scenarios and build a BENCH document.

    Repeats of one spec must be byte-identical (modulo ``runtime_*``
    extras); any scenario whose repeats disagree means the simulator
    leaked nondeterminism. All such scenarios are collected and reported
    in a single :class:`RuntimeError` after the whole matrix has run, so
    one flaky scenario cannot hide another.
    """
    records: dict[str, Any] = {}
    nondeterministic: list[str] = []
    for scenario in scenarios:
        record, distinct = _run_one(scenario, repeats, engine)
        records[scenario.name] = record
        if distinct != 1:
            nondeterministic.append(scenario.name)
            if log is not None:
                log(f"  {scenario.name:<28} NONDETERMINISTIC "
                    f"({distinct} distinct digests)")
            continue
        if log is not None:
            log(
                f"  {scenario.name:<28} {record['events']:>8} events  "
                f"{record['wall_s']:.3f} s  {record['events_per_s']:>10,.0f} ev/s"
            )
    if nondeterministic:
        raise RuntimeError(
            "scenario(s) produced multiple distinct result digests across "
            f"repeats: {', '.join(nondeterministic)}; the simulator leaked "
            "nondeterminism"
        )
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "code_version": CODE_VERSION,
        "digest_version": DIGEST_VERSION,
        "engine": engine,
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "repeats": repeats,
        "scenarios": records,
    }


def write_bench(doc: dict[str, Any], path: str | Path) -> None:
    with atomic_write(path) as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str | Path) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "scenarios" not in doc:
        raise ValueError(f"{path}: not a BENCH document")
    return doc


def find_baseline(
    root: str | Path | None = None,
    exclude: str | Path | None = None,
    engine: str | None = None,
) -> Path | None:
    """Newest committed BENCH file by ``generated_at``; None if none.

    ``exclude`` is the output path of the current run, so a rerun never
    compares against itself. ``engine`` restricts the search to BENCH
    documents produced by that backend (documents predating the field
    count as ``"scalar"``), so a committed batch-engine report never
    becomes the throughput baseline for a scalar run or vice versa.

    Ties on ``generated_at`` (two files generated in the same second, or
    a copied document) are broken by file name, lexicographically last —
    an explicit, platform-independent rule, so which file wins never
    depends on directory iteration order.
    """
    base = Path(root) if root is not None else resolve_repo_root(Path.cwd())
    excluded = Path(exclude).resolve() if exclude is not None else None
    best: tuple[str, str, Path] | None = None
    for path in sorted(base.glob(BENCH_PREFIX + "*.json")):
        if excluded is not None and path.resolve() == excluded:
            continue
        try:
            doc = load_bench(path)
        except (ValueError, OSError, json.JSONDecodeError):
            continue
        if engine is not None and str(doc.get("engine", "scalar")) != engine:
            continue
        stamp = str(doc.get("generated_at", ""))
        if best is None or (stamp, path.name) > (best[0], best[1]):
            best = (stamp, path.name, path)
    return best[2] if best is not None else None


def compare_benchmarks(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """Per-scenario speedup report.

    Returns ``(lines, regressions)``: human-readable comparison lines
    for every scenario present in both documents, and the names of
    scenarios whose ``events_per_s`` fell below ``threshold`` times the
    baseline. The gate runs on the *intersection* only: scenarios
    present on one side (added since the baseline, or dropped from it)
    are reported as informational lines plus a drift summary, never as
    regressions — a matrix rename or addition must not wedge the gate,
    and must not KeyError either.

    Result digests are compared per scenario. A digest mismatch is a
    regression only when both documents carry the same ``code_version``
    and the same ``engine`` — then identical behaviour was promised and
    broke. Across code versions (or engines, or when either document
    predates the field) results may legitimately differ, so the mismatch
    is reported as an informational drift line instead of failing the
    gate.
    """
    if not 0.0 < threshold:
        raise ValueError(f"threshold must be positive, got {threshold!r}")
    lines: list[str] = []
    regressions: list[str] = []
    cur = current["scenarios"]
    base = baseline["scenarios"]
    cur_version = current.get("code_version")
    base_version = baseline.get("code_version")
    cur_engine = str(current.get("engine", "scalar"))
    base_engine = str(baseline.get("engine", "scalar"))
    digests_gate = (
        cur_version is not None
        and cur_version == base_version
        and cur_engine == base_engine
    )
    if (cur_version or base_version) and cur_version != base_version:
        lines.append(
            f"  (code_version drift: baseline {base_version or '<unversioned>'}"
            f" -> current {cur_version or '<unversioned>'}; digest "
            "mismatches reported as warnings, not regressions)"
        )
    if cur_engine != base_engine:
        lines.append(
            f"  (engine drift: baseline {base_engine} -> current "
            f"{cur_engine}; digest mismatches reported as warnings, "
            "not regressions)"
        )
    added = sorted(set(cur) - set(base))
    removed = sorted(set(base) - set(cur))
    for name in sorted(set(cur) | set(base)):
        if name not in base:
            lines.append(f"  {name:<28} (new scenario, no baseline)")
            continue
        if name not in cur:
            lines.append(f"  {name:<28} (in baseline only; not run)")
            continue
        old = float(base[name]["events_per_s"])
        new = float(cur[name]["events_per_s"])
        ratio = new / old if old > 0 else float("inf")
        marker = ""
        if ratio < threshold:
            regressions.append(name)
            marker = f"  REGRESSION (< {threshold:.2f}x)"
        old_digest = base[name].get("digest")
        new_digest = cur[name].get("digest")
        if old_digest and new_digest and old_digest != new_digest:
            if digests_gate:
                if name not in regressions:
                    regressions.append(name)
                marker += "  DIGEST MISMATCH (same code_version/engine)"
            else:
                marker += "  digest drift (informational)"
        lines.append(
            f"  {name:<28} {old:>10,.0f} -> {new:>10,.0f} ev/s "
            f"({ratio:.2f}x){marker}"
        )
    if added or removed:
        lines.append(
            f"  (scenario drift: {len(added)} added, {len(removed)} removed; "
            f"gated on {len(set(cur) & set(base))} common)"
        )
    return lines, regressions


def write_golden(path: str | Path) -> dict[str, str]:
    """Run the golden scenarios and write their digests to ``path``.

    This is how ``tests/golden/golden_results.json`` is (re)generated —
    only legitimate when a change *intends* to alter results, in which
    case ``CODE_VERSION`` must be bumped too (CACHE002 enforces that).
    """
    digests = {name: _measure(spec)[1] for name, spec in sorted(golden_specs().items())}
    doc = {
        "schema": 1,
        "digest_version": DIGEST_VERSION,
        "code_version": CODE_VERSION,
        "digests": digests,
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with atomic_write(out) as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return digests
