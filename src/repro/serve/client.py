"""Blocking client for the serve control protocol.

Small on purpose: connect to the daemon's AF_UNIX socket, send one JSON
line per command, read one JSON line back. ``repro ctl`` and the test
suite both drive the daemon through this class, so the protocol has
exactly one client-side implementation to keep honest.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any

from repro.serve import protocol


class ServeClient:
    """One connection to a running serve daemon."""

    def __init__(self, control_path: str | Path, timeout_s: float = 10.0) -> None:
        self.control_path = Path(control_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout_s)
        self._sock.connect(str(self.control_path))
        self._buffer = b""

    @classmethod
    def connect(
        cls, control_path: str | Path, *, retry_for_s: float = 5.0,
        timeout_s: float = 10.0,
    ) -> "ServeClient":
        """Connect, retrying while the daemon is still binding its socket."""
        deadline = time.monotonic() + retry_for_s
        while True:
            try:
                return cls(control_path, timeout_s=timeout_s)
            except (FileNotFoundError, ConnectionRefusedError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one raw protocol message; returns the raw response."""
        self._sock.sendall(protocol.encode_line(message))
        return protocol.decode_line(self._read_line())

    def command(self, cmd: str, **params: Any) -> dict[str, Any]:
        """Issue a command; returns the response ``data``.

        Raises :class:`~repro.serve.protocol.ProtocolError` when the
        daemon answers ``ok: false``.
        """
        response = self.request({"cmd": cmd, **params})
        if not response.get("ok"):
            raise protocol.ProtocolError(
                str(response.get("error", "daemon refused the command"))
            )
        data = response.get("data")
        return data if isinstance(data, dict) else {}

    def ping(self) -> dict[str, Any]:
        return self.command("ping")

    def status(self) -> dict[str, Any]:
        return self.command("status")

    def set_goal(self, goal_s: float | None) -> dict[str, Any]:
        return self.command("set-goal", goal_s=goal_s)

    def inject_fault(
        self, plan: dict[str, Any], *, relative: bool = True,
    ) -> dict[str, Any]:
        return self.command("inject-fault", plan=plan, relative=relative)

    def force_boost(self) -> dict[str, Any]:
        return self.command("force-boost")

    def shutdown(self) -> dict[str, Any]:
        return self.command("shutdown")

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection mid-response")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
