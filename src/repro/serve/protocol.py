"""The serve control protocol: newline-delimited strict JSON.

One request per line, one response per line, over a local
``AF_UNIX`` stream socket. Requests are objects with a ``cmd`` key:

``{"cmd": "ping"}``
    Liveness probe; answers ``{"pong": true, "version": ...}``.
``{"cmd": "status"}``
    Snapshot of the run: simulated time, progress counters, the current
    speed assignment and the full metrics registry
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`).
``{"cmd": "set-goal", "goal_s": 0.25}``
    Change (or, with ``"goal_s": null``, clear) the response-time goal;
    takes effect immediately in the deficit accounting and at the next
    epoch boundary in the optimizer.
``{"cmd": "inject-fault", "plan": {...}, "relative": true}``
    Install a :mod:`repro.faults` plan mid-run. ``plan`` uses the exact
    ``--faults`` JSON schema (docs/faults.md); with ``relative`` (the
    default) fault times are offsets from the current simulated time.
``{"cmd": "force-boost"}``
    Enter the full-speed boost by operator fiat; answers whether the
    policy actually entered (False: no boost machinery / already
    boosted).
``{"cmd": "shutdown"}``
    Graceful stop: no new requests are admitted, in-flight ones drain,
    the JSONL trace is flushed, ``run_end`` is emitted, the daemon
    exits.

Responses are ``{"ok": true, "data": {...}}`` or
``{"ok": false, "error": "..."}``. Every line is strict JSON — no
``NaN``/``Infinity`` literals, ever (non-finite floats become null).
"""

from __future__ import annotations

import json
import math
from typing import Any

#: Bumped when the message schema changes incompatibly; reported by
#: ``ping`` so clients can refuse to drive a daemon they don't speak.
PROTOCOL_VERSION = 1

#: Commands the daemon understands (the dispatch table is keyed on this).
COMMANDS = ("ping", "status", "set-goal", "inject-fault", "force-boost", "shutdown")

#: Request fields each command carries beyond ``cmd``. This is the wire
#: contract in registry form: the PROTO003 lint guard diffs it (and
#: COMMANDS) against the PR base and demands a PROTOCOL_VERSION bump
#: when either changes, so clients can refuse daemons they don't speak.
MESSAGE_FIELDS: dict[str, tuple[str, ...]] = {
    "ping": (),
    "status": (),
    "set-goal": ("goal_s",),
    "inject-fault": ("plan", "relative"),
    "force-boost": (),
    "shutdown": (),
}

if set(MESSAGE_FIELDS) != set(COMMANDS):  # pragma: no cover - import-time invariant
    raise AssertionError("MESSAGE_FIELDS and COMMANDS list different commands")


class ProtocolError(ValueError):
    """A message violated the protocol (bad JSON, missing cmd, ...)."""


def _strict(value: Any) -> Any:
    """Recursively replace non-finite floats with None (strict JSON)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _strict(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_strict(v) for v in value]
    return value


def encode_line(message: dict[str, Any]) -> bytes:
    """One protocol message as a UTF-8 line (newline included)."""
    return (json.dumps(_strict(message), sort_keys=True, allow_nan=False) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one protocol line; raises :class:`ProtocolError` on junk."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(f"protocol message must be an object, got {type(data).__name__}")
    return data


def request_command(data: dict[str, Any]) -> str:
    """Extract and validate the ``cmd`` of a request."""
    cmd = data.get("cmd")
    if not isinstance(cmd, str):
        raise ProtocolError("request has no 'cmd' string")
    if cmd not in COMMANDS:
        raise ProtocolError(f"unknown command {cmd!r}; known: {', '.join(COMMANDS)}")
    return cmd


def ok_response(data: dict[str, Any] | None = None) -> dict[str, Any]:
    return {"ok": True, "data": data or {}}


def error_response(message: str) -> dict[str, Any]:
    return {"ok": False, "error": message}
