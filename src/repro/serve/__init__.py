"""The live control plane: ``repro serve``.

The paper's Hibernator is an *online* controller — it watches a live
request stream and re-solves speed assignments at epoch boundaries — but
the rest of this repo drives it from pre-materialized traces in one
batch call. This package runs the same Engine/ArraySimulation machinery
as a long-lived daemon:

* :mod:`repro.serve.daemon` — the single-threaded event loop: paces the
  simulation against the wall clock (or flat out for replay), accepts a
  line-delimited JSON request feed (live mode), and answers a control
  protocol over a local socket;
* :mod:`repro.serve.protocol` — the NDJSON control message schema shared
  by daemon, client and tests;
* :mod:`repro.serve.client` — a tiny blocking client used by
  ``repro ctl`` and the test suite.

Determinism: replay mode at ``--accel 0`` issues only
``step(max_events=N)`` chunks — the simulated clock never fast-forwards
to a wall-derived horizon — so the event sequence, and therefore the
result digest, is byte-identical to the batch runner's for the same
spec. Any wall-clock pacing (``--accel N``, live mode) trades that away
by construction; see ``docs/serve.md``.
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    ok_response,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeDaemon",
    "decode_line",
    "encode_line",
    "error_response",
    "ok_response",
]
