"""The ``repro serve`` daemon: one simulation, driven online.

Single-threaded by design. One selector loop interleaves three duties:

* **advancing the simulation** — replay mode steps the engine through
  the pre-loaded trace (flat out at ``accel=0``, paced against the wall
  clock at ``accel>0``); live mode fast-forwards simulated time to
  ``elapsed_wall * accel`` so epoch boundaries and idle timers fire in
  wall time while requests arrive over the ingest socket;
* **the control socket** — newline-delimited JSON commands
  (:mod:`repro.serve.protocol`): status, set-goal, inject-fault,
  force-boost, shutdown;
* **the ingest socket** (live mode) — one JSON request per line,
  submitted to the array the moment it is read.

Shutdown — command, SIGINT or SIGTERM — is always graceful: arrivals
stop, in-flight requests drain, the result is finalized (``run_end``
emitted), and the JSONL event trace is flushed line-complete to disk.

Determinism: at ``accel=0`` the loop only ever calls
``sim.step(max_events=N)`` — no wall-derived ``until`` horizon — so the
executed event sequence is byte-identical to the batch runner's
one-shot ``run()`` and so is the result digest. Wall-clock pacing
(``accel>0``, live mode) is inherently nondeterministic and documented
as such in docs/serve.md.
"""

from __future__ import annotations

import selectors
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Any

from repro.faults.plan import fault_plan_from_dict, shift_fault_plan
from repro.obs.events import ServeBoostForced, ServeFaultInjected, ServeGoalChanged
from repro.obs.tracelog import JsonlWriter
from repro.serve import protocol
from repro.sim.request import IoKind
from repro.sim.runner import ArraySimulation, SimulationResult

#: Engine events executed between control polls in as-fast-as-possible
#: replay. Large enough that stepping overhead vanishes, small enough
#: that a waiting control client gets an answer within milliseconds.
_REPLAY_CHUNK = 4096

#: Selector timeout when the daemon has nothing urgent to do.
_IDLE_POLL_S = 0.05


class _LineConn:
    """One accepted connection with line-buffered reads."""

    __slots__ = ("sock", "buffer")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = b""

    def read_lines(self) -> list[bytes] | None:
        """Drain readable bytes; returns complete lines, or None on EOF."""
        try:
            chunk = self.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return []
        except OSError:
            return None
        if not chunk:
            return None
        self.buffer += chunk
        if b"\n" not in self.buffer:
            return []
        *lines, self.buffer = self.buffer.split(b"\n")
        return lines

    def send(self, payload: bytes) -> None:
        try:
            self.sock.sendall(payload)
        except OSError:
            pass  # client went away; its problem, not the run's


class ServeDaemon:
    """Drives one :class:`ArraySimulation` behind a control socket.

    Args:
        sim: a fully built, un-begun simulation. Replay mode uses the
            trace it was built with; live mode (``sim.live``) expects an
            empty trace and an ingest socket.
        control_path: filesystem path for the AF_UNIX control socket.
        accel: simulated seconds advanced per wall-clock second. 0 means
            as-fast-as-possible replay (deterministic); live mode
            requires ``accel > 0`` (there is no trace to outrun).
        ingest_path: AF_UNIX path for the live request feed; required in
            live mode, ignored in replay.
        trace_out: JSONL path for the streamed event trace (only useful
            when the sim was built with ``observe=True``).
        exit_on_drain: leave the serve loop as soon as the replay
            workload drains instead of waiting for a shutdown command —
            the batch-like usage the golden test and CI smoke drive.
        install_signal_handlers: hook SIGINT/SIGTERM for graceful
            shutdown. Default: only when running on the main thread
            (the test suite serves from a background thread, where
            ``signal.signal`` raises).
    """

    def __init__(
        self,
        sim: ArraySimulation,
        control_path: str | Path,
        *,
        accel: float = 0.0,
        ingest_path: str | Path | None = None,
        trace_out: str | Path | None = None,
        exit_on_drain: bool = False,
        install_signal_handlers: bool | None = None,
    ) -> None:
        if accel < 0:
            raise ValueError(f"accel must be >= 0, got {accel}")
        if sim.live and accel <= 0:
            raise ValueError("live mode needs accel > 0 (wall-clock pacing)")
        if sim.live and ingest_path is None:
            raise ValueError("live mode needs an ingest socket path")
        self.sim = sim
        self.control_path = Path(control_path)
        self.ingest_path = Path(ingest_path) if ingest_path is not None else None
        self.accel = accel
        self.exit_on_drain = exit_on_drain
        self.result: SimulationResult | None = None
        self.ingested = 0
        self.ingest_errors = 0
        self._writer = JsonlWriter(trace_out) if trace_out is not None else None
        self._event_ptr = 0
        self._shutdown = False
        self._selector: selectors.BaseSelector | None = None
        if install_signal_handlers is None:
            install_signal_handlers = threading.current_thread() is threading.main_thread()
        self._install_signals = install_signal_handlers

    @property
    def trace_lines(self) -> int:
        """JSONL event lines streamed to ``trace_out`` so far."""
        return self._writer.lines if self._writer is not None else 0

    # -- lifecycle -----------------------------------------------------------

    def serve(self) -> SimulationResult:
        """Run to completion; returns the finalized result."""
        previous: dict[int, Any] = {}
        if self._install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, self._on_signal)
        control = self._listen(self.control_path)
        ingest = self._listen(self.ingest_path) if self.ingest_path is not None else None
        self._selector = selectors.DefaultSelector()
        self._selector.register(control, selectors.EVENT_READ, ("accept", "control"))
        if ingest is not None:
            self._selector.register(ingest, selectors.EVENT_READ, ("accept", "ingest"))
        try:
            self.sim.begin()
            self._stream_events()
            wall_start = time.perf_counter()
            while not self._shutdown:
                busy = self._advance(time.perf_counter() - wall_start)
                self._stream_events()
                if self.exit_on_drain and not self.sim.live and self.sim.drain_complete:
                    break
                self._poll(0.0 if busy else _IDLE_POLL_S)
            return self._finish()
        finally:
            self._selector.close()
            self._selector = None
            control.close()
            self._unlink(self.control_path)
            if ingest is not None:
                ingest.close()
                self._unlink(self.ingest_path)
            if self._writer is not None:
                self._writer.close()
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _finish(self) -> SimulationResult:
        """Graceful end: no new work, drain in-flight, close the books."""
        self.sim.halt_arrivals()
        self.sim.drain_in_flight()
        self.result = self.sim.finalize()
        self._stream_events()
        if self._writer is not None:
            self._writer.close()
        return self.result

    def _on_signal(self, signum: int, frame: Any) -> None:
        self._shutdown = True

    # -- pacing --------------------------------------------------------------

    def _advance(self, elapsed_wall_s: float) -> bool:
        """Advance the simulation one slice; True = more work is urgent."""
        sim = self.sim
        if self.accel == 0.0:
            # Deterministic replay: fixed-size event chunks, no
            # wall-derived horizon, so the simulated clock moves exactly
            # as the batch runner's would.
            if sim.drain_complete:
                return False
            sim.step(max_events=_REPLAY_CHUNK)
            return not sim.drain_complete
        # Wall-clock pacing: sim time tracks elapsed_wall * accel. In
        # live mode the clock may fast-forward through idle stretches so
        # periodic machinery keeps firing; replay keeps batch stop
        # semantics (the run ends where the accounting window ends).
        target = elapsed_wall_s * self.accel
        sim.step(until=target, stop_on_drain=not sim.live)
        return False

    # -- socket plumbing -----------------------------------------------------

    @staticmethod
    def _unlink(path: Path | None) -> None:
        if path is None:
            return
        try:
            path.unlink()
        except OSError:
            pass

    def _listen(self, path: Path) -> socket.socket:
        self._unlink(path)  # stale socket from a crashed predecessor
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.setblocking(False)
        sock.bind(str(path))
        sock.listen(8)
        return sock

    def _poll(self, timeout_s: float) -> None:
        assert self._selector is not None
        for key, _ in self._selector.select(timeout_s):
            tag, role = key.data
            if tag == "accept":
                self._accept(key.fileobj, role)  # type: ignore[arg-type]
            else:
                self._service(key.fileobj, role, tag)  # type: ignore[arg-type]

    def _accept(self, server: socket.socket, role: str) -> None:
        assert self._selector is not None
        try:
            sock, _ = server.accept()
        except OSError:
            return
        sock.setblocking(False)
        conn = _LineConn(sock)
        self._selector.register(sock, selectors.EVENT_READ, (conn, role))

    def _drop(self, sock: socket.socket) -> None:
        assert self._selector is not None
        try:
            self._selector.unregister(sock)
        except KeyError:
            pass
        sock.close()

    def _service(self, sock: socket.socket, role: str, conn: _LineConn) -> None:
        lines = conn.read_lines()
        if lines is None:
            self._drop(sock)
            return
        for line in lines:
            if not line.strip():
                continue
            if role == "control":
                conn.send(protocol.encode_line(self._dispatch(line)))
            else:
                conn.send(protocol.encode_line(self._ingest_line(line)))
            if self._shutdown:
                break

    # -- control commands ----------------------------------------------------

    def _dispatch(self, line: bytes) -> dict[str, Any]:
        try:
            request = protocol.decode_line(line)
            cmd = protocol.request_command(request)
            handler = {
                "ping": self._cmd_ping,
                "status": self._cmd_status,
                "set-goal": self._cmd_set_goal,
                "inject-fault": self._cmd_inject_fault,
                "force-boost": self._cmd_force_boost,
                "shutdown": self._cmd_shutdown,
            }[cmd]
            return protocol.ok_response(handler(request))
        except KeyError as exc:
            return protocol.error_response(f"missing key {exc}")
        except (protocol.ProtocolError, ValueError, TypeError) as exc:
            return protocol.error_response(str(exc))

    def _cmd_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"pong": True, "version": protocol.PROTOCOL_VERSION}

    def _cmd_status(self, request: dict[str, Any]) -> dict[str, Any]:
        sim = self.sim
        return {
            "sim_time_s": sim.engine.now,
            "events_executed": sim.engine.events_executed,
            "mode": "live" if sim.live else "replay",
            "accel": self.accel,
            "trace_name": sim.trace.name,
            "policy": sim.policy.name,
            "goal_s": sim.goal_s,
            "assignment": sim.policy.current_assignment(),
            "served": sim.latency.n,
            "failed": sim.failed_requests,
            "outstanding": sim.outstanding,
            "trace_remaining": sim.trace_remaining,
            "ingested": self.ingested,
            "drained": sim.drain_complete,
            "metrics": {
                "sim": sim.metrics.snapshot(),
                "policy": sim.policy.metrics.snapshot(),
            },
        }

    def _cmd_set_goal(self, request: dict[str, Any]) -> dict[str, Any]:
        if "goal_s" not in request:
            raise protocol.ProtocolError("set-goal needs a 'goal_s' (number or null)")
        goal = request["goal_s"]
        if goal is not None and not isinstance(goal, (int, float)):
            raise protocol.ProtocolError(f"goal_s must be a number or null, got {goal!r}")
        old = self.sim.goal_s
        new = float(goal) if goal is not None else None
        self.sim.set_goal(new)
        if self.sim.emit is not None:
            self.sim.emit(ServeGoalChanged(
                time=self.sim.engine.now, old_goal_s=old, new_goal_s=new,
            ))
        return {"old_goal_s": old, "goal_s": new}

    def _cmd_inject_fault(self, request: dict[str, Any]) -> dict[str, Any]:
        plan_data = request.get("plan")
        if not isinstance(plan_data, dict):
            raise protocol.ProtocolError("inject-fault needs a 'plan' object")
        plan = fault_plan_from_dict(plan_data)
        if plan.empty:
            raise protocol.ProtocolError("inject-fault plan injects nothing")
        if request.get("relative", True):
            plan = shift_fault_plan(plan, self.sim.engine.now)
        self.sim.inject_faults(plan)
        if self.sim.emit is not None:
            self.sim.emit(ServeFaultInjected(
                time=self.sim.engine.now,
                disk_failures=len(plan.disk_failures),
                transient_faults=len(plan.transient_faults),
                slow_disk_faults=len(plan.slow_disk_faults),
            ))
        return {
            "disk_failures": len(plan.disk_failures),
            "transient_faults": len(plan.transient_faults),
            "slow_disk_faults": len(plan.slow_disk_faults),
        }

    def _cmd_force_boost(self, request: dict[str, Any]) -> dict[str, Any]:
        entered = self.sim.policy.force_boost(self.sim.engine.now)
        if self.sim.emit is not None:
            self.sim.emit(ServeBoostForced(time=self.sim.engine.now, entered=entered))
        return {"entered": entered}

    def _cmd_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        self._shutdown = True
        return {"stopping": True}

    # -- live ingest ---------------------------------------------------------

    def _ingest_line(self, line: bytes) -> dict[str, Any]:
        try:
            data = protocol.decode_line(line)
            if not self.sim.live:
                raise protocol.ProtocolError("replay mode does not accept requests")
            kind_raw = data.get("kind", "read")
            if kind_raw in ("read", "r"):
                kind = IoKind.READ
            elif kind_raw in ("write", "w"):
                kind = IoKind.WRITE
            else:
                raise protocol.ProtocolError(f"bad kind {kind_raw!r} (read|write)")
            req_id = self.sim.inject_request(
                kind=kind,
                extent=int(data["extent"]),
                offset=int(data.get("offset", 0)),
                size=int(data.get("size", 4096)),
            )
        except KeyError as exc:
            self.ingest_errors += 1
            return protocol.error_response(f"missing key {exc}")
        except (protocol.ProtocolError, ValueError, TypeError) as exc:
            self.ingest_errors += 1
            return protocol.error_response(str(exc))
        except RuntimeError as exc:  # halted: shutdown already in progress
            self.ingest_errors += 1
            return protocol.error_response(str(exc))
        self.ingested += 1
        return protocol.ok_response({"req_id": req_id, "sim_time_s": self.sim.engine.now})

    # -- trace streaming -----------------------------------------------------

    def _stream_events(self) -> None:
        """Append newly emitted obs events to the JSONL writer.

        Called after every simulation slice, so at any instant the file
        on disk holds complete lines for everything already simulated —
        a crash loses at most the line being written.
        """
        if self._writer is None or self.sim.obs_log is None:
            return
        events = self.sim.obs_log.events
        while self._event_ptr < len(events):
            self._writer.write(events[self._event_ptr])
            self._event_ptr += 1


def run_replay_quiet(
    sim: ArraySimulation,
    control_path: str | Path,
    *,
    trace_out: str | Path | None = None,
) -> SimulationResult:
    """Convenience: deterministic replay to completion, no waiting.

    Used by tests and scripting: equivalent to ``repro serve --replay
    ... --accel 0 --exit-on-drain`` with no control clients connected.
    """
    daemon = ServeDaemon(
        sim,
        control_path,
        accel=0.0,
        trace_out=trace_out,
        exit_on_drain=True,
        install_signal_handlers=False,
    )
    return daemon.serve()
