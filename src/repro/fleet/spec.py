"""Fleet specifications: N arrays as one simulated system.

A :class:`FleetSpec` is to a fleet what
:class:`~repro.analysis.parallel.RunSpec` is to one array: a picklable,
content-hashable recipe. Every field reaches the cache key through the
same dataclass canonicalization the run cache uses
(:func:`repro.analysis.cache.content_key`), so logically-equal fleets
hash equally and any field change invalidates cached shards
(``tests/test_cache.py`` audits this field by field).

Per-array randomness is derived, never shared: the fleet ``seed`` spawns
one independent stream per array through
:class:`numpy.random.SeedSequence`, so array *i*'s layout shuffle (and,
in ``replicate`` partitioning, its workload draw) is a pure function of
``(seed, i)`` — independent of sibling arrays, process placement and
``jobs=``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.analysis.parallel import PolicySpec, RunSpec, TraceSpec
from repro.disks.array import ArrayConfig
from repro.fleet.faults import FleetFaultPlan
from repro.fleet.partition import PARTITIONERS, partition_trace

#: Partitioner names accepted by :attr:`FleetSpec.partitioner`.
PARTITIONER_NAMES: tuple[str, ...] = tuple(sorted(PARTITIONERS) + ["replicate"])


def spawn_seeds(seed: int, n: int) -> tuple[int, ...]:
    """``n`` independent per-array seeds derived from one fleet seed.

    Uses the SeedSequence spawn tree, the same mechanism the fault
    injector uses for per-disk streams: children are statistically
    independent and the derivation is a pure function of ``(seed, n)``,
    identical in every process.
    """
    if n < 1:
        raise ValueError(f"need at least one seed, got n={n!r}")
    children = np.random.SeedSequence(seed).spawn(n)
    return tuple(int(child.generate_state(1, dtype=np.uint64)[0]) for child in children)


@dataclass(eq=False)
class FleetSpec:
    """Everything a fleet-scale simulation needs, in picklable form.

    Attributes:
        num_arrays: fleet width (>= 1).
        trace: fleet-wide workload. For the splitting partitioners
            (``block``/``stripe``) it addresses the *global* extent
            space ``num_arrays * array.num_extents``; for ``replicate``
            it must be generator-based and addresses one array's space
            (each array regenerates it with a spawned seed).
        array: per-array template config. Each array gets a copy whose
            ``seed`` is replaced by its spawned per-array seed, so
            layout shuffles differ across the fleet.
        policy: power policy, shared recipe. Must be a *named* spec —
            an instance spec would share one stateful policy object
            across serial array runs while parallel workers each
            unpickle a private copy, which is exactly the
            serial-vs-parallel divergence the determinism guarantee
            forbids.
        partitioner: ``"block"`` (contiguous extent ranges),
            ``"stripe"`` (extents interleaved round-robin) or
            ``"replicate"`` (per-array regeneration with spawned
            seeds). See :mod:`repro.fleet.partition`.
        goal_s: per-array response-time goal.
        window_s: per-array time-series window; None disables.
        keep_latency_samples: retain per-request latencies per array.
        observe: collect structured events — fleet-scoped events on the
            :class:`~repro.fleet.executor.FleetResult` and per-array
            streams inside each shard result.
        faults: declarative fleet fault plan; None or an empty plan is
            byte-identical to a fault-free fleet.
        seed: fleet seed; spawns the per-array streams.
        engine: simulation core for every array shard (``"scalar"`` or
            ``"batch"``); results are byte-identical either way.
    """

    num_arrays: int
    trace: TraceSpec
    array: ArrayConfig
    policy: PolicySpec
    partitioner: str = "block"
    goal_s: float | None = None
    window_s: float | None = None
    keep_latency_samples: bool = True
    observe: bool = False
    faults: FleetFaultPlan | None = None
    seed: int = 0
    engine: str = "scalar"

    def __post_init__(self) -> None:
        from repro.analysis.parallel import ENGINE_NAMES

        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; known: {list(ENGINE_NAMES)}"
            )
        if self.num_arrays < 1:
            raise ValueError(f"num_arrays must be >= 1, got {self.num_arrays!r}")
        if self.partitioner not in PARTITIONER_NAMES:
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; "
                f"known: {list(PARTITIONER_NAMES)}"
            )
        if getattr(self.policy, "instance", None) is not None:
            raise ValueError(
                "FleetSpec requires a named PolicySpec: an instance spec "
                "would be shared across serial array runs but copied per "
                "parallel worker, breaking the jobs-invariance guarantee"
            )
        if self.partitioner == "replicate" and self.trace.generator is None:
            raise ValueError(
                "replicate partitioning needs a generator-based TraceSpec "
                "(each array regenerates the workload with its own seed)"
            )

    # -- expansion ----------------------------------------------------------

    def array_specs(self) -> list[RunSpec]:
        """One :class:`RunSpec` per array — the shardable expansion.

        A pure function of the spec: per-array seeds come from
        :func:`spawn_seeds`, workload shards from the partitioner and
        per-array fault plans from :meth:`FleetFaultPlan.expand`, so the
        expansion is identical in every process.
        """
        seeds = spawn_seeds(self.seed, self.num_arrays)
        if self.faults is not None:
            plans = self.faults.expand(self.num_arrays)
        else:
            plans = (None,) * self.num_arrays
        trace_specs = self._trace_shards(seeds)
        return [
            RunSpec(
                trace=trace_specs[i],
                array=dataclasses.replace(self.array, seed=seeds[i]),
                policy=self.policy,
                goal_s=self.goal_s,
                window_s=self.window_s,
                keep_latency_samples=self.keep_latency_samples,
                observe=self.observe,
                faults=plans[i],
                engine=self.engine,
            )
            for i in range(self.num_arrays)
        ]

    def _trace_shards(self, seeds: tuple[int, ...]) -> list[TraceSpec]:
        if self.partitioner == "replicate":
            return [
                TraceSpec.from_generator(
                    self.trace.generator,  # type: ignore[arg-type]
                    _reseeded(self.trace.config, seeds[i]),
                )
                for i in range(self.num_arrays)
            ]
        trace = self.trace.build()
        shards = partition_trace(
            trace, self.num_arrays, self.array.num_extents, self.partitioner
        )
        return [TraceSpec.from_trace(shard) for shard in shards]


def _reseeded(config: object, seed: int) -> object:
    """Copy of a generator config with its ``seed`` (and, when the
    config names its trace, ``name``) replaced per array."""
    fields = {f.name for f in dataclasses.fields(config)}  # type: ignore[arg-type]
    if "seed" not in fields:
        raise ValueError(
            f"{type(config).__name__} has no seed field; replicate "
            "partitioning cannot derive per-array workloads from it"
        )
    changes: dict[str, object] = {"seed": seed}
    return dataclasses.replace(config, **changes)  # type: ignore[arg-type]
