"""Fleet-level fault plans: correlated failures across arrays.

A :class:`FleetFaultPlan` is the fleet analogue of
:class:`~repro.faults.plan.FaultPlan`: declarative, frozen, picklable,
JSON-round-trippable. It composes three layers and *expands* to one
per-array plan per array (:meth:`FleetFaultPlan.expand`):

* ``common`` — a baseline plan every array gets (transient windows,
  slow disks, retry budget, rebuild knobs);
* ``array_plans`` — per-array overrides/additions keyed by array index;
* ``correlated_failures`` — batch events that kill the same disk slot
  across many arrays inside a window, the failure mode a single-array
  simulation cannot express (shared power/cooling/firmware domains —
  the PACEMAKER-scale question).

Expansion is a pure function of ``(plan, num_arrays)``. Per-array
transient-draw seeds are spawned from the plan's ``seed`` exactly the
way :class:`~repro.fleet.spec.FleetSpec` spawns array seeds, so array
*i*'s error draws are independent of its siblings and identical for any
``jobs=`` value. An empty plan expands to all-``None`` — byte-identical
to ``faults=None``, asserted by ``tests/test_fleet.py``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.atomicio import atomic_write
from repro.disks.scheduling import RetryPolicy
from repro.faults.plan import (
    DiskFailure,
    FaultPlan,
    fault_plan_from_dict,
    fault_plan_to_dict,
)


@dataclass(frozen=True)
class CorrelatedFailure:
    """One batch-failure event hitting several arrays in a window.

    Attributes:
        time_s: when the first targeted array's disk dies.
        disk: the disk index that dies in each targeted array (the
            shared-slot model: same chassis position, same firmware,
            same power feed).
        arrays: targeted array indices; None = every array in the fleet.
        stagger_s: spacing between consecutive targets — the *k*-th
            targeted array fails at ``time_s + k * stagger_s``. Zero
            means a simultaneous batch.
    """

    time_s: float
    disk: int
    arrays: tuple[int, ...] | None = None
    stagger_s: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"CorrelatedFailure.time_s must be >= 0, got {self.time_s}")
        if self.disk < 0:
            raise ValueError(f"CorrelatedFailure.disk must be >= 0, got {self.disk}")
        if self.stagger_s < 0:
            raise ValueError(
                f"CorrelatedFailure.stagger_s must be >= 0, got {self.stagger_s}"
            )
        if self.arrays is not None:
            if not self.arrays:
                raise ValueError("CorrelatedFailure.arrays must be non-empty or None")
            if len(set(self.arrays)) != len(self.arrays):
                raise ValueError(f"duplicate array indices in {self.arrays}")
            if any(a < 0 for a in self.arrays):
                raise ValueError(f"array indices must be >= 0, got {self.arrays}")

    def targets(self, num_arrays: int) -> tuple[int, ...]:
        """Targeted array indices, validated against the fleet width."""
        if self.arrays is None:
            return tuple(range(num_arrays))
        bad = sorted(a for a in self.arrays if a >= num_arrays)
        if bad:
            raise ValueError(
                f"correlated failure targets arrays {bad} but the fleet "
                f"has only {num_arrays}"
            )
        return self.arrays


@dataclass(frozen=True)
class FleetFaultPlan:
    """Every fault a fleet run injects, before per-array expansion.

    Attributes:
        common: baseline plan applied to every array (its ``seed`` is
            ignored — per-array seeds are spawned from this plan's).
        array_plans: ``(array_index, plan)`` pairs adding faults to
            specific arrays. At most one entry per array.
        correlated_failures: batch events expanded into per-array
            :class:`~repro.faults.plan.DiskFailure` entries.
        seed: base seed; per-array transient-draw seeds are spawned
            from it so sibling arrays never share an error stream.
    """

    common: FaultPlan | None = None
    array_plans: tuple[tuple[int, FaultPlan], ...] = ()
    correlated_failures: tuple[CorrelatedFailure, ...] = ()
    seed: int = 4321

    def __post_init__(self) -> None:
        indices = [index for index, _ in self.array_plans]
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate array indices in array_plans: {indices}")
        if any(index < 0 for index in indices):
            raise ValueError(f"array_plans indices must be >= 0, got {indices}")

    @property
    def empty(self) -> bool:
        """True when expansion injects nothing anywhere; an empty fleet
        plan is byte-identical to ``faults=None``."""
        if self.correlated_failures:
            return False
        if self.common is not None and not self.common.empty:
            return False
        return all(plan.empty for _, plan in self.array_plans)

    # -- expansion ----------------------------------------------------------

    def expand(self, num_arrays: int) -> tuple[FaultPlan | None, ...]:
        """Per-array plans, index-aligned; ``None`` where nothing fires.

        A pure function of ``(self, num_arrays)``: correlated events are
        staggered deterministically across their targets, per-array
        seeds are spawned from the plan seed, and retry/rebuild knobs
        come from the array's own plan when it has one, else from
        ``common``, else the defaults. A disk failed both by a
        correlated event and a per-array plan is a contradiction and
        raises (with the array index) rather than silently dropping one.
        """
        if num_arrays < 1:
            raise ValueError(f"num_arrays must be >= 1, got {num_arrays!r}")
        for index, _ in self.array_plans:
            if index >= num_arrays:
                raise ValueError(
                    f"array_plans entry for array {index} but the fleet "
                    f"has only {num_arrays}"
                )
        correlated: dict[int, list[DiskFailure]] = {}
        for event in self.correlated_failures:
            for k, array in enumerate(event.targets(num_arrays)):
                correlated.setdefault(array, []).append(
                    DiskFailure(time_s=event.time_s + k * event.stagger_s,
                                disk=event.disk)
                )
        overrides = dict(self.array_plans)
        seeds = _spawn_fault_seeds(self.seed, num_arrays)
        plans: list[FaultPlan | None] = []
        for i in range(num_arrays):
            merged = self._merge_one(
                overrides.get(i), correlated.get(i, []), seeds[i], i
            )
            plans.append(merged)
        return tuple(plans)

    def _merge_one(
        self,
        override: FaultPlan | None,
        batch_failures: list[DiskFailure],
        seed: int,
        index: int,
    ) -> FaultPlan | None:
        base = self.common
        failures = list(batch_failures)
        transients: list[Any] = []
        slows: list[Any] = []
        if base is not None:
            failures.extend(base.disk_failures)
            transients.extend(base.transient_faults)
            slows.extend(base.slow_disk_faults)
        if override is not None:
            failures.extend(override.disk_failures)
            transients.extend(override.transient_faults)
            slows.extend(override.slow_disk_faults)
        if not (failures or transients or slows):
            return None
        knobs = override if override is not None else base
        retry = knobs.retry if knobs is not None else RetryPolicy()
        rebuild = knobs.rebuild if knobs is not None else True
        inflight = knobs.rebuild_max_inflight if knobs is not None else 2
        try:
            return FaultPlan(
                disk_failures=tuple(sorted(failures, key=lambda f: (f.time_s, f.disk))),
                transient_faults=tuple(transients),
                slow_disk_faults=tuple(slows),
                retry=retry,
                rebuild=rebuild,
                rebuild_max_inflight=inflight,
                seed=seed,
            )
        except ValueError as exc:
            raise ValueError(f"array {index}: {exc}") from exc


def _spawn_fault_seeds(seed: int, n: int) -> tuple[int, ...]:
    children = np.random.SeedSequence(seed).spawn(n)
    return tuple(int(child.generate_state(1, dtype=np.uint64)[0]) for child in children)


# -- JSON mapping ------------------------------------------------------------


def fleet_fault_plan_to_dict(plan: FleetFaultPlan) -> dict[str, Any]:
    """Flatten a fleet plan into the JSON mapping ``--fleet-faults`` reads."""
    return {
        "common": fault_plan_to_dict(plan.common) if plan.common is not None else None,
        "array_plans": [
            {"array": index, "plan": fault_plan_to_dict(sub)}
            for index, sub in plan.array_plans
        ],
        "correlated_failures": [
            dataclasses.asdict(event) for event in plan.correlated_failures
        ],
        "seed": plan.seed,
    }


def fleet_fault_plan_from_dict(data: dict[str, Any]) -> FleetFaultPlan:
    """Build a fleet plan from its JSON mapping; unknown keys are
    rejected so a typo fails loudly instead of silently injecting
    nothing (same contract as :func:`repro.faults.plan.fault_plan_from_dict`)."""
    known = {f.name for f in dataclasses.fields(FleetFaultPlan)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown FleetFaultPlan keys {unknown}; known: {sorted(known)}")
    common_data = data.get("common")
    common = fault_plan_from_dict(common_data) if common_data is not None else None
    array_plans = tuple(
        (int(entry["array"]), fault_plan_from_dict(entry["plan"]))
        for entry in data.get("array_plans", ())
    )
    events = tuple(
        CorrelatedFailure(
            time_s=float(e["time_s"]),
            disk=int(e["disk"]),
            arrays=(tuple(int(a) for a in e["arrays"])
                    if e.get("arrays") is not None else None),
            stagger_s=float(e.get("stagger_s", 0.0)),
        )
        for e in data.get("correlated_failures", ())
    )
    return FleetFaultPlan(
        common=common,
        array_plans=array_plans,
        correlated_failures=events,
        seed=int(data.get("seed", 4321)),
    )


def load_fleet_fault_plan(path: str | Path) -> FleetFaultPlan:
    """Read a fleet plan from a JSON file (the ``--fleet-faults`` loader)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: fleet fault plan must be a JSON object")
    return fleet_fault_plan_from_dict(data)


def save_fleet_fault_plan(plan: FleetFaultPlan, path: str | Path) -> None:
    """Write a fleet plan as JSON (inverse of :func:`load_fleet_fault_plan`)."""
    with atomic_write(path) as fh:
        json.dump(fleet_fault_plan_to_dict(plan), fh, indent=2, sort_keys=True)
        fh.write("\n")
