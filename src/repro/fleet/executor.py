"""Sharded fleet execution: expand, fan out, merge.

:func:`run_fleet` is the fleet analogue of
:func:`~repro.analysis.parallel.run_spec`: expand the
:class:`~repro.fleet.spec.FleetSpec` into per-array
:class:`~repro.analysis.parallel.RunSpec` shards, fan them over
:func:`~repro.analysis.parallel.execute` (which already guarantees
``jobs=K`` byte-identical to serial and returns results in spec order),
then merge the shard results into one :class:`~repro.fleet.result.FleetResult`.

Fleet determinism therefore holds by construction: the expansion is a
pure function of the spec (per-array seeds spawned from the fleet seed,
partitioning a pure function of the trace, fault expansion a pure
function of the plan), and the merge is a pure fold over shard results
in array order. Observability follows the single-run contract — every
``emit`` is ``None``-guarded, so an unobserved fleet constructs no event
objects, and the fleet counters live on a
:class:`~repro.obs.metrics.MetricsRegistry` flattened into
``FleetResult.extras``. Wall-clock figures are deliberately *not* in the
extras: fleet digests pin behaviour, and callers who want throughput
(the perf harness, the CLI) time :func:`run_fleet` themselves.
"""

from __future__ import annotations

from repro.analysis.cache import ResultCache
from repro.analysis.parallel import execute
from repro.fleet.result import FleetResult
from repro.fleet.spec import FleetSpec
from repro.obs.events import FleetArrayDone, FleetRunEnd, FleetRunStart
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracelog import TraceLog


def trace_label(fleet: FleetSpec) -> str:
    """Human-readable name of the fleet's workload, without building it."""
    spec = fleet.trace
    if spec.trace is not None:
        return spec.trace.name
    if spec.path is not None:
        return spec.path
    name = getattr(spec.config, "name", None)
    return name if name else (spec.generator or "<empty>")


def run_fleet(
    fleet: FleetSpec,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> FleetResult:
    """Simulate every array of a fleet and merge the shard results.

    ``jobs`` fans the per-array simulations over worker processes;
    ``cache`` reuses per-shard results across fleet runs (each shard is
    cached under its own :class:`RunSpec` key, so two fleets sharing
    arrays share work). Both knobs are invisible in the result: any
    ``(jobs, cache)`` combination returns byte-identical
    :class:`FleetResult` contents for the same spec.
    """
    specs = fleet.array_specs()
    label = trace_label(fleet)
    log = TraceLog() if fleet.observe else None
    metrics = MetricsRegistry()
    if log is not None:
        log.emit(FleetRunStart(
            time=0.0,
            num_arrays=fleet.num_arrays,
            trace_name=label,
            policy_name=fleet.policy.name or "",
            partitioner=fleet.partitioner,
            goal_s=fleet.goal_s,
        ))

    results = execute(specs, jobs=jobs, cache=cache)

    arrays_done = metrics.counter("fleet_arrays_done")
    for i, result in enumerate(results):
        arrays_done.inc()
        if log is not None:
            log.emit(FleetArrayDone(
                time=result.sim_end,
                array=i,
                num_requests=result.num_requests,
                failed_requests=result.failed_requests,
                energy_joules=result.energy_joules,
                mean_response_s=result.mean_response_s,
            ))

    fleet_result = FleetResult(
        num_arrays=fleet.num_arrays,
        trace_name=label,
        policy_name=results[0].policy_name if results else "",
        partitioner=fleet.partitioner,
        goal_s=fleet.goal_s,
        results=results,
    )
    # Deterministic merged figures (the per-shard runtime_events gauge is
    # an event-loop count, not a wall-clock measurement).
    metrics.gauge("fleet_events_executed").set(
        sum(r.extras.get("runtime_events", 0.0) for r in results)
    )
    metrics.gauge("fleet_energy_joules").set(fleet_result.energy_joules)
    metrics.gauge("fleet_failed_requests").set(float(fleet_result.failed_requests))
    metrics.gauge("fleet_availability").set(fleet_result.availability)
    metrics.gauge("fleet_spinups").set(float(fleet_result.spinups))
    metrics.gauge("fleet_speed_changes").set(float(fleet_result.speed_changes))
    fleet_result.extras = metrics.as_dict()

    if log is not None:
        log.emit(FleetRunEnd(
            time=fleet_result.sim_end,
            num_arrays=fleet.num_arrays,
            num_requests=fleet_result.num_requests,
            failed_requests=fleet_result.failed_requests,
            energy_joules=fleet_result.energy_joules,
            spinups=fleet_result.spinups,
            speed_changes=fleet_result.speed_changes,
        ))
        fleet_result.events = list(log.events)
    return fleet_result
