"""Fleet-level merged reports.

A :class:`FleetResult` holds the per-array
:class:`~repro.sim.runner.SimulationResult` shards (index-aligned with
the fleet's arrays) plus the merged fleet view. The merge is exact where
exactness is possible and explicit where it is not:

* **energy / counts** — plain sums, exact;
* **mean response** — request-weighted merge of per-array means through
  :meth:`repro.sim.stats.OnlineStats.merge`, exact (the merged mean of
  per-array (n, mean) summaries equals the mean over all requests);
* **dispersion across arrays** — the same merge's variance: each array
  contributes its mean as a point mass, so the merged stdev measures
  *between-array* spread (tail arrays), not per-request spread;
* **percentiles** — a fleet cannot reconstruct exact per-request
  percentiles from shard summaries (samples never leave the worker), so
  :meth:`FleetResult.percentile_across_arrays` reports the distribution
  *across arrays* of a per-array metric (e.g. the p95 of per-array p95
  response times), which is the fleet operator's question anyway: how
  bad are my worst arrays?
* **availability** — served / offered foreground requests over the
  whole fleet, the metric correlated failures actually move.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.obs.events import TraceEvent
from repro.sim.runner import SimulationResult
from repro.sim.stats import OnlineStats


def merged_response_stats(results: "list[SimulationResult]") -> OnlineStats:
    """Request-weighted merge of per-array response summaries.

    Each array's (count, mean, max) is folded through
    :meth:`OnlineStats.merge`. The merged mean and max are exact; the
    merged variance is the between-array variance of means (per-request
    spread never leaves the shard). ``min`` is unavailable in a
    :class:`SimulationResult` and stays at ``inf`` — callers must not
    report it.
    """
    merged = OnlineStats()
    for result in results:
        if result.num_requests == 0:
            continue
        shard = OnlineStats()
        shard.n = result.num_requests
        shard.mean = result.mean_response_s
        shard.total = result.mean_response_s * result.num_requests
        shard.max = result.max_response_s
        merged.merge(shard)
    return merged


@dataclass
class FleetResult:
    """Everything one fleet run reports.

    ``results[i]`` is array *i*'s shard result. ``extras`` carries the
    merged fleet counters (all deterministic — wall-clock figures are
    deliberately excluded so fleet digests pin behaviour, not timing).
    ``events`` holds the *fleet-scoped* structured trace when the run
    was observed; per-array streams stay inside each shard result.
    """

    num_arrays: int
    trace_name: str
    policy_name: str
    partitioner: str
    goal_s: float | None
    results: list[SimulationResult]
    extras: dict[str, float] = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)

    # -- exact aggregates ----------------------------------------------------

    @property
    def energy_joules(self) -> float:
        return sum(r.energy_joules for r in self.results)

    @property
    def sim_end(self) -> float:
        return max((r.sim_end for r in self.results), default=0.0)

    @property
    def num_requests(self) -> int:
        return sum(r.num_requests for r in self.results)

    @property
    def failed_requests(self) -> int:
        return sum(r.failed_requests for r in self.results)

    @property
    def availability(self) -> float:
        """Served / offered foreground requests across the fleet (1.0
        when the fleet saw no load)."""
        offered = self.num_requests + self.failed_requests
        if offered == 0:
            return 1.0
        return self.num_requests / offered

    @property
    def mean_power_watts(self) -> float:
        """Sum of per-array mean powers — the fleet's concurrent draw."""
        return sum(r.mean_power_watts for r in self.results)

    @property
    def response(self) -> OnlineStats:
        """Request-weighted merged response summary (see module docs)."""
        return merged_response_stats(self.results)

    @property
    def mean_response_s(self) -> float:
        stats = self.response
        return stats.mean if stats.n else 0.0

    @property
    def max_response_s(self) -> float:
        stats = self.response
        return stats.max if stats.n else 0.0

    @property
    def spinups(self) -> int:
        return sum(r.spinups for r in self.results)

    @property
    def speed_changes(self) -> int:
        return sum(r.speed_changes for r in self.results)

    @property
    def migration_extents(self) -> int:
        return sum(r.migration_extents for r in self.results)

    @property
    def meets_goal(self) -> bool:
        if self.goal_s is None:
            return True
        return self.mean_response_s <= self.goal_s

    def arrays_meeting_goal(self) -> int:
        """How many individual arrays keep their own mean within goal."""
        return sum(1 for r in self.results if r.meets_goal)

    def energy_savings_vs(self, baseline: "FleetResult") -> float:
        """Fractional fleet energy savings relative to ``baseline``."""
        if baseline.energy_joules <= 0:
            return 0.0
        return 1.0 - self.energy_joules / baseline.energy_joules

    # -- across-array distributions ------------------------------------------

    def percentile_across_arrays(self, metric: str, q: float) -> float:
        """``q``-th percentile across arrays of a per-array result field.

        ``metric`` names a :class:`SimulationResult` attribute (e.g.
        ``"mean_response_s"``, ``"p95_response_s"``, ``"energy_joules"``).
        NaN entries (percentiles unavailable on a shard) are excluded;
        all-NaN yields NaN.
        """
        values = [float(getattr(r, metric)) for r in self.results]
        finite = [v for v in values if not math.isnan(v)]
        if not finite:
            return float("nan")
        return float(np.percentile(finite, q))

    # -- reporting -----------------------------------------------------------

    HEADERS = (
        "array", "requests", "failed", "energy kJ", "mean W",
        "mean ms", "p95 ms", "avail %",
    )

    def rows(self) -> list[tuple[str, ...]]:
        """Per-array table rows (parallel to :data:`HEADERS`)."""
        rows: list[tuple[str, ...]] = []
        for i, r in enumerate(self.results):
            offered = r.num_requests + r.failed_requests
            avail = 100.0 * (r.num_requests / offered) if offered else 100.0
            p95 = r.p95_response_s
            rows.append((
                str(i),
                str(r.num_requests),
                str(r.failed_requests),
                f"{r.energy_joules / 1e3:.1f}",
                f"{r.mean_power_watts:.1f}",
                f"{r.mean_response_s * 1e3:.2f}",
                "n/a" if math.isnan(p95) else f"{p95 * 1e3:.2f}",
                f"{avail:.2f}",
            ))
        return rows

    def summary_pairs(self) -> list[tuple[str, str]]:
        """Key/value lines for the merged fleet block."""
        stats = self.response
        pairs = [
            ("arrays", str(self.num_arrays)),
            ("partitioner", self.partitioner),
            ("requests", str(self.num_requests)),
            ("failed", str(self.failed_requests)),
            ("availability", f"{100.0 * self.availability:.3f} %"),
            ("energy", f"{self.energy_joules / 1e3:.1f} kJ"),
            ("fleet power", f"{self.mean_power_watts:.1f} W"),
            ("mean response", f"{self.mean_response_s * 1e3:.2f} ms"),
            ("max response", f"{self.max_response_s * 1e3:.1f} ms"),
            ("stdev across arrays", f"{stats.stdev * 1e3:.2f} ms"),
            ("p95 of array means",
             f"{self.percentile_across_arrays('mean_response_s', 95) * 1e3:.2f} ms"),
        ]
        if self.goal_s is not None:
            pairs.append(("goal", f"{self.goal_s * 1e3:.2f} ms "
                                  f"({'met' if self.meets_goal else 'VIOLATED'}; "
                                  f"{self.arrays_meeting_goal()}/{self.num_arrays} "
                                  "arrays within goal)"))
        return pairs


def fleet_to_dict(fleet_result: FleetResult) -> dict[str, object]:
    """JSON-safe dict of the merged view plus per-array summaries.

    Per-array entries reuse the single-run exporter so downstream
    consumers see the exact shape ``repro run --json`` emits.
    """
    from repro.analysis.export import result_to_dict

    stats = fleet_result.response
    return {
        "num_arrays": fleet_result.num_arrays,
        "trace_name": fleet_result.trace_name,
        "policy_name": fleet_result.policy_name,
        "partitioner": fleet_result.partitioner,
        "goal_s": fleet_result.goal_s,
        "num_requests": fleet_result.num_requests,
        "failed_requests": fleet_result.failed_requests,
        "availability": fleet_result.availability,
        "energy_joules": fleet_result.energy_joules,
        "mean_power_watts": fleet_result.mean_power_watts,
        "mean_response_s": fleet_result.mean_response_s,
        "max_response_s": fleet_result.max_response_s,
        "response_stdev_across_arrays_s": stats.stdev if stats.n else 0.0,
        "extras": dict(fleet_result.extras),
        "arrays": [result_to_dict(r) for r in fleet_result.results],
    }
