"""Workload partitioning: one fleet trace -> per-array shards.

The splitting partitioners route every request of a *global* trace
(extent space ``num_arrays * per_array_extents``) to exactly one array
and remap its extent into that array's local space. Both are pure
functions of the trace, so two expansions of the same fleet spec route
identically:

* ``block`` — array *i* owns the contiguous range
  ``[i * per_array_extents, (i + 1) * per_array_extents)``. Zipf-hot
  extents scattered across the global space land on many arrays, but a
  tenant occupying one contiguous range lands on one array — the
  multi-tenant layout.
* ``stripe`` — extent ``g`` goes to array ``g % num_arrays`` at local
  address ``g // num_arrays``. Round-robin interleaving spreads any
  workload (hot or cold, contiguous or scattered) evenly — the
  load-balanced layout.

Request ordering inside each shard preserves the global time order
(numpy boolean masking is stable), and arrival *times* are untouched:
shards replay the same wall of offered load the fleet saw, each array
serving its slice.

The third mode, ``replicate``, is not a split at all — each array
regenerates the trace recipe with its own spawned seed — and therefore
lives in :meth:`repro.fleet.spec.FleetSpec._trace_shards`, where the
per-array seeds are available.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.traces.model import Trace


def _split(
    trace: Trace,
    num_arrays: int,
    per_array_extents: int,
    owner: np.ndarray,
    local: np.ndarray,
) -> list[Trace]:
    shards: list[Trace] = []
    for i in range(num_arrays):
        mask = owner == i
        shards.append(Trace(
            name=f"{trace.name}/a{i}",
            num_extents=per_array_extents,
            times=trace.times[mask].copy(),
            kinds=trace.kinds[mask].copy(),
            extents=local[mask].copy(),
            offsets=trace.offsets[mask].copy(),
            sizes=trace.sizes[mask].copy(),
        ))
    return shards


def split_block(trace: Trace, num_arrays: int, per_array_extents: int) -> list[Trace]:
    """Contiguous extent ranges: array ``i`` owns ``[i*per, (i+1)*per)``."""
    owner = trace.extents // per_array_extents
    local = trace.extents - owner * per_array_extents
    return _split(trace, num_arrays, per_array_extents, owner, local)


def split_stripe(trace: Trace, num_arrays: int, per_array_extents: int) -> list[Trace]:
    """Round-robin interleave: extent ``g`` -> array ``g % num_arrays``."""
    owner = trace.extents % num_arrays
    local = trace.extents // num_arrays
    return _split(trace, num_arrays, per_array_extents, owner, local)


#: Splitting partitioners by name (``replicate`` is handled at the spec
#: level because it needs the per-array seeds, not the trace).
PARTITIONERS: dict[str, Callable[[Trace, int, int], list[Trace]]] = {
    "block": split_block,
    "stripe": split_stripe,
}


def partition_trace(
    trace: Trace, num_arrays: int, per_array_extents: int, mode: str
) -> list[Trace]:
    """Split a global trace into ``num_arrays`` per-array shards.

    Every request lands in exactly one shard (counts are conserved) and
    the global extent space must match ``num_arrays * per_array_extents``
    exactly — a mismatch means the fleet spec and the trace disagree
    about the address space, which would silently misroute load.
    """
    if mode not in PARTITIONERS:
        raise ValueError(f"unknown partitioner {mode!r}; known: {sorted(PARTITIONERS)}")
    expected = num_arrays * per_array_extents
    if trace.num_extents != expected:
        raise ValueError(
            f"trace addresses {trace.num_extents} extents but the fleet's "
            f"global space is {num_arrays} arrays x {per_array_extents} = "
            f"{expected}"
        )
    return PARTITIONERS[mode](trace, num_arrays, per_array_extents)
