"""Fleet-scale simulation: N arrays as one system.

The package turns the single-array simulator into a fleet simulator by
composition, not duplication:

* :mod:`repro.fleet.spec` — :class:`FleetSpec`, the picklable,
  content-hashable fleet recipe, and its expansion into per-array
  :class:`~repro.analysis.parallel.RunSpec` shards;
* :mod:`repro.fleet.partition` — workload partitioners splitting one
  global trace into per-array shards (``block``/``stripe``) or
  replicating a generator recipe with spawned seeds (``replicate``);
* :mod:`repro.fleet.faults` — :class:`FleetFaultPlan`, including
  correlated batch failures hitting many arrays in a window;
* :mod:`repro.fleet.executor` — :func:`run_fleet`, fanning shards over
  the deterministic parallel executor and merging the results;
* :mod:`repro.fleet.result` — :class:`FleetResult`, the merged
  energy/response/availability report plus per-array tables.

Determinism contract (see ``docs/fleet.md``): for a given
:class:`FleetSpec`, :func:`run_fleet` returns byte-identical contents
for every ``jobs=`` value, with or without a result cache.
"""

from repro.fleet.executor import run_fleet, trace_label
from repro.fleet.faults import (
    CorrelatedFailure,
    FleetFaultPlan,
    fleet_fault_plan_from_dict,
    fleet_fault_plan_to_dict,
    load_fleet_fault_plan,
    save_fleet_fault_plan,
)
from repro.fleet.partition import PARTITIONERS, partition_trace, split_block, split_stripe
from repro.fleet.result import FleetResult, fleet_to_dict, merged_response_stats
from repro.fleet.spec import PARTITIONER_NAMES, FleetSpec, spawn_seeds

__all__ = [
    "CorrelatedFailure",
    "FleetFaultPlan",
    "FleetResult",
    "FleetSpec",
    "PARTITIONERS",
    "PARTITIONER_NAMES",
    "fleet_fault_plan_from_dict",
    "fleet_fault_plan_to_dict",
    "fleet_to_dict",
    "load_fleet_fault_plan",
    "merged_response_stats",
    "partition_trace",
    "run_fleet",
    "save_fleet_fault_plan",
    "spawn_seeds",
    "split_block",
    "split_stripe",
    "trace_label",
]
