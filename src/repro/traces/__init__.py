"""Workload substrate: trace containers, file I/O and generators.

The paper drove its simulator with two data-center traces — an OLTP
trace (TPC-C against a commercial DBMS) and the HP Labs Cello99 file
server trace. Neither is redistributable, so this package provides
generators calibrated to their published first-order characteristics
(see DESIGN.md, "Substitutions"):

* :mod:`repro.traces.oltp` -- steady high-rate, small random I/O,
  Zipf-skewed popularity, read-mostly.
* :mod:`repro.traces.cello` -- diurnal file-server load with deep
  night-time valleys, bursts and a drifting working set.
* :mod:`repro.traces.synthetic` -- the parameterized toolkit both are
  built from (arrival processes, popularity models, size mixes).
"""

from repro.traces.cello import CelloConfig, generate_cello
from repro.traces.model import Trace, TraceBuilder, TraceRequest
from repro.traces.oltp import OltpConfig, generate_oltp
from repro.traces.synthetic import (
    SyntheticConfig,
    ZipfPopularity,
    generate_synthetic,
    modulated_poisson_arrivals,
    poisson_arrivals,
)
from repro.traces.tracestats import TraceStats, compute_trace_stats

__all__ = [
    "Trace",
    "TraceBuilder",
    "TraceRequest",
    "OltpConfig",
    "generate_oltp",
    "CelloConfig",
    "generate_cello",
    "SyntheticConfig",
    "ZipfPopularity",
    "generate_synthetic",
    "poisson_arrivals",
    "modulated_poisson_arrivals",
    "TraceStats",
    "compute_trace_stats",
]
