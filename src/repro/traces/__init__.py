"""Workload substrate: trace containers, file I/O, generators, ingest.

The paper drove its simulator with two data-center traces — an OLTP
trace (TPC-C against a commercial DBMS) and the HP Labs Cello99 file
server trace. Neither is redistributable, so this package provides
generators calibrated to their published first-order characteristics
(see DESIGN.md, "Substitutions"):

* :mod:`repro.traces.oltp` -- steady high-rate, small random I/O,
  Zipf-skewed popularity, read-mostly.
* :mod:`repro.traces.cello` -- diurnal file-server load with deep
  night-time valleys, bursts and a drifting working set.
* :mod:`repro.traces.synthetic` -- the parameterized toolkit both are
  built from (arrival processes, popularity models, size mixes), plus
  scenario generators (flash-crowd spike, multi-tenant interference,
  checkpoint write bursts).
* :mod:`repro.traces.ingest` -- loaders for public block-trace formats
  (MSR-Cambridge CSV, blkparse, generic columnar CSV) with provenance
  records and TraceTracker-style modernization transforms, for driving
  the simulator with *real* traces (see docs/traces.md).
"""

from repro.traces.cello import CelloConfig, generate_cello
from repro.traces.ingest import (
    FieldMap,
    IngestOptions,
    IngestResult,
    TraceProvenance,
    import_trace,
    rescale_extents,
    rescale_time,
    scale_intensity,
)
from repro.traces.model import Trace, TraceBuilder, TraceRequest
from repro.traces.oltp import OltpConfig, generate_oltp
from repro.traces.synthetic import (
    FlashCrowdConfig,
    MultiTenantConfig,
    SyntheticConfig,
    WriteBurstConfig,
    ZipfPopularity,
    generate_flash_crowd,
    generate_multi_tenant,
    generate_synthetic,
    generate_write_burst,
    modulated_poisson_arrivals,
    poisson_arrivals,
)
from repro.traces.tracestats import TraceStats, compute_trace_stats

__all__ = [
    "Trace",
    "TraceBuilder",
    "TraceRequest",
    "OltpConfig",
    "generate_oltp",
    "CelloConfig",
    "generate_cello",
    "SyntheticConfig",
    "ZipfPopularity",
    "generate_synthetic",
    "FlashCrowdConfig",
    "generate_flash_crowd",
    "MultiTenantConfig",
    "generate_multi_tenant",
    "WriteBurstConfig",
    "generate_write_burst",
    "poisson_arrivals",
    "modulated_poisson_arrivals",
    "TraceStats",
    "compute_trace_stats",
    "FieldMap",
    "IngestOptions",
    "IngestResult",
    "TraceProvenance",
    "import_trace",
    "rescale_extents",
    "rescale_time",
    "scale_intensity",
]
