"""Trace transformations.

Utilities for composing experiment workloads out of existing traces:
concatenate phases, shift or scale time, thin to a sampled fraction,
remap or restrict the address space. All transforms are pure — they
return new :class:`Trace` objects and never mutate their inputs.
"""

from __future__ import annotations

import numpy as np

from repro.traces.model import Trace


def shift_time(trace: Trace, offset: float, name: str | None = None) -> Trace:
    """Shift every request by ``offset`` seconds (must stay >= 0)."""
    if len(trace) and trace.times[0] + offset < 0:
        raise ValueError(f"offset {offset} would move requests before t=0")
    return Trace(
        name=name or f"{trace.name}+{offset:g}s",
        num_extents=trace.num_extents,
        times=trace.times + offset,
        kinds=trace.kinds.copy(),
        extents=trace.extents.copy(),
        offsets=trace.offsets.copy(),
        sizes=trace.sizes.copy(),
    )


def concat(traces: list[Trace], gap_s: float = 0.0, name: str = "concat") -> Trace:
    """Play traces back to back (each shifted after the previous one).

    Cursor semantics (span-based advance): each non-empty component
    occupies the span ``[cursor, cursor + t.duration]`` on the combined
    timeline, where ``t.duration`` is the component's last request time
    measured from *its own* t=0 origin — a component with leading idle
    keeps that idle inside its span, so the silence before its first
    request is ``gap_s`` plus the component's own lead-in. The cursor
    then advances past the span plus ``gap_s``. Empty components
    contribute no requests, no span, and no gap — concatenating with an
    empty trace is an identity on the timeline.

    Args:
        gap_s: idle time inserted after each non-empty component's span
            (may be negative to overlap phases, as long as the combined
            times stay non-decreasing).
    """
    if not traces:
        raise ValueError("need at least one trace")
    num_extents = max(t.num_extents for t in traces)
    columns = {"times": [], "kinds": [], "extents": [], "offsets": [], "sizes": []}
    cursor = 0.0
    for t in traces:
        if len(t) == 0:
            continue
        columns["times"].append(t.times + cursor)
        columns["kinds"].append(t.kinds)
        columns["extents"].append(t.extents)
        columns["offsets"].append(t.offsets)
        columns["sizes"].append(t.sizes)
        cursor += t.duration + gap_s
    if not columns["times"]:
        return Trace(
            name=name,
            num_extents=num_extents,
            times=np.empty(0, dtype=np.float64),
            kinds=np.empty(0, dtype=np.int8),
            extents=np.empty(0, dtype=np.int64),
            offsets=np.empty(0, dtype=np.int64),
            sizes=np.empty(0, dtype=np.int64),
        )
    return Trace(
        name=name,
        num_extents=num_extents,
        times=np.concatenate(columns["times"]),
        kinds=np.concatenate(columns["kinds"]),
        extents=np.concatenate(columns["extents"]),
        offsets=np.concatenate(columns["offsets"]),
        sizes=np.concatenate(columns["sizes"]),
    )


def sample_fraction(trace: Trace, fraction: float, seed: int = 0) -> Trace:
    """Keep a uniformly random ``fraction`` of requests (thinning).

    Thinning a Poisson-ish arrival process by p yields the same process
    at p times the rate, so this is the standard way to de-intensify a
    trace without changing its structure.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
    rng = np.random.default_rng(seed)
    keep = rng.random(len(trace)) < fraction
    return Trace(
        name=f"{trace.name}~{fraction:g}",
        num_extents=trace.num_extents,
        times=trace.times[keep],
        kinds=trace.kinds[keep],
        extents=trace.extents[keep],
        offsets=trace.offsets[keep],
        sizes=trace.sizes[keep],
    )


def remap_extents(
    trace: Trace,
    mapping: np.ndarray,
    num_extents: int,
    name: str | None = None,
) -> Trace:
    """Rewrite extent ids through ``mapping`` (old id -> new id).

    Used to retarget a trace at a different volume layout or to fold a
    large address space onto a smaller array.
    """
    mapping = np.asarray(mapping, dtype=np.int64)
    if len(mapping) < trace.num_extents:
        raise ValueError(
            f"mapping covers {len(mapping)} extents, trace uses {trace.num_extents}"
        )
    new_extents = mapping[trace.extents]
    if len(new_extents) and (new_extents.min() < 0 or new_extents.max() >= num_extents):
        raise ValueError("mapping produced extents outside the target volume")
    return Trace(
        name=name or f"{trace.name}:remap",
        num_extents=num_extents,
        times=trace.times.copy(),
        kinds=trace.kinds.copy(),
        extents=new_extents,
        offsets=trace.offsets.copy(),
        sizes=trace.sizes.copy(),
    )


def filter_extents(trace: Trace, keep: np.ndarray, name: str | None = None) -> Trace:
    """Keep only requests whose extent is flagged in the boolean ``keep``
    mask (indexed by extent id)."""
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != (trace.num_extents,):
        raise ValueError(f"mask shape {keep.shape} != ({trace.num_extents},)")
    selected = keep[trace.extents]
    return Trace(
        name=name or f"{trace.name}:filtered",
        num_extents=trace.num_extents,
        times=trace.times[selected],
        kinds=trace.kinds[selected],
        extents=trace.extents[selected],
        offsets=trace.offsets[selected],
        sizes=trace.sizes[selected],
    )
