"""Trace file I/O.

Traces are exchanged as CSV (optionally gzip-compressed when the path
ends in ``.gz``) with a one-line header::

    # repro-trace v1 name=<name> num_extents=<n>
    time,kind,extent,offset,size

This keeps traces inspectable with standard tools while staying fast
enough for the trace sizes the experiments use.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import IO

import numpy as np

from repro.traces.model import Trace

_MAGIC = "# repro-trace v1"


class TraceFormatError(ValueError):
    """Raised when a trace file does not match the expected format."""


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` (gzip when the name ends in .gz)."""
    path = Path(path)
    with _open_text(path, "w") as fh:
        fh.write(f"{_MAGIC} name={trace.name} num_extents={trace.num_extents}\n")
        writer = csv.writer(fh)
        writer.writerow(["time", "kind", "extent", "offset", "size"])
        for times, kinds, extents, offsets, sizes in zip(
            trace.times, trace.kinds, trace.extents, trace.offsets, trace.sizes
        ):
            writer.writerow(
                [
                    f"{times:.9f}",
                    "R" if kinds == 0 else "W",
                    int(extents),
                    int(offsets),
                    int(sizes),
                ]
            )


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with _open_text(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if not header.startswith(_MAGIC):
            raise TraceFormatError(f"{path}: missing '{_MAGIC}' header")
        meta: dict[str, str] = {}
        for token in header[len(_MAGIC):].split():
            if "=" not in token:
                raise TraceFormatError(f"{path}: bad header token {token!r}")
            key, value = token.split("=", 1)
            meta[key] = value
        if "num_extents" not in meta:
            raise TraceFormatError(f"{path}: header lacks num_extents")
        reader = csv.reader(fh)
        columns = next(reader, None)
        if columns != ["time", "kind", "extent", "offset", "size"]:
            raise TraceFormatError(f"{path}: unexpected column header {columns!r}")
        times: list[float] = []
        kinds: list[int] = []
        extents: list[int] = []
        offsets: list[int] = []
        sizes: list[int] = []
        for lineno, row in enumerate(reader, start=3):
            if not row:
                continue
            if len(row) != 5:
                raise TraceFormatError(f"{path}:{lineno}: expected 5 fields, got {len(row)}")
            time_s, kind, extent, offset, size = row
            if kind not in ("R", "W"):
                raise TraceFormatError(f"{path}:{lineno}: kind must be R or W, got {kind!r}")
            times.append(float(time_s))
            kinds.append(0 if kind == "R" else 1)
            extents.append(int(extent))
            offsets.append(int(offset))
            sizes.append(int(size))
    return Trace(
        name=meta.get("name", path.stem),
        num_extents=int(meta["num_extents"]),
        times=np.asarray(times, dtype=np.float64),
        kinds=np.asarray(kinds, dtype=np.int8),
        extents=np.asarray(extents, dtype=np.int64),
        offsets=np.asarray(offsets, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
    )
