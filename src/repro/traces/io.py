"""Trace file I/O.

Traces are exchanged as CSV (optionally gzip-compressed when the path
ends in ``.gz``) with a one-line header::

    # repro-trace v1 name=<name> num_extents=<n>
    time,kind,extent,offset,size

Header values are percent-encoded (RFC 3986 style, no safe characters)
on write and decoded on read, because header tokens are split on
whitespace and ``=``: transform-produced names like ``"a b"`` (from
``concat(name="a b")``) or ``"oltp+5s"`` would otherwise be truncated
or corrupted on the way back in. Plain names (letters, digits, ``-``,
``_``, ``.``) are written verbatim, so files produced by older writers
load unchanged.

This keeps traces inspectable with standard tools while staying fast
enough for the trace sizes the experiments use.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import IO
from urllib.parse import quote, unquote

import numpy as np

from repro.traces.model import Trace

_MAGIC = "# repro-trace v1"


class TraceFormatError(ValueError):
    """Raised when a trace file does not match the expected format."""


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


def _encode_header_value(value: str) -> str:
    """Percent-encode a header value so it survives whitespace/``=``
    token splitting (``safe=""`` also encodes ``/`` and ``%``)."""
    return quote(value, safe="")


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` (gzip when the name ends in .gz)."""
    path = Path(path)
    name = _encode_header_value(trace.name)
    with _open_text(path, "w") as fh:
        fh.write(f"{_MAGIC} name={name} num_extents={trace.num_extents}\n")
        writer = csv.writer(fh)
        writer.writerow(["time", "kind", "extent", "offset", "size"])
        for times, kinds, extents, offsets, sizes in zip(
            trace.times, trace.kinds, trace.extents, trace.offsets, trace.sizes
        ):
            writer.writerow(
                [
                    f"{times:.9f}",
                    "R" if kinds == 0 else "W",
                    int(extents),
                    int(offsets),
                    int(sizes),
                ]
            )


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with _open_text(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if not header.startswith(_MAGIC):
            raise TraceFormatError(f"{path}: missing '{_MAGIC}' header")
        meta: dict[str, str] = {}
        for token in header[len(_MAGIC):].split():
            if "=" not in token:
                raise TraceFormatError(f"{path}: bad header token {token!r}")
            key, value = token.split("=", 1)
            meta[key] = unquote(value)
        if "num_extents" not in meta:
            raise TraceFormatError(f"{path}: header lacks num_extents")
        try:
            num_extents = int(meta["num_extents"])
        except ValueError:
            raise TraceFormatError(
                f"{path}:1: num_extents is not an integer: {meta['num_extents']!r}"
            ) from None
        reader = csv.reader(fh)
        columns = next(reader, None)
        if columns != ["time", "kind", "extent", "offset", "size"]:
            raise TraceFormatError(f"{path}: unexpected column header {columns!r}")
        times: list[float] = []
        kinds: list[int] = []
        extents: list[int] = []
        offsets: list[int] = []
        sizes: list[int] = []
        for lineno, row in enumerate(reader, start=3):
            if not row:
                continue
            if len(row) != 5:
                raise TraceFormatError(f"{path}:{lineno}: expected 5 fields, got {len(row)}")
            time_s, kind, extent, offset, size = row
            if kind not in ("R", "W"):
                raise TraceFormatError(f"{path}:{lineno}: kind must be R or W, got {kind!r}")
            try:
                times.append(float(time_s))
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{lineno}: time is not a number: {time_s!r}"
                ) from None
            kinds.append(0 if kind == "R" else 1)
            for label, value, column in (
                ("extent", extent, extents),
                ("offset", offset, offsets),
                ("size", size, sizes),
            ):
                try:
                    column.append(int(value))
                except ValueError:
                    raise TraceFormatError(
                        f"{path}:{lineno}: {label} is not an integer: {value!r}"
                    ) from None
    return Trace(
        name=meta.get("name", path.stem),
        num_extents=num_extents,
        times=np.asarray(times, dtype=np.float64),
        kinds=np.asarray(kinds, dtype=np.int8),
        extents=np.asarray(extents, dtype=np.int64),
        offsets=np.asarray(offsets, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
    )
