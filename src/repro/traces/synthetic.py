"""Parameterized synthetic workload toolkit.

The OLTP and Cello generators are thin configurations of the pieces
here: arrival processes (homogeneous and modulated Poisson), a Zipf
popularity model with address-space scattering, and request-size mixes.
Everything takes an explicit :class:`numpy.random.Generator` so runs are
reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.traces.model import Trace, trace_from_columns


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

def poisson_arrivals(rate: float, duration: float, rng: np.random.Generator) -> np.ndarray:
    """Homogeneous Poisson arrival times on [0, duration)."""
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate!r}")
    if duration < 0:
        raise ValueError(f"duration must be non-negative, got {duration!r}")
    if rate == 0.0 or duration == 0.0:
        return np.empty(0, dtype=np.float64)
    # Draw in chunks: expected count + slack, extend if unlucky.
    times: list[np.ndarray] = []
    t = 0.0
    expected = rate * duration
    chunk = max(int(expected * 1.2) + 16, 64)
    while t < duration:
        gaps = rng.exponential(1.0 / rate, size=chunk)
        arrivals = t + np.cumsum(gaps)
        times.append(arrivals)
        t = float(arrivals[-1])
    all_times = np.concatenate(times)
    return all_times[all_times < duration]


def modulated_poisson_arrivals(
    rate_fn: Callable[[np.ndarray], np.ndarray],
    peak_rate: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Nonhomogeneous Poisson arrivals by thinning.

    Args:
        rate_fn: vectorized instantaneous rate, must satisfy
            ``0 <= rate_fn(t) <= peak_rate`` on [0, duration).
        peak_rate: majorizing constant rate used for the candidate
            process.
    """
    if peak_rate <= 0:
        raise ValueError(f"peak_rate must be positive, got {peak_rate!r}")
    candidates = poisson_arrivals(peak_rate, duration, rng)
    if len(candidates) == 0:
        return candidates
    rates = np.asarray(rate_fn(candidates), dtype=np.float64)
    if np.any(rates < -1e-12) or np.any(rates > peak_rate * (1 + 1e-9)):
        raise ValueError("rate_fn escaped [0, peak_rate]")
    keep = rng.random(len(candidates)) < rates / peak_rate
    return candidates[keep]


# ---------------------------------------------------------------------------
# Popularity
# ---------------------------------------------------------------------------

class ZipfPopularity:
    """Zipf-skewed extent popularity with scattered placement.

    Rank ``r`` (1-based) has probability proportional to ``1 / r**theta``.
    Ranks are mapped to extent ids through a random permutation so that
    hot extents are spread across the address space (as in real volumes),
    which is exactly the situation Hibernator's migration must fix.

    ``theta = 0`` degenerates to uniform popularity.
    """

    def __init__(
        self,
        num_extents: int,
        theta: float,
        rng: np.random.Generator,
        scatter: bool = True,
    ) -> None:
        if num_extents <= 0:
            raise ValueError(f"num_extents must be positive, got {num_extents!r}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta!r}")
        self.num_extents = num_extents
        self.theta = theta
        ranks = np.arange(1, num_extents + 1, dtype=np.float64)
        weights = ranks**-theta
        self.probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self.probabilities)
        self._cdf[-1] = 1.0
        if scatter:
            self.rank_to_extent = rng.permutation(num_extents)
        else:
            self.rank_to_extent = np.arange(num_extents)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` extent ids."""
        u = rng.random(n)
        ranks = np.searchsorted(self._cdf, u, side="right")
        return self.rank_to_extent[ranks]

    def extent_probability(self) -> np.ndarray:
        """Per-extent access probability (indexed by extent id)."""
        probs = np.empty(self.num_extents, dtype=np.float64)
        probs[self.rank_to_extent] = self.probabilities
        return probs

    def rotate(self, shift: int) -> None:
        """Shift the rank->extent mapping, modelling working-set drift:
        after ``rotate(k)`` the extent that held rank ``r`` now holds
        rank ``r + k`` (hot data cools, lukewarm data heats up)."""
        self.rank_to_extent = np.roll(self.rank_to_extent, shift)


# ---------------------------------------------------------------------------
# Size mixes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SizeMix:
    """Discrete request-size distribution."""

    sizes: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ValueError("sizes and weights must be non-empty and parallel")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("sizes must be positive")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        probs = np.asarray(self.weights, dtype=np.float64)
        probs = probs / probs.sum()
        return rng.choice(np.asarray(self.sizes, dtype=np.int64), size=n, p=probs)

    @property
    def mean(self) -> float:
        probs = np.asarray(self.weights, dtype=np.float64)
        probs = probs / probs.sum()
        return float(np.dot(np.asarray(self.sizes, dtype=np.float64), probs))


# ---------------------------------------------------------------------------
# Generic generator
# ---------------------------------------------------------------------------

@dataclass
class SyntheticConfig:
    """Fully generic single-phase workload.

    Attributes:
        name: trace label.
        duration: seconds of workload.
        rate: mean arrival rate (requests/second).
        num_extents: logical address space.
        zipf_theta: popularity skew (0 = uniform).
        read_fraction: probability a request is a read.
        size_mix: request-size distribution.
        seed: RNG seed.
        rate_fn: optional vectorized modulation; when given, ``rate`` is
            interpreted as the *peak* rate and ``rate_fn`` must stay
            within [0, rate].
    """

    name: str = "synthetic"
    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    duration: float = 3600.0
    rate: float = 100.0
    num_extents: int = 2400
    zipf_theta: float = 0.9
    read_fraction: float = 0.6
    size_mix: SizeMix = field(default_factory=lambda: SizeMix(sizes=(4096,), weights=(1.0,)))
    seed: int = 1
    rate_fn: Callable[[np.ndarray], np.ndarray] | None = None


def generate_synthetic(config: SyntheticConfig) -> Trace:
    """Generate a trace from a :class:`SyntheticConfig`."""
    rng = np.random.default_rng(config.seed)
    if config.rate_fn is None:
        times = poisson_arrivals(config.rate, config.duration, rng)
    else:
        times = modulated_poisson_arrivals(config.rate_fn, config.rate, config.duration, rng)
    n = len(times)
    popularity = ZipfPopularity(config.num_extents, config.zipf_theta, rng)
    extents = popularity.sample(n, rng)
    read_mask = rng.random(n) < config.read_fraction
    sizes = config.size_mix.sample(n, rng)
    return trace_from_columns(
        name=config.name,
        num_extents=config.num_extents,
        times=times,
        read_mask=read_mask,
        extents=extents,
        sizes=sizes,
    )


def interleave_traces(name: str, traces: Sequence[Trace]) -> Trace:
    """Merge several traces over the same address space by time."""
    if not traces:
        raise ValueError("need at least one trace")
    num_extents = traces[0].num_extents
    if any(t.num_extents != num_extents for t in traces):
        raise ValueError("traces must share an address space")
    times = np.concatenate([t.times for t in traces])
    order = np.argsort(times, kind="stable")
    return Trace(
        name=name,
        num_extents=num_extents,
        times=times[order],
        kinds=np.concatenate([t.kinds for t in traces])[order],
        extents=np.concatenate([t.extents for t in traces])[order],
        offsets=np.concatenate([t.offsets for t in traces])[order],
        sizes=np.concatenate([t.sizes for t in traces])[order],
    )
