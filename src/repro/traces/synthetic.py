"""Parameterized synthetic workload toolkit.

The OLTP and Cello generators are thin configurations of the pieces
here: arrival processes (homogeneous and modulated Poisson), a Zipf
popularity model with address-space scattering, and request-size mixes.
Everything takes an explicit :class:`numpy.random.Generator` so runs are
reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.traces.model import Trace, trace_from_columns


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

def poisson_arrivals(rate: float, duration: float, rng: np.random.Generator) -> np.ndarray:
    """Homogeneous Poisson arrival times on [0, duration)."""
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate!r}")
    if duration < 0:
        raise ValueError(f"duration must be non-negative, got {duration!r}")
    if rate == 0.0 or duration == 0.0:
        return np.empty(0, dtype=np.float64)
    # Draw in chunks: expected count + slack, extend if unlucky.
    times: list[np.ndarray] = []
    t = 0.0
    expected = rate * duration
    chunk = max(int(expected * 1.2) + 16, 64)
    while t < duration:
        gaps = rng.exponential(1.0 / rate, size=chunk)
        arrivals = t + np.cumsum(gaps)
        times.append(arrivals)
        t = float(arrivals[-1])
    all_times = np.concatenate(times)
    return all_times[all_times < duration]


def modulated_poisson_arrivals(
    rate_fn: Callable[[np.ndarray], np.ndarray],
    peak_rate: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Nonhomogeneous Poisson arrivals by thinning.

    Args:
        rate_fn: vectorized instantaneous rate, must satisfy
            ``0 <= rate_fn(t) <= peak_rate`` on [0, duration).
        peak_rate: majorizing constant rate used for the candidate
            process.
    """
    if peak_rate <= 0:
        raise ValueError(f"peak_rate must be positive, got {peak_rate!r}")
    candidates = poisson_arrivals(peak_rate, duration, rng)
    if len(candidates) == 0:
        return candidates
    rates = np.asarray(rate_fn(candidates), dtype=np.float64)
    if np.any(rates < -1e-12) or np.any(rates > peak_rate * (1 + 1e-9)):
        raise ValueError("rate_fn escaped [0, peak_rate]")
    keep = rng.random(len(candidates)) < rates / peak_rate
    return candidates[keep]


# ---------------------------------------------------------------------------
# Popularity
# ---------------------------------------------------------------------------

class ZipfPopularity:
    """Zipf-skewed extent popularity with scattered placement.

    Rank ``r`` (1-based) has probability proportional to ``1 / r**theta``.
    Ranks are mapped to extent ids through a random permutation so that
    hot extents are spread across the address space (as in real volumes),
    which is exactly the situation Hibernator's migration must fix.

    ``theta = 0`` degenerates to uniform popularity.
    """

    def __init__(
        self,
        num_extents: int,
        theta: float,
        rng: np.random.Generator,
        scatter: bool = True,
    ) -> None:
        if num_extents <= 0:
            raise ValueError(f"num_extents must be positive, got {num_extents!r}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta!r}")
        self.num_extents = num_extents
        self.theta = theta
        ranks = np.arange(1, num_extents + 1, dtype=np.float64)
        weights = ranks**-theta
        self.probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self.probabilities)
        self._cdf[-1] = 1.0
        if scatter:
            self.rank_to_extent = rng.permutation(num_extents)
        else:
            self.rank_to_extent = np.arange(num_extents)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` extent ids."""
        u = rng.random(n)
        ranks = np.searchsorted(self._cdf, u, side="right")
        return self.rank_to_extent[ranks]

    def extent_probability(self) -> np.ndarray:
        """Per-extent access probability (indexed by extent id)."""
        probs = np.empty(self.num_extents, dtype=np.float64)
        probs[self.rank_to_extent] = self.probabilities
        return probs

    def rotate(self, shift: int) -> None:
        """Shift the rank->extent mapping, modelling working-set drift:
        after ``rotate(k)`` the extent that held rank ``r`` now holds
        rank ``r + k`` (hot data cools, lukewarm data heats up)."""
        self.rank_to_extent = np.roll(self.rank_to_extent, shift)


# ---------------------------------------------------------------------------
# Size mixes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SizeMix:
    """Discrete request-size distribution."""

    sizes: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ValueError("sizes and weights must be non-empty and parallel")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("sizes must be positive")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        probs = np.asarray(self.weights, dtype=np.float64)
        probs = probs / probs.sum()
        return rng.choice(np.asarray(self.sizes, dtype=np.int64), size=n, p=probs)

    @property
    def mean(self) -> float:
        probs = np.asarray(self.weights, dtype=np.float64)
        probs = probs / probs.sum()
        return float(np.dot(np.asarray(self.sizes, dtype=np.float64), probs))


# ---------------------------------------------------------------------------
# Generic generator
# ---------------------------------------------------------------------------

@dataclass
class SyntheticConfig:
    """Fully generic single-phase workload.

    Attributes:
        name: trace label.
        duration: seconds of workload.
        rate: mean arrival rate (requests/second).
        num_extents: logical address space.
        zipf_theta: popularity skew (0 = uniform).
        read_fraction: probability a request is a read.
        size_mix: request-size distribution.
        seed: RNG seed.
        rate_fn: optional vectorized modulation; when given, ``rate`` is
            interpreted as the *peak* rate and ``rate_fn`` must stay
            within [0, rate].
    """

    name: str = "synthetic"
    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    duration: float = 3600.0
    rate: float = 100.0
    num_extents: int = 2400
    zipf_theta: float = 0.9
    read_fraction: float = 0.6
    size_mix: SizeMix = field(default_factory=lambda: SizeMix(sizes=(4096,), weights=(1.0,)))
    seed: int = 1
    rate_fn: Callable[[np.ndarray], np.ndarray] | None = None


def generate_synthetic(config: SyntheticConfig) -> Trace:
    """Generate a trace from a :class:`SyntheticConfig`."""
    rng = np.random.default_rng(config.seed)
    if config.rate_fn is None:
        times = poisson_arrivals(config.rate, config.duration, rng)
    else:
        times = modulated_poisson_arrivals(config.rate_fn, config.rate, config.duration, rng)
    n = len(times)
    popularity = ZipfPopularity(config.num_extents, config.zipf_theta, rng)
    extents = popularity.sample(n, rng)
    read_mask = rng.random(n) < config.read_fraction
    sizes = config.size_mix.sample(n, rng)
    return trace_from_columns(
        name=config.name,
        num_extents=config.num_extents,
        times=times,
        read_mask=read_mask,
        extents=extents,
        sizes=sizes,
    )


# ---------------------------------------------------------------------------
# Scenario generators
# ---------------------------------------------------------------------------

@dataclass
class FlashCrowdConfig:
    """Flash-crowd spike: steady background, then a short burst that
    multiplies the arrival rate and concentrates it on a small hot set.

    Models the adversarial case for a power policy: the array has spun
    down around a quiet baseline when a crowd arrives, so the policy
    must re-provision quickly without burning the energy budget. The
    spike's requests hit ``hot_fraction`` of the extents with
    probability ``hot_bias`` (scattered placement, as usual).
    """

    name: str = "flashcrowd"
    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    duration: float = 3600.0
    base_rate: float = 40.0
    spike_factor: float = 8.0
    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    spike_start: float = 1800.0
    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    spike_duration: float = 300.0
    num_extents: int = 2400
    zipf_theta: float = 0.9
    hot_fraction: float = 0.02
    hot_bias: float = 0.9
    read_fraction: float = 0.85
    size_mix: SizeMix = field(default_factory=lambda: SizeMix(sizes=(4096, 65536), weights=(0.7, 0.3)))
    seed: int = 1

    def __post_init__(self) -> None:
        if self.spike_factor < 1.0:
            raise ValueError(f"spike_factor must be >= 1, got {self.spike_factor!r}")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in (0, 1], got {self.hot_fraction!r}")
        if not 0.0 <= self.hot_bias <= 1.0:
            raise ValueError(f"hot_bias must be in [0, 1], got {self.hot_bias!r}")


def generate_flash_crowd(config: FlashCrowdConfig) -> Trace:
    """Generate a trace from a :class:`FlashCrowdConfig`."""
    rng = np.random.default_rng(config.seed)
    spike_end = config.spike_start + config.spike_duration
    base, peak = config.base_rate, config.base_rate * config.spike_factor

    def rate_fn(t: np.ndarray) -> np.ndarray:
        in_spike = (t >= config.spike_start) & (t < spike_end)
        return np.where(in_spike, peak, base)

    times = modulated_poisson_arrivals(rate_fn, peak, config.duration, rng)
    n = len(times)
    popularity = ZipfPopularity(config.num_extents, config.zipf_theta, rng)
    extents = popularity.sample(n, rng)
    # During the spike, redirect hot_bias of the requests onto a small
    # uniform hot set — the crowd hammers a handful of objects, not the
    # whole Zipf tail.
    hot_size = max(1, int(round(config.hot_fraction * config.num_extents)))
    hot_set = rng.choice(config.num_extents, size=hot_size, replace=False)
    in_spike = (times >= config.spike_start) & (times < spike_end)
    redirect = in_spike & (rng.random(n) < config.hot_bias)
    extents[redirect] = hot_set[rng.integers(0, hot_size, size=int(redirect.sum()))]
    read_mask = rng.random(n) < config.read_fraction
    sizes = config.size_mix.sample(n, rng)
    return trace_from_columns(
        name=config.name,
        num_extents=config.num_extents,
        times=times,
        read_mask=read_mask,
        extents=extents,
        sizes=sizes,
    )


@dataclass
class MultiTenantConfig:
    """Multi-tenant interference: tenants own disjoint extent partitions
    and take turns bursting.

    Each tenant runs its own Zipf-skewed stream over its slice of the
    address space at ``base_rate``; the burst window rotates round-robin
    across tenants, multiplying the active tenant's rate by
    ``burst_factor``. The aggregate never goes fully idle — the hard
    case for coarse-grained spin-down, straight out of the DBMS-style
    workloads in the energy-aware storage literature.
    """

    name: str = "multitenant"
    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    duration: float = 3600.0
    num_tenants: int = 4
    base_rate: float = 15.0
    burst_factor: float = 6.0
    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    burst_period: float = 600.0
    num_extents: int = 2400
    zipf_theta: float = 1.1
    read_fraction: float = 0.6
    size_mix: SizeMix = field(default_factory=lambda: SizeMix(sizes=(4096, 16384), weights=(0.8, 0.2)))
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ValueError(f"num_tenants must be >= 1, got {self.num_tenants!r}")
        if self.num_extents < self.num_tenants:
            raise ValueError(
                f"num_extents ({self.num_extents}) must cover "
                f"num_tenants ({self.num_tenants}) partitions"
            )
        if self.burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor!r}")
        if self.burst_period <= 0:
            raise ValueError(f"burst_period must be positive, got {self.burst_period!r}")


def generate_multi_tenant(config: MultiTenantConfig) -> Trace:
    """Generate a trace from a :class:`MultiTenantConfig`."""
    rng = np.random.default_rng(config.seed)
    peak = config.base_rate * config.burst_factor
    bounds = np.linspace(0, config.num_extents, config.num_tenants + 1).astype(np.int64)
    streams: list[Trace] = []
    for tenant in range(config.num_tenants):
        # Independent deterministic stream per tenant, all derived from
        # the one config seed.
        tenant_rng = np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
        lo, hi = int(bounds[tenant]), int(bounds[tenant + 1])

        def rate_fn(t: np.ndarray, tenant: int = tenant) -> np.ndarray:
            # Round-robin burst: window k belongs to tenant k mod N.
            active = (t // config.burst_period).astype(np.int64) % config.num_tenants
            return np.where(active == tenant, peak, config.base_rate)

        times = modulated_poisson_arrivals(rate_fn, peak, config.duration, tenant_rng)
        n = len(times)
        popularity = ZipfPopularity(hi - lo, config.zipf_theta, tenant_rng)
        extents = popularity.sample(n, tenant_rng) + lo
        read_mask = tenant_rng.random(n) < config.read_fraction
        sizes = config.size_mix.sample(n, tenant_rng)
        streams.append(
            trace_from_columns(
                name=f"{config.name}.t{tenant}",
                num_extents=config.num_extents,
                times=times,
                read_mask=read_mask,
                extents=extents,
                sizes=sizes,
            )
        )
    return interleave_traces(config.name, streams)


@dataclass
class WriteBurstConfig:
    """Checkpoint-style write bursts over a read-mostly background.

    A Zipf-skewed read stream runs continuously; every
    ``checkpoint_period`` a sequential write sweep walks
    ``sweep_fraction`` of the address space at ``sweep_rate`` — the
    dirty-page flush of a database checkpoint. Sweeps write large
    blocks sequentially from a rotating start extent, so consecutive
    checkpoints touch different cold regions.
    """

    name: str = "writeburst"
    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    duration: float = 3600.0
    read_rate: float = 60.0
    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    checkpoint_period: float = 600.0
    sweep_rate: float = 400.0
    sweep_fraction: float = 0.1
    num_extents: int = 2400
    zipf_theta: float = 0.9
    write_size: int = 262144
    size_mix: SizeMix = field(default_factory=lambda: SizeMix(sizes=(4096, 8192), weights=(0.75, 0.25)))
    seed: int = 1

    def __post_init__(self) -> None:
        if self.checkpoint_period <= 0:
            raise ValueError(
                f"checkpoint_period must be positive, got {self.checkpoint_period!r}"
            )
        if not 0.0 < self.sweep_fraction <= 1.0:
            raise ValueError(
                f"sweep_fraction must be in (0, 1], got {self.sweep_fraction!r}"
            )
        if self.sweep_rate <= 0:
            raise ValueError(f"sweep_rate must be positive, got {self.sweep_rate!r}")
        if self.write_size <= 0:
            raise ValueError(f"write_size must be positive, got {self.write_size!r}")


def generate_write_burst(config: WriteBurstConfig) -> Trace:
    """Generate a trace from a :class:`WriteBurstConfig`."""
    rng = np.random.default_rng(config.seed)
    # Background reads.
    read_times = poisson_arrivals(config.read_rate, config.duration, rng)
    popularity = ZipfPopularity(config.num_extents, config.zipf_theta, rng)
    read_extents = popularity.sample(len(read_times), rng)
    read_sizes = config.size_mix.sample(len(read_times), rng)
    background = trace_from_columns(
        name=f"{config.name}.reads",
        num_extents=config.num_extents,
        times=read_times,
        read_mask=np.ones(len(read_times), dtype=bool),
        extents=read_extents,
        sizes=read_sizes,
    )
    # Checkpoint sweeps: sequential writes at a fixed rate, rotating
    # start so consecutive checkpoints hit different regions.
    sweep_len = max(1, int(round(config.sweep_fraction * config.num_extents)))
    sweeps: list[Trace] = []
    checkpoint = 0
    start_time = config.checkpoint_period
    while start_time < config.duration:
        offsets = np.arange(sweep_len, dtype=np.float64) / config.sweep_rate
        times = start_time + offsets
        times = times[times < config.duration]
        n = len(times)
        start_extent = (checkpoint * sweep_len) % config.num_extents
        extents = (start_extent + np.arange(n, dtype=np.int64)) % config.num_extents
        sweeps.append(
            trace_from_columns(
                name=f"{config.name}.ckpt{checkpoint}",
                num_extents=config.num_extents,
                times=times,
                read_mask=np.zeros(n, dtype=bool),
                extents=extents,
                sizes=np.full(n, config.write_size, dtype=np.int64),
            )
        )
        checkpoint += 1
        start_time += config.checkpoint_period
    return interleave_traces(config.name, [background, *sweeps])


def interleave_traces(name: str, traces: Sequence[Trace]) -> Trace:
    """Merge several traces over the same address space by time."""
    if not traces:
        raise ValueError("need at least one trace")
    num_extents = traces[0].num_extents
    if any(t.num_extents != num_extents for t in traces):
        raise ValueError("traces must share an address space")
    times = np.concatenate([t.times for t in traces])
    order = np.argsort(times, kind="stable")
    return Trace(
        name=name,
        num_extents=num_extents,
        times=times[order],
        kinds=np.concatenate([t.kinds for t in traces])[order],
        extents=np.concatenate([t.extents for t in traces])[order],
        offsets=np.concatenate([t.offsets for t in traces])[order],
        sizes=np.concatenate([t.sizes for t in traces])[order],
    )
