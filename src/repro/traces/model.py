"""Trace containers.

A :class:`Trace` is an immutable, time-ordered sequence of logical I/O
requests stored column-wise in numpy arrays (traces run to millions of
requests; per-request Python objects would dominate memory). Iteration
yields lightweight :class:`TraceRequest` views for the replayer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.sim.request import IoKind

_KIND_READ = 0
_KIND_WRITE = 1


@dataclass(frozen=True)
class TraceRequest:
    """One logical request in a trace."""

    time: float
    kind: IoKind
    extent: int
    offset: int
    size: int


class Trace:
    """Immutable column-wise trace.

    Attributes:
        name: workload label used in reports.
        num_extents: size of the logical address space the trace targets.
        times / kinds / extents / offsets / sizes: parallel numpy arrays.
    """

    def __init__(
        self,
        name: str,
        num_extents: int,
        times: np.ndarray,
        kinds: np.ndarray,
        extents: np.ndarray,
        offsets: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        n = len(times)
        for label, arr in (
            ("kinds", kinds),
            ("extents", extents),
            ("offsets", offsets),
            ("sizes", sizes),
        ):
            if len(arr) != n:
                raise ValueError(f"column {label} has {len(arr)} rows, expected {n}")
        # Validate arrival times here, with the offending index, instead
        # of letting a bad trace surface mid-replay as a cryptic
        # SimulationError from Engine.schedule.
        if n:
            backwards = np.diff(times) < 0
            if backwards.any():
                i = int(np.argmax(backwards)) + 1
                raise ValueError(
                    f"trace times must be non-decreasing: times[{i}]="
                    f"{float(times[i]):g} after times[{i - 1}]={float(times[i - 1]):g}"
                )
            if float(times[0]) < 0.0:
                i = int(np.argmin(times))
                raise ValueError(
                    f"trace times must be non-negative: times[{i}]={float(times[i]):g}"
                )
        if n and (extents.min() < 0 or extents.max() >= num_extents):
            raise ValueError("trace addresses an extent outside the volume")
        self.name = name
        self.num_extents = num_extents
        self.times = np.asarray(times, dtype=np.float64)
        self.kinds = np.asarray(kinds, dtype=np.int8)
        self.extents = np.asarray(extents, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        for arr in (self.times, self.kinds, self.extents, self.offsets, self.sizes):
            arr.setflags(write=False)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[TraceRequest]:
        for i in range(len(self.times)):
            yield self[i]

    def __getitem__(self, i: int) -> TraceRequest:
        return TraceRequest(
            time=float(self.times[i]),
            kind=IoKind.READ if self.kinds[i] == _KIND_READ else IoKind.WRITE,
            extent=int(self.extents[i]),
            offset=int(self.offsets[i]),
            size=int(self.sizes[i]),
        )

    @property
    def duration(self) -> float:
        """Time of the last request (0.0 for an empty trace)."""
        if len(self.times) == 0:
            return 0.0
        return float(self.times[-1])

    @property
    def read_fraction(self) -> float:
        if len(self.kinds) == 0:
            return 0.0
        return float(np.mean(self.kinds == _KIND_READ))

    def slice_time(self, start: float, end: float) -> "Trace":
        """Requests with ``start <= time < end`` (times are preserved)."""
        lo = int(np.searchsorted(self.times, start, side="left"))
        hi = int(np.searchsorted(self.times, end, side="left"))
        return Trace(
            name=f"{self.name}[{start:g},{end:g})",
            num_extents=self.num_extents,
            times=self.times[lo:hi].copy(),
            kinds=self.kinds[lo:hi].copy(),
            extents=self.extents[lo:hi].copy(),
            offsets=self.offsets[lo:hi].copy(),
            sizes=self.sizes[lo:hi].copy(),
        )

    def scaled_rate(self, factor: float) -> "Trace":
        """Copy with inter-arrival times divided by ``factor`` (factor > 1
        intensifies the workload)."""
        if factor <= 0:
            raise ValueError(f"rate factor must be positive, got {factor!r}")
        return Trace(
            name=f"{self.name}x{factor:g}",
            num_extents=self.num_extents,
            times=self.times / factor,
            kinds=self.kinds.copy(),
            extents=self.extents.copy(),
            offsets=self.offsets.copy(),
            sizes=self.sizes.copy(),
        )


class TraceBuilder:
    """Append-only builder that freezes into a :class:`Trace`."""

    def __init__(self, name: str, num_extents: int) -> None:
        self.name = name
        self.num_extents = num_extents
        self._times: list[float] = []
        self._kinds: list[int] = []
        self._extents: list[int] = []
        self._offsets: list[int] = []
        self._sizes: list[int] = []

    def add(self, time: float, kind: IoKind, extent: int, offset: int, size: int) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"out-of-order request: {time} after {self._times[-1]}"
            )
        self._times.append(time)
        self._kinds.append(_KIND_READ if kind is IoKind.READ else _KIND_WRITE)
        self._extents.append(extent)
        self._offsets.append(offset)
        self._sizes.append(size)

    def __len__(self) -> int:
        return len(self._times)

    def build(self) -> Trace:
        return Trace(
            name=self.name,
            num_extents=self.num_extents,
            times=np.asarray(self._times, dtype=np.float64),
            kinds=np.asarray(self._kinds, dtype=np.int8),
            extents=np.asarray(self._extents, dtype=np.int64),
            offsets=np.asarray(self._offsets, dtype=np.int64),
            sizes=np.asarray(self._sizes, dtype=np.int64),
        )


def trace_from_columns(
    name: str,
    num_extents: int,
    times: np.ndarray,
    read_mask: np.ndarray,
    extents: np.ndarray,
    sizes: np.ndarray,
    offsets: np.ndarray | None = None,
) -> Trace:
    """Assemble a trace from generator output columns.

    ``read_mask`` is boolean (True = read); offsets default to zero.
    """
    kinds = np.where(read_mask, _KIND_READ, _KIND_WRITE).astype(np.int8)
    if offsets is None:
        offsets = np.zeros(len(times), dtype=np.int64)
    return Trace(
        name=name,
        num_extents=num_extents,
        times=times,
        kinds=kinds,
        extents=extents,
        offsets=offsets,
        sizes=sizes,
    )
