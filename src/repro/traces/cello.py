"""Cello99-style file-server workload generator.

Stands in for the HP Labs Cello99 trace. The properties that drive the
paper's file-server results, reproduced here:

* **strong diurnal rhythm** — daytime load an order of magnitude above
  the overnight valley; the valley is where most energy is saved;
* **burstiness** — daytime traffic arrives in on/off bursts, not as a
  smooth Poisson stream;
* **mixed request sizes** with some large sequential transfers;
* **working-set drift** — the hot set moves from day to day, which is
  what makes migration (and its cost) matter.

Implemented as a nonhomogeneous Poisson process (sinusoidal day/night
envelope times a burst square-wave) generated day by day, with the Zipf
rank->extent mapping rotated between days to model drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traces.model import Trace, trace_from_columns
from repro.traces.synthetic import SizeMix, ZipfPopularity, modulated_poisson_arrivals

DAY = 24 * 3600.0


@dataclass
class CelloConfig:
    """Knobs for the file-server generator."""

    days: float = 1.0
    day_rate: float = 250.0
    night_rate: float = 15.0
    peak_hour: float = 14.0
    burst_fraction: float = 0.4
    burst_intensity: float = 3.0
    burst_period_s: float = 600.0
    num_extents: int = 2400
    zipf_theta: float = 1.1
    drift_per_day: float = 0.05
    read_fraction: float = 0.55
    day_length_s: float = DAY
    size_mix: SizeMix = field(
        default_factory=lambda: SizeMix(
            sizes=(4096, 8192, 16384, 65536), weights=(0.45, 0.25, 0.2, 0.1)
        )
    )
    seed: int = 11

    def __post_init__(self) -> None:
        if self.night_rate < 0 or self.day_rate < self.night_rate:
            raise ValueError("need 0 <= night_rate <= day_rate")
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be in [0, 1]")
        if self.burst_intensity < 1.0:
            raise ValueError("burst_intensity must be >= 1")
        if self.day_length_s <= 0:
            raise ValueError("day_length_s must be positive")


def diurnal_envelope(config: CelloConfig) -> "np.ufunc":
    """Vectorized base rate: sinusoid peaking at ``peak_hour``.

    ``peak_hour`` is expressed in 24ths of the (possibly compressed)
    day, so a compressed day keeps the same diurnal shape.
    """
    mean = (config.day_rate + config.night_rate) / 2.0
    amplitude = (config.day_rate - config.night_rate) / 2.0
    peak_s = config.peak_hour / 24.0 * config.day_length_s

    def rate(t: np.ndarray) -> np.ndarray:
        phase = 2.0 * np.pi * (np.asarray(t) - peak_s) / config.day_length_s
        return mean + amplitude * np.cos(phase)

    return rate


def _burst_wave(config: CelloConfig) -> "np.ufunc":
    """Square-wave multiplier: ``burst_intensity`` during the on-phase of
    each ``burst_period_s``, compensating during the off-phase so the mean
    multiplier is 1."""
    on = config.burst_fraction
    if on == 0.0 or config.burst_intensity == 1.0:
        return lambda t: np.ones_like(np.asarray(t, dtype=np.float64))
    hi = config.burst_intensity
    lo = max(0.0, (1.0 - on * hi) / (1.0 - on)) if on < 1.0 else hi

    def wave(t: np.ndarray) -> np.ndarray:
        phase = np.mod(np.asarray(t), config.burst_period_s) / config.burst_period_s
        return np.where(phase < on, hi, lo)

    return wave


def generate_cello(config: CelloConfig | None = None) -> Trace:
    """Generate the Cello99-style trace."""
    if config is None:
        config = CelloConfig()
    rng = np.random.default_rng(config.seed)
    envelope = diurnal_envelope(config)
    wave = _burst_wave(config)
    peak = config.day_rate * max(config.burst_intensity, 1.0)

    def rate_fn(t: np.ndarray) -> np.ndarray:
        return np.clip(envelope(t) * wave(t), 0.0, peak)

    popularity = ZipfPopularity(config.num_extents, config.zipf_theta, rng)
    drift_extents = int(round(config.drift_per_day * config.num_extents))

    all_times: list[np.ndarray] = []
    all_extents: list[np.ndarray] = []
    remaining = config.days * config.day_length_s
    day_start = 0.0
    while remaining > 1e-9:
        span = min(config.day_length_s, remaining)

        def day_rate_fn(t: np.ndarray, base: float = day_start) -> np.ndarray:
            return rate_fn(np.asarray(t) + base)

        times = modulated_poisson_arrivals(day_rate_fn, peak, span, rng)
        all_times.append(times + day_start)
        all_extents.append(popularity.sample(len(times), rng))
        popularity.rotate(drift_extents)
        day_start += span
        remaining -= span

    times = np.concatenate(all_times) if all_times else np.empty(0)
    extents = np.concatenate(all_extents) if all_extents else np.empty(0, dtype=np.int64)
    n = len(times)
    read_mask = rng.random(n) < config.read_fraction
    sizes = config.size_mix.sample(n, rng)
    return trace_from_columns(
        name="cello",
        num_extents=config.num_extents,
        times=times,
        read_mask=read_mask,
        extents=extents,
        sizes=sizes,
    )
