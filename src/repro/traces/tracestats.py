"""Workload characterization (experiment T2's table).

Computes the summary statistics the paper's workload table reports:
request rate, read/write mix, request sizes, footprint, popularity skew
and peak-to-mean burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.model import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary characteristics of one trace."""

    name: str
    duration_s: float
    num_requests: int
    mean_rate: float
    read_fraction: float
    mean_size_bytes: float
    footprint_extents: int
    address_space_extents: int
    top10pct_access_share: float
    peak_to_mean_rate: float

    def rows(self) -> list[tuple[str, str]]:
        """(label, value) rows for the report formatter."""
        return [
            ("workload", self.name),
            ("duration", f"{self.duration_s / 3600.0:.2f} h"),
            ("requests", f"{self.num_requests}"),
            ("mean rate", f"{self.mean_rate:.1f} req/s"),
            ("reads", f"{100.0 * self.read_fraction:.1f} %"),
            ("mean size", f"{self.mean_size_bytes / 1024.0:.1f} KiB"),
            ("footprint", f"{self.footprint_extents}/{self.address_space_extents} extents"),
            ("top-10% share", f"{100.0 * self.top10pct_access_share:.1f} %"),
            ("peak/mean rate", f"{self.peak_to_mean_rate:.2f}"),
        ]


def compute_trace_stats(trace: Trace, window_s: float = 3600.0) -> TraceStats:
    """Characterize ``trace``.

    Args:
        window_s: window width used for the peak-rate estimate.
    """
    n = len(trace)
    duration = trace.duration
    mean_rate = n / duration if duration > 0 else 0.0

    if n:
        counts = np.bincount(trace.extents, minlength=trace.num_extents)
        footprint = int(np.count_nonzero(counts))
        sorted_counts = np.sort(counts)[::-1]
        top_k = max(1, trace.num_extents // 10)
        top_share = float(sorted_counts[:top_k].sum() / n)
        mean_size = float(trace.sizes.mean())
    else:
        footprint = 0
        top_share = 0.0
        mean_size = 0.0

    peak_to_mean = _peak_to_mean(trace, window_s) if n else 0.0

    return TraceStats(
        name=trace.name,
        duration_s=duration,
        num_requests=n,
        mean_rate=mean_rate,
        read_fraction=trace.read_fraction,
        mean_size_bytes=mean_size,
        footprint_extents=footprint,
        address_space_extents=trace.num_extents,
        top10pct_access_share=top_share,
        peak_to_mean_rate=peak_to_mean,
    )


def _peak_to_mean(trace: Trace, window_s: float) -> float:
    duration = max(trace.duration, window_s)
    edges = np.arange(0.0, duration + window_s, window_s)
    counts, _ = np.histogram(trace.times, bins=edges)
    window_rates = counts / window_s
    mean = len(trace) / duration
    if mean == 0:
        return 0.0
    return float(window_rates.max() / mean)


def per_extent_rates(trace: Trace, write_weight: float = 1.0) -> np.ndarray:
    """Mean request rate per extent (requests/second), for heat priming.

    ``write_weight`` scales writes (e.g. 4.0 to prime a RAID-5 run, where
    each logical write costs four physical ops).
    """
    duration = trace.duration
    if write_weight == 1.0:
        counts = np.bincount(trace.extents, minlength=trace.num_extents).astype(np.float64)
    else:
        weights = np.where(trace.kinds == 0, 1.0, write_weight)
        counts = np.bincount(trace.extents, weights=weights, minlength=trace.num_extents)
    if duration <= 0:
        return counts
    return counts / duration
