"""OLTP workload generator.

Stands in for the paper's TPC-C-on-a-commercial-DBMS I/O trace. The
properties that drive Hibernator's OLTP results, and which this
generator reproduces:

* **steady, high arrival rate** — transaction mixes arrive around the
  clock, so idle gaps are far shorter than a spin-down break-even
  (this is why TPM saves nothing on OLTP);
* **small random I/O** — 4 KiB/8 KiB pages, negligible sequentiality;
* **skewed page popularity** — a warehouse/district-style Zipf skew, so
  a hot slice of extents carries most of the load (this is the tiering
  opportunity);
* **read-mostly mix** — roughly two reads per write at the device level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.traces.model import Trace
from repro.traces.synthetic import SizeMix, SyntheticConfig, generate_synthetic


@dataclass
class OltpConfig:
    """Knobs for the OLTP generator.

    Defaults target a 24-disk array at modest utilization — the regime
    where speed tiering pays while the response-time goal stays
    reachable.
    """

    # repro: lint-ok[UNIT002] established trace-config field, documented as seconds
    duration: float = 4 * 3600.0
    rate: float = 500.0
    num_extents: int = 2400
    zipf_theta: float = 0.95
    read_fraction: float = 0.66
    size_mix: SizeMix = field(
        default_factory=lambda: SizeMix(sizes=(4096, 8192), weights=(0.8, 0.2))
    )
    seed: int = 7


def generate_oltp(config: OltpConfig | None = None) -> Trace:
    """Generate the OLTP stand-in trace."""
    if config is None:
        config = OltpConfig()
    synthetic = SyntheticConfig(
        name="oltp",
        duration=config.duration,
        rate=config.rate,
        num_extents=config.num_extents,
        zipf_theta=config.zipf_theta,
        read_fraction=config.read_fraction,
        size_mix=config.size_mix,
        seed=config.seed,
    )
    return generate_synthetic(synthetic)
