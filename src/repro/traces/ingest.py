"""Real trace ingestion: public block-trace formats -> validated Traces.

The paper's headline results are driven by real traces (Cello '99, an
OLTP disk trace); the repo's built-in generators only *approximate*
them. This module opens the door to the real thing: loaders for the
block-trace formats that public archives actually publish, each
producing a validated :class:`~repro.traces.model.Trace` plus a
:class:`TraceProvenance` record (source path, content hash, what was
dropped, what was rescaled), and TraceTracker-style *modernization*
transforms that re-scale a decade-old trace onto modern hardware — a
new time axis, a new address-space size, a new intensity — while
preserving the workload's hot/cold structure.

Supported formats (:data:`INGEST_FORMATS`):

* ``msr`` — MSR-Cambridge-style CSV:
  ``timestamp,hostname,disk,type,offset,size,response_time`` with the
  timestamp in Windows filetime ticks (100 ns units) and byte offsets.
* ``blkparse`` — ``blktrace``/``blkparse`` default text output; only
  queue (``Q``) records are ingested (one per logical request), sector
  offsets are converted at 512 bytes/sector.
* ``csv`` — any columnar text format, described declaratively by a
  :class:`FieldMap` (column names or indices, time/offset units, read
  tokens, delimiter).

Everything here is pure and deterministic: loaders read only the file,
transforms take explicit seeds, and the same (file content, options)
pair always produces the same trace — which is what lets
:class:`~repro.analysis.parallel.TraceSpec` cache imported runs by a
content hash of the source file.
"""

from __future__ import annotations

import gzip
import hashlib
import io as _io
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import IO, Callable, Iterator

import numpy as np

from repro.traces.io import TraceFormatError
from repro.traces.model import Trace
from repro.traces.transforms import remap_extents, sample_fraction

#: Bytes per sector for formats that address in sectors (blkparse).
SECTOR_BYTES = 512

#: Windows filetime tick length (100 ns) — MSR-Cambridge timestamps.
_FILETIME_TICK_S = 1e-7

#: Default logical extent size when folding byte offsets onto extents.
DEFAULT_EXTENT_BYTES = 1 << 20


# ---------------------------------------------------------------------------
# Options and provenance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldMap:
    """Declarative column map for the generic ``csv`` loader.

    Columns are addressed by header name (``str``) or 0-based index
    (``int``). ``kind`` may be None (every request is a read) and
    ``size`` may be None (every request gets ``default_size_bytes``).

    Attributes:
        time: arrival-time column.
        kind: read/write column; values matching ``read_values``
            (case-insensitive) are reads, everything else is a write.
        offset: address column (unit set by ``offset_unit``).
        size: request-size column (unit set by ``offset_unit`` when
            ``sectors``, bytes otherwise).
        time_unit: ``s`` | ``ms`` | ``us`` | ``ns``.
        offset_unit: ``bytes`` | ``sectors`` | ``extents``.
        read_values: tokens (lowercased) that mark a read.
        delimiter: field separator.
        has_header: whether row 1 is a header (required for ``str``
            column references).
        default_size_bytes: size used when ``size`` is None.
    """

    time: int | str = "time"
    kind: int | str | None = "kind"
    offset: int | str = "offset"
    size: int | str | None = "size"
    time_unit: str = "s"
    offset_unit: str = "bytes"
    read_values: tuple[str, ...] = ("r", "read", "0", "true")
    delimiter: str = ","
    has_header: bool = True
    default_size_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.time_unit not in _TIME_SCALES:
            raise ValueError(
                f"time_unit must be one of {sorted(_TIME_SCALES)}, got {self.time_unit!r}"
            )
        if self.offset_unit not in ("bytes", "sectors", "extents"):
            raise ValueError(
                f"offset_unit must be bytes/sectors/extents, got {self.offset_unit!r}"
            )
        if self.default_size_bytes <= 0:
            raise ValueError("default_size_bytes must be positive")


_TIME_SCALES = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}


@dataclass(frozen=True)
class IngestOptions:
    """Knobs shared by every loader, plus the modernization pipeline.

    The modernization fields apply TraceTracker-style rescaling *after*
    the raw load, in a fixed order (address space, then time axis, then
    intensity) so the same options always produce the same trace:

    * ``target_extents`` — re-map the address space onto this many
      extents, preserving the hot/cold popularity ranking
      (:func:`rescale_extents`);
    * ``target_duration_s`` / ``target_iops`` — linear time-axis rescale
      (:func:`rescale_time`; at most one may be set);
    * ``intensity`` — arrival thinning (< 1) or superposition (> 1)
      at a fixed time axis (:func:`scale_intensity`).
    """

    extent_bytes: int = DEFAULT_EXTENT_BYTES
    num_extents: int | None = None
    name: str | None = None
    field_map: FieldMap | None = None
    target_extents: int | None = None
    target_duration_s: float | None = None
    target_iops: float | None = None
    intensity: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.extent_bytes <= 0:
            raise ValueError(f"extent_bytes must be positive, got {self.extent_bytes!r}")
        if self.num_extents is not None and self.num_extents < 1:
            raise ValueError(f"num_extents must be >= 1, got {self.num_extents!r}")
        if self.target_extents is not None and self.target_extents < 1:
            raise ValueError(f"target_extents must be >= 1, got {self.target_extents!r}")
        if self.target_duration_s is not None and self.target_iops is not None:
            raise ValueError("set at most one of target_duration_s / target_iops")
        if self.intensity <= 0:
            raise ValueError(f"intensity must be positive, got {self.intensity!r}")


@dataclass(frozen=True)
class TraceProvenance:
    """Where an imported trace came from and what was done to it.

    ``sha256`` is the content hash of the *source file* — the same hash
    :class:`~repro.analysis.parallel.TraceSpec` folds into the result
    cache key, so a provenance record always identifies the exact bytes
    a cached result was derived from.
    """

    source: str
    format: str
    sha256: str
    num_requests: int
    skipped_lines: int
    duration_s: float
    read_fraction: float
    num_extents: int
    extent_bytes: int
    transforms: tuple[str, ...] = ()

    def rows(self) -> list[tuple[str, str]]:
        """(label, value) rows for the report formatter."""
        return [
            ("source", self.source),
            ("format", self.format),
            ("sha256", self.sha256[:16] + "..."),
            ("requests", str(self.num_requests)),
            ("skipped lines", str(self.skipped_lines)),
            ("duration", f"{self.duration_s:.1f} s"),
            ("reads", f"{100.0 * self.read_fraction:.1f} %"),
            ("extents", f"{self.num_extents} x {self.extent_bytes} B"),
            ("transforms", ", ".join(self.transforms) or "none"),
        ]

    def to_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "format": self.format,
            "sha256": self.sha256,
            "num_requests": self.num_requests,
            "skipped_lines": self.skipped_lines,
            "duration_s": self.duration_s,
            "read_fraction": self.read_fraction,
            "num_extents": self.num_extents,
            "extent_bytes": self.extent_bytes,
            "transforms": list(self.transforms),
        }


@dataclass(frozen=True)
class IngestResult:
    """A validated trace plus its provenance record."""

    trace: Trace
    provenance: TraceProvenance


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------


def file_sha256(path: str | Path) -> str:
    """Hex SHA-256 of the file's raw bytes (the compressed bytes for
    ``.gz`` sources — the key must change iff the file on disk does)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _open_source(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return _io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8", newline="")
    return open(path, "r", encoding="utf-8", newline="")


def _float_field(value: str, path: Path, lineno: int, label: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise TraceFormatError(
            f"{path}:{lineno}: {label} is not a number: {value!r}"
        ) from None


def _int_field(value: str, path: Path, lineno: int, label: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise TraceFormatError(
            f"{path}:{lineno}: {label} is not an integer: {value!r}"
        ) from None


class _Columns:
    """Append-only raw request columns shared by every loader."""

    def __init__(self) -> None:
        self.times: list[float] = []
        self.reads: list[bool] = []
        self.offsets_bytes: list[int] = []
        self.sizes: list[int] = []
        self.skipped = 0

    def add(self, time_s: float, read: bool, offset_bytes: int, size_bytes: int) -> None:
        self.times.append(time_s)
        self.reads.append(read)
        self.offsets_bytes.append(offset_bytes)
        self.sizes.append(size_bytes)

    def __len__(self) -> int:
        return len(self.times)


def _finalize(
    columns: _Columns,
    path: Path,
    fmt: str,
    options: IngestOptions,
) -> IngestResult:
    """Validate, sort, fold onto extents and apply modernization."""
    name = options.name or path.name.removesuffix(".gz").rsplit(".", 1)[0]
    n = len(columns)
    if n == 0:
        trace = Trace(
            name=name,
            num_extents=options.num_extents or 1,
            times=np.empty(0, dtype=np.float64),
            kinds=np.empty(0, dtype=np.int8),
            extents=np.empty(0, dtype=np.int64),
            offsets=np.empty(0, dtype=np.int64),
            sizes=np.empty(0, dtype=np.int64),
        )
    else:
        times = np.asarray(columns.times, dtype=np.float64)
        reads = np.asarray(columns.reads, dtype=bool)
        offsets_bytes = np.asarray(columns.offsets_bytes, dtype=np.int64)
        sizes = np.asarray(columns.sizes, dtype=np.int64)
        if offsets_bytes.min() < 0:
            i = int(np.argmin(offsets_bytes))
            raise TraceFormatError(
                f"{path}: record {i} has a negative offset ({int(offsets_bytes[i])})"
            )
        if sizes.min() <= 0:
            i = int(np.argmin(sizes))
            raise TraceFormatError(
                f"{path}: record {i} has a non-positive size ({int(sizes[i])})"
            )
        # Rebase to t=0 and stable-sort: real captures interleave CPUs /
        # hosts, so arrival order in the file is not time order.
        order = np.argsort(times, kind="stable")
        times = times[order] - float(times[order[0]])
        extents = offsets_bytes // options.extent_bytes
        num_extents = options.num_extents
        if num_extents is None:
            num_extents = int(extents.max()) + 1
        elif extents.max() >= num_extents:
            raise TraceFormatError(
                f"{path}: offset {int(offsets_bytes[int(np.argmax(extents))])} maps to "
                f"extent {int(extents.max())}, outside the requested "
                f"{num_extents}-extent volume; raise num_extents or extent_bytes"
            )
        trace = Trace(
            name=name,
            num_extents=num_extents,
            times=times,
            kinds=np.where(reads[order], 0, 1).astype(np.int8),
            extents=extents[order],
            offsets=(offsets_bytes % options.extent_bytes)[order],
            sizes=sizes[order],
        )

    trace, applied = _modernize(trace, options)
    provenance = TraceProvenance(
        source=str(path),
        format=fmt,
        sha256=file_sha256(path),
        num_requests=len(trace),
        skipped_lines=columns.skipped,
        duration_s=trace.duration,
        read_fraction=trace.read_fraction,
        num_extents=trace.num_extents,
        extent_bytes=options.extent_bytes,
        transforms=applied,
    )
    return IngestResult(trace=trace, provenance=provenance)


def _modernize(trace: Trace, options: IngestOptions) -> tuple[Trace, tuple[str, ...]]:
    """Apply the options' modernization pipeline in its fixed order."""
    applied: list[str] = []
    name = trace.name
    if options.target_extents is not None and len(trace):
        trace = rescale_extents(trace, options.target_extents, seed=options.seed,
                                name=name)
        applied.append(f"extents->{options.target_extents}")
    if options.target_duration_s is not None and len(trace):
        trace = rescale_time(trace, duration_s=options.target_duration_s, name=name)
        applied.append(f"duration->{options.target_duration_s:g}s")
    elif options.target_iops is not None and len(trace):
        trace = rescale_time(trace, iops=options.target_iops, name=name)
        applied.append(f"iops->{options.target_iops:g}")
    if options.intensity != 1.0 and len(trace):
        trace = scale_intensity(trace, options.intensity, seed=options.seed, name=name)
        applied.append(f"intensity x{options.intensity:g}")
    return trace, tuple(applied)


# ---------------------------------------------------------------------------
# Loaders
# ---------------------------------------------------------------------------


def load_msr(path: str | Path, options: IngestOptions | None = None) -> IngestResult:
    """MSR-Cambridge-style CSV.

    Row layout: ``timestamp,hostname,disk,type,offset,size,response``
    (exactly the first six fields are required; anything after the size
    is ignored). Timestamps are Windows filetime ticks (100 ns).
    """
    path = Path(path)
    options = options or IngestOptions()
    columns = _Columns()
    with _open_source(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                columns.skipped += 1
                continue
            parts = line.split(",")
            if len(parts) < 6:
                raise TraceFormatError(
                    f"{path}:{lineno}: expected >= 6 comma-separated fields, "
                    f"got {len(parts)}"
                )
            kind = parts[3].strip().lower()
            if kind not in ("read", "write", "r", "w"):
                raise TraceFormatError(
                    f"{path}:{lineno}: type must be Read or Write, got {parts[3]!r}"
                )
            ticks = _float_field(parts[0], path, lineno, "timestamp")
            offset = _int_field(parts[4], path, lineno, "offset")
            size = _int_field(parts[5], path, lineno, "size")
            columns.add(ticks * _FILETIME_TICK_S, kind.startswith("r"), offset, size)
    return _finalize(columns, path, "msr", options)


def load_blkparse(path: str | Path, options: IngestOptions | None = None) -> IngestResult:
    """``blkparse`` default text output.

    Record layout: ``maj,min cpu seq timestamp pid action rwbs sector +
    sectors [process]``. Only queue (``Q``) records whose RWBS token
    contains a read or write flag are ingested — one per logical
    request; completion/dispatch/merge records and the trailing summary
    section are skipped.
    """
    path = Path(path)
    options = options or IngestOptions()
    columns = _Columns()
    with _open_source(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            parts = line.split()
            # The summary block after the per-record section (and blank
            # lines) must not be parsed as records.
            if len(parts) < 10 or "," not in parts[0] or parts[8] != "+":
                columns.skipped += 1
                continue
            action, rwbs = parts[5], parts[6]
            if action != "Q":
                columns.skipped += 1
                continue
            rwbs_upper = rwbs.upper()
            read = "R" in rwbs_upper
            if not read and "W" not in rwbs_upper:
                columns.skipped += 1  # discard / barrier records
                continue
            time_s = _float_field(parts[3], path, lineno, "timestamp")
            sector = _int_field(parts[7], path, lineno, "sector")
            nsectors = _int_field(parts[9], path, lineno, "sector count")
            columns.add(time_s, read, sector * SECTOR_BYTES, nsectors * SECTOR_BYTES)
    return _finalize(columns, path, "blkparse", options)


def _resolve_column(
    ref: int | str, header: list[str] | None, path: Path
) -> int:
    if isinstance(ref, int):
        return ref
    if header is None:
        raise TraceFormatError(
            f"{path}: field map names column {ref!r} but has_header is False; "
            "use integer column indices"
        )
    try:
        return header.index(ref)
    except ValueError:
        raise TraceFormatError(
            f"{path}: column {ref!r} not in header {header!r}"
        ) from None


def load_generic_csv(
    path: str | Path, options: IngestOptions | None = None
) -> IngestResult:
    """Columnar text format described by ``options.field_map``."""
    path = Path(path)
    options = options or IngestOptions()
    fmap = options.field_map or FieldMap()
    time_scale = _TIME_SCALES[fmap.time_unit]
    columns = _Columns()
    with _open_source(path) as fh:
        header: list[str] | None = None
        start = 1
        if fmap.has_header:
            first = fh.readline()
            if not first:
                raise TraceFormatError(f"{path}: empty file, expected a header row")
            header = [tok.strip() for tok in first.rstrip("\n").split(fmap.delimiter)]
            start = 2
        time_col = _resolve_column(fmap.time, header, path)
        kind_col = None if fmap.kind is None else _resolve_column(fmap.kind, header, path)
        offset_col = _resolve_column(fmap.offset, header, path)
        size_col = None if fmap.size is None else _resolve_column(fmap.size, header, path)
        read_tokens = tuple(v.lower() for v in fmap.read_values)
        for lineno, line in enumerate(fh, start=start):
            line = line.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                columns.skipped += 1
                continue
            parts = [tok.strip() for tok in line.split(fmap.delimiter)]
            needed = max(c for c in (time_col, kind_col, offset_col, size_col)
                         if c is not None)
            if len(parts) <= needed:
                raise TraceFormatError(
                    f"{path}:{lineno}: expected >= {needed + 1} fields, got {len(parts)}"
                )
            time_s = _float_field(parts[time_col], path, lineno, "time") * time_scale
            read = True
            if kind_col is not None:
                read = parts[kind_col].lower() in read_tokens
            raw_offset = _int_field(parts[offset_col], path, lineno, "offset")
            if fmap.offset_unit == "sectors":
                offset = raw_offset * SECTOR_BYTES
            elif fmap.offset_unit == "extents":
                offset = raw_offset * options.extent_bytes
            else:
                offset = raw_offset
            if size_col is not None:
                size = _int_field(parts[size_col], path, lineno, "size")
                if fmap.offset_unit == "sectors":
                    size *= SECTOR_BYTES
            else:
                size = fmap.default_size_bytes
            columns.add(time_s, read, offset, size)
    return _finalize(columns, path, "csv", options)


#: Loader registry: format name -> loader callable.
INGEST_FORMATS: dict[str, Callable[..., IngestResult]] = {
    "msr": load_msr,
    "blkparse": load_blkparse,
    "csv": load_generic_csv,
}


def import_trace(
    path: str | Path,
    format: str,
    options: IngestOptions | None = None,
) -> IngestResult:
    """Load ``path`` with the named format loader and modernize it.

    Raises :class:`~repro.traces.io.TraceFormatError` (with file/line
    context) on malformed input and ``ValueError`` on an unknown format.
    """
    if format not in INGEST_FORMATS:
        raise ValueError(
            f"unknown ingest format {format!r}; known: {sorted(INGEST_FORMATS)}"
        )
    return INGEST_FORMATS[format](path, options)


# ---------------------------------------------------------------------------
# Modernization transforms (TraceTracker-style)
# ---------------------------------------------------------------------------


def rescale_time(
    trace: Trace,
    duration_s: float | None = None,
    iops: float | None = None,
    name: str | None = None,
) -> Trace:
    """Linear time-axis rescale to a target duration or mean IOPS.

    Inter-arrival structure (burst shape, idle valleys) is preserved —
    every arrival time is multiplied by one constant. Exactly one of
    ``duration_s`` / ``iops`` must be given; the trace must be non-empty
    with a positive span.
    """
    if (duration_s is None) == (iops is None):
        raise ValueError("set exactly one of duration_s / iops")
    if len(trace) == 0 or trace.duration <= 0.0:
        raise ValueError("cannot rescale an empty or zero-duration trace")
    if duration_s is not None:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s!r}")
        factor = duration_s / trace.duration
    else:
        assert iops is not None
        if iops <= 0:
            raise ValueError(f"iops must be positive, got {iops!r}")
        factor = (len(trace) / trace.duration) / iops
    return Trace(
        name=name or f"{trace.name}@t{factor:g}",
        num_extents=trace.num_extents,
        times=trace.times * factor,
        kinds=trace.kinds.copy(),
        extents=trace.extents.copy(),
        offsets=trace.offsets.copy(),
        sizes=trace.sizes.copy(),
    )


def rescale_extents(
    trace: Trace,
    num_extents: int,
    seed: int = 0,
    name: str | None = None,
) -> Trace:
    """Re-map the address space onto ``num_extents`` extents, preserving
    the hot/cold popularity ranking.

    Source extents are ranked by access count (hottest first, ties
    broken by extent id so the mapping is deterministic); rank ``r`` of
    ``n`` source extents lands on target *rank* ``r * num_extents // n``,
    so shrinking folds comparable heat together and growing spreads the
    hot set out with cold extents left untouched. Target ranks are
    scattered across the new address space by a seeded permutation —
    real volumes do not store their hottest data contiguously, and a
    contiguous hot set would make Hibernator's migration look trivially
    cheap.
    """
    if num_extents < 1:
        raise ValueError(f"num_extents must be >= 1, got {num_extents!r}")
    n_src = trace.num_extents
    counts = np.bincount(trace.extents, minlength=n_src)
    # lexsort's last key is primary: sort by descending count, then by
    # extent id for a deterministic order among equals.
    hottest_first = np.lexsort((np.arange(n_src), -counts))
    rank_of_src = np.empty(n_src, dtype=np.int64)
    rank_of_src[hottest_first] = np.arange(n_src, dtype=np.int64)
    target_rank = rank_of_src * num_extents // n_src
    scatter = np.random.default_rng(seed).permutation(num_extents)
    mapping = scatter[target_rank]
    return remap_extents(trace, mapping, num_extents,
                         name=name or f"{trace.name}@e{num_extents}")


def scale_intensity(
    trace: Trace,
    factor: float,
    seed: int = 0,
    name: str | None = None,
) -> Trace:
    """Scale the arrival rate by ``factor`` at a fixed time axis.

    ``factor < 1`` thins arrivals (uniform random sampling — the
    standard de-intensification, same as
    :func:`~repro.traces.transforms.sample_fraction`); ``factor > 1``
    superposes jittered replicas of the trace on top of itself:
    ``floor(factor) - 1`` full replicas plus one thinned replica for the
    fractional part, each replica's arrivals jittered by up to one mean
    inter-arrival gap so superposed requests do not collide on identical
    timestamps. Request mix, sizes and the hot set are preserved.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor!r}")
    new_name = name or trace.name
    if factor == 1.0 or len(trace) == 0:
        return Trace(
            name=f"{new_name}i{factor:g}" if factor != 1.0 else new_name,
            num_extents=trace.num_extents,
            times=trace.times.copy(),
            kinds=trace.kinds.copy(),
            extents=trace.extents.copy(),
            offsets=trace.offsets.copy(),
            sizes=trace.sizes.copy(),
        )
    if factor < 1.0:
        thinned = sample_fraction(trace, factor, seed=seed)
        return Trace(
            name=f"{new_name}i{factor:g}",
            num_extents=trace.num_extents,
            times=thinned.times.copy(),
            kinds=thinned.kinds.copy(),
            extents=thinned.extents.copy(),
            offsets=thinned.offsets.copy(),
            sizes=thinned.sizes.copy(),
        )
    rng = np.random.default_rng(seed)
    whole = int(factor)
    fraction = factor - whole
    replicas: list[Trace] = [trace]
    for _ in range(whole - 1):
        replicas.append(trace)
    if fraction > 0.0:
        # Child seed drawn from the stream keeps one seed controlling
        # the whole superposition deterministically.
        replicas.append(sample_fraction(trace, fraction,
                                        seed=int(rng.integers(0, 2**31 - 1))))
    mean_gap = trace.duration / len(trace) if trace.duration > 0 else 0.0
    times_parts: list[np.ndarray] = []
    kinds_parts: list[np.ndarray] = []
    extents_parts: list[np.ndarray] = []
    offsets_parts: list[np.ndarray] = []
    sizes_parts: list[np.ndarray] = []
    for i, replica in enumerate(replicas):
        times = replica.times
        if i > 0 and len(replica):
            times = times + rng.uniform(0.0, mean_gap, size=len(replica))
        times_parts.append(times)
        kinds_parts.append(replica.kinds)
        extents_parts.append(replica.extents)
        offsets_parts.append(replica.offsets)
        sizes_parts.append(replica.sizes)
    all_times = np.concatenate(times_parts)
    order = np.argsort(all_times, kind="stable")
    return Trace(
        name=f"{new_name}i{factor:g}",
        num_extents=trace.num_extents,
        times=all_times[order],
        kinds=np.concatenate(kinds_parts)[order],
        extents=np.concatenate(extents_parts)[order],
        offsets=np.concatenate(offsets_parts)[order],
        sizes=np.concatenate(sizes_parts)[order],
    )


def _iter_formats() -> Iterator[str]:  # pragma: no cover - convenience
    yield from sorted(INGEST_FORMATS)


__all__ = [
    "DEFAULT_EXTENT_BYTES",
    "SECTOR_BYTES",
    "FieldMap",
    "IngestOptions",
    "IngestResult",
    "TraceProvenance",
    "INGEST_FORMATS",
    "file_sha256",
    "import_trace",
    "load_blkparse",
    "load_generic_csv",
    "load_msr",
    "rescale_extents",
    "rescale_time",
    "scale_intensity",
]
