"""Result export: simulation results to JSON/CSV for external plotting.

The text tables in :mod:`repro.analysis.report` are for eyes; these
serializers are for pipelines — everything a
:class:`repro.sim.runner.SimulationResult` carries, in plain data types.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import IO, Any

from repro.analysis.atomicio import atomic_write
from repro.analysis.experiments import ComparisonResult
from repro.obs.events import event_to_dict
from repro.sim.runner import SimulationResult


def _json_safe(value: float) -> float | None:
    """NaN has no JSON encoding; empty latency windows export as null."""
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def result_to_dict(
    result: SimulationResult,
    include_series: bool = False,
    include_events: bool = False,
) -> dict[str, Any]:
    """Flatten one run into JSON-safe types.

    Args:
        include_series: also include the time series (latency windows,
            speed and power samples); omitted by default because they
            dominate the payload.
        include_events: also include the structured trace events (only
            present on runs built with ``observe=True``).
    """
    out: dict[str, Any] = {
        "trace": result.trace_name,
        "policy": result.policy_name,
        "policy_params": result.policy_params,
        "num_requests": result.num_requests,
        "failed_requests": result.failed_requests,
        "sim_end_s": result.sim_end,
        "energy_joules": result.energy_joules,
        "mean_power_watts": result.mean_power_watts,
        "energy_breakdown_joules": dict(result.breakdown.joules),
        "mean_response_s": result.mean_response_s,
        # Percentiles are NaN when unavailable (keep_latency_samples=False
        # or no served requests); NaN has no JSON encoding, so export null.
        "p95_response_s": _json_safe(result.p95_response_s),
        "p99_response_s": _json_safe(result.p99_response_s),
        "max_response_s": result.max_response_s,
        "goal_s": result.goal_s,
        "meets_goal": result.meets_goal,
        "migration_extents": result.migration_extents,
        "migration_bytes": result.migration_bytes,
        "spinups": result.spinups,
        "speed_changes": result.speed_changes,
        "extras": dict(result.extras),
    }
    if include_series:
        out["latency_windows"] = [[w[0], _json_safe(w[1]), w[2]] for w in result.latency_windows]
        out["speed_samples"] = [list(s) for s in result.speed_samples]
        out["power_samples"] = [list(p) for p in result.power_samples]
    if include_events:
        out["events"] = [event_to_dict(e) for e in result.events]
    return out


def comparison_to_dict(comparison: ComparisonResult, include_series: bool = False) -> dict[str, Any]:
    """Flatten a whole comparison (per-scheme results plus savings)."""
    return {
        "goal_s": comparison.goal_s,
        "slack": comparison.slack,
        "schemes": {
            name: {
                **result_to_dict(result, include_series=include_series),
                "energy_savings_vs_base": comparison.savings(name),
            }
            for name, result in comparison.results.items()
        },
    }


def _strict_json(value: Any) -> Any:
    """Recursively replace non-finite floats with None.

    ``result_to_dict`` guards the fields it knows can be NaN (the
    percentiles, empty latency windows), but values it passes through
    whole — ``extras`` gauges, event fields — can also carry NaN, and
    Python's default ``json.dump`` would emit a bare ``NaN`` literal
    that strict parsers (``jq``, ``JSON.parse``) reject. Every ``--json``
    CLI path funnels through :func:`write_json`, so sanitizing here
    covers run/compare/fleet at once.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _strict_json(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_strict_json(v) for v in value]
    return value


def write_json(data: dict[str, Any], path: str | Path | IO[str]) -> None:
    """Write a dict (from the functions above) as strict indented JSON.

    Non-finite floats anywhere in the tree become null;
    ``allow_nan=False`` makes any leak a loud error instead of invalid
    output.
    """
    data = _strict_json(data)
    if hasattr(path, "write"):
        json.dump(data, path, indent=2, sort_keys=True, allow_nan=False)  # type: ignore[arg-type]
        return
    with atomic_write(path) as fh:
        json.dump(data, fh, indent=2, sort_keys=True, allow_nan=False)


_CSV_FIELDS = [
    "trace", "policy", "num_requests", "energy_joules", "mean_power_watts",
    "mean_response_s", "p95_response_s", "p99_response_s", "max_response_s",
    "goal_s", "meets_goal", "migration_extents", "spinups", "speed_changes",
    "energy_savings_vs_base",
]


def write_comparison_csv(comparison: ComparisonResult, path: str | Path) -> None:
    """One CSV row per scheme: the columns every plot script wants."""
    with atomic_write(path, newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for name, result in comparison.results.items():
            row = result_to_dict(result)
            row["energy_savings_vs_base"] = comparison.savings(name)
            writer.writerow({k: row[k] for k in _CSV_FIELDS})
