"""On-disk memoization of simulation results.

Every experiment run is a pure function of its spec (trace, array,
policy, goal), so results can be cached across processes and sessions.
:class:`ResultCache` stores pickled values under a content hash of the
spec plus a code-version tag, giving three invalidation levers:

* **automatic** — change any spec field and the key changes;
* **versioned** — bump :data:`CODE_VERSION` when simulator semantics
  change and every old entry becomes unreachable;
* **explicit** — :meth:`ResultCache.clear` (or ``python -m repro cache
  --clear``) deletes the entries on disk.

Keys are built by :func:`content_key`, which canonicalizes dataclasses,
dicts, numpy arrays and plain containers into a stable JSON form before
hashing, so logically-equal specs hash equally regardless of object
identity or dict insertion history.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterator

import numpy as np

#: Bump whenever a change to the simulator alters the results a spec
#: produces (disk model, engine semantics, policy behaviour, ...).
#: Old cache entries become unreachable rather than silently stale.
CODE_VERSION = "2026.08-7"

_SUFFIX = ".result.pkl"


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable structure that is stable across
    processes for logically-equal inputs."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips exactly; formatting floats any other way
        # would alias nearby spec values onto one key.
        return {"__float__": repr(obj)}
    if isinstance(obj, bytes):
        return {"__bytes__": hashlib.sha256(obj).hexdigest()}
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return {
            "__ndarray__": hashlib.sha256(arr.tobytes()).hexdigest(),
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
        }
    if isinstance(obj, np.generic):
        return _canonical(obj.item())
    if hasattr(obj, "cache_key"):
        return {"__custom__": type(obj).__qualname__, "key": _canonical(obj.cache_key())}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__qualname__, "fields": fields}
    if isinstance(obj, dict):
        return {"__dict__": sorted((str(k), _canonical(v)) for k, v in obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(_canonical(v), sort_keys=True) for v in obj)}
    if callable(obj):
        # Callables are identified by name only; behaviour changes must
        # be signalled through CODE_VERSION.
        return {"__callable__": f"{getattr(obj, '__module__', '?')}.{getattr(obj, '__qualname__', repr(obj))}"}
    raise TypeError(f"cannot build a stable cache key for {type(obj).__qualname__}: {obj!r}")


def content_key(obj: Any, version: str = CODE_VERSION) -> str:
    """Stable hex digest of ``obj``'s content plus the code version."""
    payload = json.dumps({"version": version, "spec": _canonical(obj)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed pickle cache for simulation results.

    One file per entry (``<key><suffix>``), written atomically so a
    crashed or parallel writer can never leave a torn entry behind.
    Unreadable entries are treated as misses and deleted.

    Attributes:
        root: cache directory (created on first use).
        version: code-version tag folded into every key.
        hits / misses / stores: session counters for reporting.
    """

    def __init__(self, root: str | Path, version: str = CODE_VERSION) -> None:
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ----------------------------------------------------------------

    def key_for(self, spec: Any) -> str:
        """Content key of an arbitrary spec object."""
        return content_key(spec, version=self.version)

    def key_for_call(self, tag: str, value: Any) -> str:
        """Key for a named-function call (used by generic sweeps)."""
        return content_key({"call": tag, "value": value}, version=self.version)

    # -- storage -------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    def get(self, key: str) -> Any | None:
        """Cached value for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Torn/corrupt/incompatible entry: drop it and miss.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic replace)."""
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    # -- maintenance ---------------------------------------------------------

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob(f"*{_SUFFIX}")

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def size_bytes(self) -> int:
        """Total bytes held by cache entries."""
        return sum(p.stat().st_size for p in self._entries())

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        """Session counters plus on-disk entry count."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
