"""Dependency-free text plots for examples and CLI output.

Nothing here affects experiments — these are presentation helpers so the
examples can show time series and comparisons without matplotlib.
"""

from __future__ import annotations

from typing import Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a series (empty input -> empty string)."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must be parallel")
    if not labels:
        return ""
    peak = max(max(values), 0.0)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar_len = 0 if peak == 0 else int(round(max(value, 0.0) / peak * width))
        bar = "█" * bar_len
        lines.append(f"{label.ljust(label_width)}  {bar} {value:g}{unit}")
    return "\n".join(lines)


def line_plot(
    points: Sequence[tuple[float, float]],
    width: int = 64,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Scatter/line plot on a character grid."""
    points = list(points)
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "•"
    lines = []
    for i, row in enumerate(grid):
        y_val = y_hi - i * y_span / (height - 1) if height > 1 else y_hi
        lines.append(f"{y_val:10.3g} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    footer = f"{x_lo:<10.4g}{' ' * max(width - 18, 1)}{x_hi:>8.4g}"
    lines.append(" " * 12 + footer)
    if x_label or y_label:
        lines.append(f"  x: {x_label}   y: {y_label}")
    return "\n".join(lines)
