"""One-dimensional parameter sweeps over simulation runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


@dataclass
class SweepPoint:
    """One point of a sweep: the parameter value and arbitrary metrics."""

    value: float
    metrics: dict[str, float]


def sweep(
    values: Sequence[T],
    run: Callable[[T], dict[str, float]],
    value_of: Callable[[T], float] = float,  # type: ignore[assignment]
) -> list[SweepPoint]:
    """Run ``run(v)`` for each value, collecting metric dictionaries.

    Args:
        values: parameter values, in presentation order.
        run: executes one configuration, returns named metrics.
        value_of: numeric projection of the value for the x-axis.
    """
    points: list[SweepPoint] = []
    for v in values:
        metrics = run(v)
        points.append(SweepPoint(value=value_of(v), metrics=metrics))
    return points


def series(points: Sequence[SweepPoint], metric: str) -> list[tuple[float, float]]:
    """Extract one (x, metric) series from sweep points."""
    return [(p.value, p.metrics[metric]) for p in points]
