"""One-dimensional parameter sweeps over simulation runs.

Each sweep point is independent, so :func:`sweep` can fan points out
over worker processes (``jobs=``) and memoize per-point metrics on disk
(``cache=``) — see :mod:`repro.analysis.parallel` for the execution
machinery and the determinism guarantee (results are identical for any
job count). Defaults stay sequential and uncached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.analysis.cache import ResultCache

T = TypeVar("T")


@dataclass
class SweepPoint:
    """One point of a sweep: the parameter value and arbitrary metrics."""

    value: float
    metrics: dict[str, float]


def _call_tag(run: Callable, cache_tag: str | None) -> str:
    """Stable identity of the per-point callable, for cache keys."""
    if cache_tag is not None:
        return cache_tag
    module = getattr(run, "__module__", None)
    qualname = getattr(run, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(
            "cannot derive a stable cache key for this callable (lambda, "
            "closure or partial); pass cache_tag= explicitly"
        )
    return f"{module}.{qualname}"


def sweep(
    values: Sequence[T],
    run: Callable[[T], dict[str, float]],
    value_of: Callable[[T], float] = float,  # type: ignore[assignment]
    jobs: int = 1,
    cache: ResultCache | None = None,
    cache_tag: str | None = None,
) -> list[SweepPoint]:
    """Run ``run(v)`` for each value, collecting metric dictionaries.

    Args:
        values: parameter values, in presentation order.
        run: executes one configuration, returns named metrics. Must be
            picklable (a module-level function) when ``jobs > 1``.
        value_of: numeric projection of the value for the x-axis.
        jobs: worker processes to fan the points over (1 = in-process).
        cache: optional on-disk cache; per-point metrics are memoized
            under ``(callable identity, value)`` plus the code version.
        cache_tag: explicit cache identity for ``run`` when it has no
            stable qualified name (lambdas, closures, partials).
    """
    n = len(values)
    metrics_by_index: list[dict[str, float] | None] = [None] * n
    keys: dict[int, str] = {}
    pending = list(range(n))
    if cache is not None:
        tag = _call_tag(run, cache_tag)
        pending = []
        for i, v in enumerate(values):
            key = cache.key_for_call(tag, v)
            keys[i] = key
            hit = cache.get(key)
            if hit is not None:
                metrics_by_index[i] = hit
            else:
                pending.append(i)
    if pending:
        from repro.analysis.parallel import map_parallel

        fresh = map_parallel(run, [values[i] for i in pending], jobs=jobs)
        for i, metrics in zip(pending, fresh):
            metrics_by_index[i] = metrics
            if cache is not None:
                cache.put(keys[i], metrics)
    return [
        SweepPoint(value=value_of(v), metrics=metrics_by_index[i])  # type: ignore[arg-type]
        for i, v in enumerate(values)
    ]


def series(points: Sequence[SweepPoint], metric: str) -> list[tuple[float, float]]:
    """Extract one (x, metric) series from sweep points."""
    return [(p.value, p.metrics[metric]) for p in points]
