"""Energy arithmetic helpers."""

from __future__ import annotations

JOULES_PER_KWH = 3.6e6


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / JOULES_PER_KWH


def savings_fraction(energy: float, baseline: float) -> float:
    """Fractional savings of ``energy`` vs ``baseline`` (1 - E/E0).

    Returns 0.0 for a non-positive baseline (no meaningful comparison).
    """
    if baseline <= 0:
        return 0.0
    return 1.0 - energy / baseline


def mean_watts(joules: float, seconds: float) -> float:
    """Average power over an interval (0 for an empty interval)."""
    if seconds <= 0:
        return 0.0
    return joules / seconds
