"""Atomic file replacement for result-bearing writes.

Every artifact a run produces — result JSON, comparison CSVs, bench
reports, fault plans, traces — is either complete or absent, never a
torn half-file a crashed writer leaves behind for a later reader to
mistake for data. The idiom is the standard one (the result cache has
always used it): write to a temp file in the destination directory,
flush, then :func:`os.replace`, which is atomic on POSIX when source
and destination share a filesystem.

:func:`atomic_write` packages the idiom as a context manager so call
sites read like plain ``open(path, "w")``; the RES002 lint rule flags
write-mode ``open`` calls in result-producing packages that bypass it.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


@contextmanager
def atomic_write(
    path: str | Path, *, encoding: str = "utf-8", newline: str | None = None
) -> Iterator[IO[str]]:
    """Open ``path`` for writing such that it is replaced atomically.

    The handle writes a sibling temp file; on clean exit the temp file
    is :func:`os.replace`-d over ``path``, on any exception it is
    removed and ``path`` is untouched. Yields a text-mode handle
    (``newline=""`` for csv writers, as with builtin ``open``).
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding, newline=newline) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
