"""Experiment harness and reporting.

* :mod:`repro.analysis.experiments` -- run policy comparisons the way
  the paper does: Base first (defines the goal), then every scheme on
  the identical trace and array.
* :mod:`repro.analysis.energy` -- unit helpers and savings arithmetic.
* :mod:`repro.analysis.report` -- plain-text tables/series formatting
  shared by the benchmarks and examples.
* :mod:`repro.analysis.sweeps` -- one-dimensional parameter sweeps.
"""

from repro.analysis.energy import joules_to_kwh, savings_fraction
from repro.analysis.experiments import (
    ComparisonResult,
    default_array_config,
    derive_goal,
    run_comparison,
    run_single,
    standard_policies,
)
from repro.analysis.report import format_series, format_table
from repro.analysis.sweeps import SweepPoint, sweep

__all__ = [
    "joules_to_kwh",
    "savings_fraction",
    "ComparisonResult",
    "default_array_config",
    "derive_goal",
    "run_comparison",
    "run_single",
    "standard_policies",
    "format_table",
    "format_series",
    "SweepPoint",
    "sweep",
]
