"""Experiment harness and reporting.

* :mod:`repro.analysis.experiments` -- run policy comparisons the way
  the paper does: Base first (defines the goal), then every scheme on
  the identical trace and array.
* :mod:`repro.analysis.parallel` -- picklable run specs, process fan-out
  and the determinism guarantee behind ``jobs=``.
* :mod:`repro.analysis.cache` -- on-disk memoization of run results
  keyed by spec content plus a code-version tag.
* :mod:`repro.analysis.energy` -- unit helpers and savings arithmetic.
* :mod:`repro.analysis.report` -- plain-text tables/series formatting
  shared by the benchmarks and examples.
* :mod:`repro.analysis.sweeps` -- one-dimensional parameter sweeps.
"""

from repro.analysis.cache import CODE_VERSION, ResultCache, content_key
from repro.analysis.energy import joules_to_kwh, savings_fraction
from repro.analysis.experiments import (
    ComparisonResult,
    default_array_config,
    derive_goal,
    run_comparison,
    run_single,
    standard_policies,
)
from repro.analysis.parallel import (
    PolicySpec,
    RunSpec,
    TraceSpec,
    execute,
    execute_one,
    run_spec,
)
from repro.analysis.report import format_count, format_duration, format_series, format_table
from repro.analysis.sweeps import SweepPoint, sweep

__all__ = [
    "joules_to_kwh",
    "savings_fraction",
    "ComparisonResult",
    "default_array_config",
    "derive_goal",
    "run_comparison",
    "run_single",
    "standard_policies",
    "CODE_VERSION",
    "ResultCache",
    "content_key",
    "PolicySpec",
    "RunSpec",
    "TraceSpec",
    "execute",
    "execute_one",
    "run_spec",
    "format_table",
    "format_series",
    "format_count",
    "format_duration",
    "SweepPoint",
    "sweep",
]
