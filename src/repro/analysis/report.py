"""Plain-text tables and series for benchmark/example output."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]], title: str | None = None) -> str:
    """Fixed-width text table (monospace-aligned)."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}: {row!r}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str,
    points: Iterable[tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    x_format: str = "{:.3g}",
    y_format: str = "{:.4g}",
) -> str:
    """A figure rendered as a two-column series."""
    rows = [[x_format.format(x), y_format.format(y)] for x, y in points]
    return format_table([x_label, y_label], rows, title=name)


def format_duration(seconds: float) -> str:
    """Human-scaled wall-clock duration (``'740 us'``, ``'1.24 s'``)."""
    if seconds < 0:
        return f"-{format_duration(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def format_count(value: float) -> str:
    """Compact count/rate (``'982'``, ``'45.1k'``, ``'2.30M'``)."""
    if value < 0:
        return f"-{format_count(-value)}"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    if value == int(value):
        return f"{int(value)}"
    return f"{value:.1f}"


def format_kv(title: str, pairs: Iterable[tuple[str, str]]) -> str:
    """Aligned key/value block (used for parameter tables)."""
    pairs = list(pairs)
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"  {key.ljust(width)}  {value}")
    return "\n".join(lines)
