"""The experiment harness: run schemes the way the paper does.

The paper's methodology, reproduced by :func:`run_comparison`:

1. run **Base** (all disks full speed) on the trace — its energy is the
   100% reference and its average response time defines the goal
   (``goal = slack x base mean response``);
2. run every other scheme on the *identical* trace and array
   configuration with that goal;
3. report, per scheme, energy savings vs Base and mean response time vs
   the goal.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field, replace


from repro.analysis.cache import ResultCache
from repro.analysis.energy import savings_fraction
from repro.analysis.report import format_count, format_duration
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.disks.array import ArrayConfig
from repro.disks.specs import ultrastar_36z15
from repro.faults.plan import FaultPlan
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.base import PowerPolicy
from repro.policies.drpm import DrpmConfig, DrpmPolicy
from repro.policies.maid import MaidConfig, MaidPolicy, maid_array_config
from repro.policies.pdc import PdcConfig, PdcPolicy
from repro.policies.tpm import TpmConfig, TpmPolicy
from repro.sim.runner import ArraySimulation, SimulationResult
from repro.traces.model import Trace
from repro.traces.tracestats import per_extent_rates


def default_array_config(
    num_disks: int = 24,
    num_extents: int | None = None,
    num_speed_levels: int = 5,
    seed: int = 42,
    raid5: bool = False,
    capacity_multiple: float = 4.0,
) -> ArrayConfig:
    """The paper-scale array: 24 multi-speed Ultrastar disks.

    ``capacity_multiple`` sizes each disk's slot capacity relative to the
    even extent share. Real disks hold far more than their share of the
    active working set (36 GB disks vs a few GB of hot data), and
    concentration schemes (PDC, MAID destage targets) rely on that
    headroom; 4x keeps capacity from binding while keeping seek spans
    realistic.
    """
    if num_extents is None:
        num_extents = num_disks * 100
    even_share = -(-num_extents // num_disks)
    return ArrayConfig(
        num_disks=num_disks,
        spec=ultrastar_36z15(num_speed_levels),
        num_extents=num_extents,
        seed=seed,
        raid5=raid5,
        slots_override=int(even_share * capacity_multiple),
    )


def run_single(
    trace: Trace,
    array_config: ArrayConfig,
    policy: PowerPolicy,
    goal_s: float | None = None,
    window_s: float | None = None,
    observe: bool = False,
    faults: "FaultPlan | None" = None,
    engine: str = "scalar",
) -> SimulationResult:
    """One scheme on one trace (fresh simulation per call).

    ``observe=True`` collects the structured event trace
    (:mod:`repro.obs`) into ``result.events``; metrics are identical
    either way. ``faults`` injects a declarative fault plan
    (:mod:`repro.faults`); None or an empty plan changes nothing.
    ``engine`` picks the simulation core (``"scalar"``/``"batch"``);
    results are byte-identical either way.
    """
    from repro.analysis.parallel import simulation_class

    sim = simulation_class(engine)(
        trace=trace,
        array_config=array_config,
        policy=policy,
        goal_s=goal_s,
        window_s=window_s,
        observe=observe,
        faults=faults,
    )
    return sim.run()


def derive_goal(
    trace: Trace,
    array_config: ArrayConfig,
    slack: float = 1.5,
    observe: bool = False,
    faults: "FaultPlan | None" = None,
    engine: str = "scalar",
) -> tuple[float, SimulationResult]:
    """Run Base and derive the response-time goal from its mean.

    Returns ``(goal_s, base_result)``; ``slack`` is the paper's
    "response-time limit multiplier" (how much degradation the operator
    tolerates in exchange for energy savings). When ``faults`` is set,
    Base runs under the same fault plan as the schemes it anchors, so
    the goal reflects degraded-mode service times.
    """
    if slack < 1.0:
        raise ValueError(f"slack below 1.0 is unmeetable by definition, got {slack!r}")
    base = run_single(trace, array_config, AlwaysOnPolicy(), observe=observe,
                      faults=faults, engine=engine)
    if base.mean_response_s <= 0:
        raise ValueError("Base run produced no requests; cannot derive a goal")
    return slack * base.mean_response_s, base


def standard_policies(
    trace: Trace,
    array_config: ArrayConfig,
    hibernator_config: HibernatorConfig | None = None,
    prime_hibernator: bool = True,
    tpm_config: "TpmConfig | None" = None,
    drpm_config: "DrpmConfig | None" = None,
    pdc_config: "PdcConfig | None" = None,
    maid_config: MaidConfig | None = None,
) -> list[tuple[PowerPolicy, ArrayConfig]]:
    """The paper's comparison set (minus Base, which derives the goal).

    Returns (policy, array_config) pairs because MAID needs its cache
    disks excluded from initial placement. PDC's re-ranking period
    defaults to Hibernator's epoch so the adaptive schemes act on the
    same timescale.
    """
    hib_cfg = hibernator_config or HibernatorConfig()
    if prime_hibernator and hib_cfg.prime_rates is None:
        hib_cfg = replace(hib_cfg, prime_rates=per_extent_rates(trace))
    if pdc_config is None:
        pdc_config = PdcConfig(period_s=hib_cfg.epoch_seconds)
    maid_cfg = maid_config or MaidConfig()
    return [
        (TpmPolicy(tpm_config), array_config),
        (DrpmPolicy(drpm_config), array_config),
        (PdcPolicy(pdc_config), array_config),
        (MaidPolicy(maid_cfg), maid_array_config(array_config, maid_cfg.num_cache_disks)),
        (HibernatorPolicy(hib_cfg), array_config),
    ]


@dataclass
class ComparisonResult:
    """Results of one multi-scheme comparison."""

    goal_s: float
    slack: float
    results: dict[str, SimulationResult] = field(default_factory=dict)

    @property
    def base(self) -> SimulationResult:
        return self.results["Base"]

    def savings(self, name: str) -> float:
        """Fractional energy savings of scheme ``name`` vs Base."""
        return savings_fraction(self.results[name].energy_joules, self.base.energy_joules)

    def all_events(self) -> list:
        """Every scheme's trace events, concatenated in result order.

        Each observed run opens with its own ``run_start`` event, so the
        concatenation splits back apart with
        :func:`repro.obs.tracelog.split_runs`. Empty when the comparison
        ran without ``observe=True``.
        """
        events: list = []
        for result in self.results.values():
            events.extend(result.events)
        return events

    def rows(self) -> list[list[str]]:
        """Table rows: scheme, energy, savings, mean RT, RT vs goal."""
        out: list[list[str]] = []
        for name, result in self.results.items():
            out.append(
                [
                    name,
                    f"{result.energy_joules / 1e3:.1f} kJ",
                    f"{100.0 * self.savings(name):+.1f} %",
                    f"{result.mean_response_s * 1e3:.2f} ms",
                    f"{result.mean_response_s / self.goal_s:.2f}x goal",
                    "yes" if result.mean_response_s <= self.goal_s else "NO",
                ]
            )
        return out

    HEADERS: typing.ClassVar[list[str]] = [
        "scheme",
        "energy",
        "savings",
        "mean RT",
        "RT/goal",
        "meets goal",
    ]

    def runtime_rows(self) -> list[list[str]]:
        """Run-cost table: wall clock, events executed, events/sec.

        Cached results report the wall clock of the run that produced
        them, so a fully-cached comparison shows near-zero *rerun* cost
        only in the harness timing, not here.
        """
        out: list[list[str]] = []
        for name, result in self.results.items():
            wall = result.extras.get("runtime_wall_s", 0.0)
            events = result.extras.get("runtime_events", 0.0)
            rate = result.extras.get("runtime_events_per_s", 0.0)
            out.append([name, format_duration(wall), format_count(events), format_count(rate)])
        return out

    RUNTIME_HEADERS: typing.ClassVar[list[str]] = [
        "scheme",
        "wall clock",
        "events",
        "events/s",
    ]


def run_comparison(
    trace: Trace,
    array_config: ArrayConfig,
    slack: float = 1.5,
    schemes: list[tuple[PowerPolicy, ArrayConfig]] | None = None,
    hibernator_config: HibernatorConfig | None = None,
    window_s: float | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    observe: bool = False,
    faults: "FaultPlan | None" = None,
    engine: str = "scalar",
) -> ComparisonResult:
    """Full paper-style comparison on one trace.

    Args:
        jobs: worker processes for the scheme runs. The Base run always
            happens first (it defines the goal); the schemes then fan
            out. Metrics are identical for every ``jobs`` value — each
            run is a pure function of its spec — so the default of 1
            changes nothing but wall-clock time.
        cache: optional on-disk result cache; hits skip simulation
            entirely and misses are stored for next time.
        observe: collect the structured event trace (:mod:`repro.obs`)
            for every run, Base included, into each result's ``events``.
        faults: fault plan applied to *every* run, Base included, so
            all schemes face the identical failure scenario.
    """
    if jobs == 1 and cache is None:
        goal_s, base_result = derive_goal(trace, array_config, slack, observe=observe,
                                          faults=faults, engine=engine)
        comparison = ComparisonResult(goal_s=goal_s, slack=slack)
        comparison.results["Base"] = base_result
        if schemes is None:
            schemes = standard_policies(trace, array_config, hibernator_config)
        for policy, config in schemes:
            result = run_single(trace, config, policy, goal_s=goal_s,
                                window_s=window_s, observe=observe, faults=faults,
                                engine=engine)
            comparison.results[result.policy_name] = result
        return comparison

    from repro.analysis.parallel import PolicySpec, RunSpec, TraceSpec, execute, execute_one

    if slack < 1.0:
        raise ValueError(f"slack below 1.0 is unmeetable by definition, got {slack!r}")
    trace_spec = TraceSpec.from_trace(trace)
    base_result = execute_one(
        RunSpec(trace=trace_spec, array=array_config, policy=PolicySpec.named("base"),
                observe=observe, faults=faults, engine=engine),
        cache=cache,
    )
    if base_result.mean_response_s <= 0:
        raise ValueError("Base run produced no requests; cannot derive a goal")
    goal_s = slack * base_result.mean_response_s
    comparison = ComparisonResult(goal_s=goal_s, slack=slack)
    comparison.results["Base"] = base_result
    if schemes is None:
        schemes = standard_policies(trace, array_config, hibernator_config)
    specs = [
        RunSpec(
            trace=trace_spec,
            array=config,
            policy=PolicySpec.from_instance(policy),
            goal_s=goal_s,
            window_s=window_s,
            observe=observe,
            faults=faults,
            engine=engine,
        )
        for policy, config in schemes
    ]
    for result in execute(specs, jobs=jobs, cache=cache):
        comparison.results[result.policy_name] = result
    return comparison
