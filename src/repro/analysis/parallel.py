"""Parallel, cacheable execution of independent simulation runs.

Every figure in the reproduction is built from independent
:class:`~repro.sim.runner.ArraySimulation` runs, and each run is a pure
function of its inputs (trace, array config, policy, goal). This module
exploits that purity twice:

* **fan-out** — :func:`execute` ships picklable :class:`RunSpec`\\ s to a
  ``ProcessPoolExecutor`` and reconstructs the simulation inside each
  worker, so a scheme comparison or parameter sweep uses every core;
* **memoization** — the same specs are content-hashable
  (:mod:`repro.analysis.cache`), so repeated runs of an identical
  (trace, array, policy, goal) configuration are served from disk.

Determinism guarantee: a simulation's outcome depends only on its spec
(seeded RNGs, deterministic event ordering), never on which process runs
it or on sibling runs. ``execute`` additionally returns results in spec
order. Metrics are therefore identical for any ``jobs=`` value; only
wall-clock instrumentation (``runtime_*`` extras) varies.

A spec describes its trace either by *recipe* (generator name + config,
cheap to pickle, regenerated in the worker) or *inline* (a materialized
:class:`~repro.traces.model.Trace`, content-hashed for caching). Policies
are likewise either *named* (factory registry + params) or *instances*
(pickled wholesale — policies hold no live state before ``attach``).
"""

from __future__ import annotations

import pickle
import typing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.analysis.cache import ResultCache
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.disks.array import ArrayConfig
from repro.faults.plan import FaultPlan
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.base import PowerPolicy
from repro.policies.drpm import DrpmConfig, DrpmPolicy
from repro.policies.maid import MaidConfig, MaidPolicy, maid_array_config
from repro.policies.oracle import OraclePolicy
from repro.policies.pdc import PdcConfig, PdcPolicy
from repro.policies.tpm import TpmConfig, TpmPolicy
from repro.traces.cello import CelloConfig, generate_cello
from repro.traces.model import Trace
from repro.traces.oltp import OltpConfig, generate_oltp
from repro.traces.synthetic import (
    FlashCrowdConfig,
    MultiTenantConfig,
    SyntheticConfig,
    WriteBurstConfig,
    generate_flash_crowd,
    generate_multi_tenant,
    generate_synthetic,
    generate_write_burst,
)
from repro.traces.tracestats import per_extent_rates

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runner import SimulationResult

# -- trace specs -------------------------------------------------------------

#: Generator registry: name -> (config type, generator function).
TRACE_GENERATORS: dict[str, tuple[type, Callable[..., Trace]]] = {
    "oltp": (OltpConfig, generate_oltp),
    "cello": (CelloConfig, generate_cello),
    "synthetic": (SyntheticConfig, generate_synthetic),
    "flashcrowd": (FlashCrowdConfig, generate_flash_crowd),
    "multitenant": (MultiTenantConfig, generate_multi_tenant),
    "writeburst": (WriteBurstConfig, generate_write_burst),
}


@dataclass(eq=False)
class TraceSpec:
    """Picklable description of a workload trace.

    Exactly one source is set:

    * ``generator``/``config`` — regenerate from a registered generator
      inside the worker (cheapest to ship, key is the recipe);
    * ``path`` — load a trace file inside the worker. With ``format``
      set, the file goes through :func:`repro.traces.ingest.import_trace`
      (``options`` is the :class:`~repro.traces.ingest.IngestOptions`);
      otherwise it is a native :func:`~repro.traces.io.load_trace` file.
      Either way the key is the *content hash* of the file (plus format
      and options), never the path — moving or renaming the file keeps
      cached results valid, editing it invalidates them;
    * ``trace`` — carry a materialized trace (key is its content hash).
    """

    generator: str | None = None
    config: Any = None
    path: str | None = None
    trace: Trace | None = None
    format: str | None = None
    options: Any = None

    @classmethod
    def from_generator(cls, generator: str, config: Any) -> "TraceSpec":
        if generator not in TRACE_GENERATORS:
            raise ValueError(
                f"unknown trace generator {generator!r}; known: {sorted(TRACE_GENERATORS)}"
            )
        expected = TRACE_GENERATORS[generator][0]
        if not isinstance(config, expected):
            raise TypeError(f"generator {generator!r} expects {expected.__name__}, "
                            f"got {type(config).__name__}")
        return cls(generator=generator, config=config)

    @classmethod
    def from_file(cls, path: str) -> "TraceSpec":
        return cls(path=str(path))

    @classmethod
    def from_import(cls, path: str, format: str, options: Any = None) -> "TraceSpec":
        """Spec for a foreign-format trace file (see :mod:`repro.traces.ingest`)."""
        from repro.traces.ingest import INGEST_FORMATS

        if format not in INGEST_FORMATS:
            raise ValueError(
                f"unknown ingest format {format!r}; known: {sorted(INGEST_FORMATS)}"
            )
        return cls(path=str(path), format=format, options=options)

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceSpec":
        return cls(trace=trace)

    def build(self) -> Trace:
        """Materialize the trace (called inside the worker)."""
        if self.trace is not None:
            return self.trace
        if self.path is not None:
            if self.format is not None:
                from repro.traces.ingest import import_trace

                return import_trace(self.path, self.format, self.options).trace
            from repro.traces.io import load_trace

            return load_trace(self.path)
        if self.generator is None:
            raise ValueError("empty TraceSpec: set generator, path or trace")
        _, generate = TRACE_GENERATORS[self.generator]
        return generate(self.config)

    def _source_sha256(self) -> str:
        """Content hash of ``path``, memoized per spec instance (file
        contents are assumed stable for the spec's lifetime)."""
        memo = self.__dict__.get("_sha256_memo")
        if memo is None:
            from repro.traces.ingest import file_sha256

            memo = file_sha256(self.path)  # type: ignore[arg-type]
            self.__dict__["_sha256_memo"] = memo
        return memo

    def cache_key(self) -> dict[str, Any]:
        if self.trace is not None:
            t = self.trace
            return {
                "kind": "inline",
                "name": t.name,
                "num_extents": t.num_extents,
                "columns": [t.times, t.kinds, t.extents, t.offsets, t.sizes],
            }
        if self.path is not None:
            # Keyed by content, not path: the key must change iff the
            # source file's bytes change.
            return {
                "kind": "file",
                "sha256": self._source_sha256(),
                "format": self.format,
                "options": self.options,
            }
        return {"kind": "generator", "generator": self.generator, "config": self.config}


# -- policy specs ------------------------------------------------------------


def _make_hibernator(trace: Trace, **params: Any) -> PowerPolicy:
    prime = params.pop("prime", True)
    config = params.pop("config", None) or HibernatorConfig(**params)
    if prime and config.prime_rates is None:
        from dataclasses import replace

        config = replace(config, prime_rates=per_extent_rates(trace))
    return HibernatorPolicy(config)


#: Named factories: name -> callable(trace, **params) -> PowerPolicy.
#: ``trace`` lets trace-dependent setup (Hibernator heat priming) happen
#: inside the worker instead of being shipped as data.
POLICY_FACTORIES: dict[str, Callable[..., PowerPolicy]] = {
    "base": lambda trace, **kw: AlwaysOnPolicy(),
    "tpm": lambda trace, **kw: TpmPolicy(kw.pop("config", None) or TpmConfig(**kw)),
    "drpm": lambda trace, **kw: DrpmPolicy(kw.pop("config", None) or DrpmConfig(**kw)),
    "pdc": lambda trace, **kw: PdcPolicy(kw.pop("config", None) or PdcConfig(**kw)),
    "maid": lambda trace, **kw: MaidPolicy(kw.pop("config", None) or MaidConfig(**kw)),
    "oracle": lambda trace, **kw: OraclePolicy(**kw),
    "hibernator": _make_hibernator,
}


@dataclass(eq=False)
class PolicySpec:
    """Picklable description of a power-management policy.

    Either ``name``/``params`` resolve through :data:`POLICY_FACTORIES`
    (fully recipe-keyed), or ``instance`` carries a constructed policy
    (keyed by its name, describe() string and pickled content — policies
    are inert before ``attach``, so the pickle is stable).
    """

    name: str | None = None
    params: dict[str, Any] = field(default_factory=dict)
    instance: PowerPolicy | None = None

    @classmethod
    def named(cls, name: str, **params: Any) -> "PolicySpec":
        if name not in POLICY_FACTORIES:
            raise ValueError(f"unknown policy {name!r}; known: {sorted(POLICY_FACTORIES)}")
        return cls(name=name, params=params)

    @classmethod
    def from_instance(cls, policy: PowerPolicy) -> "PolicySpec":
        return cls(instance=policy)

    def build(self, trace: Trace, array_config: ArrayConfig) -> tuple[PowerPolicy, ArrayConfig]:
        """Policy instance plus the (possibly adjusted) array config.

        MAID built from a named spec excludes its cache disks from
        initial placement, mirroring
        :func:`repro.policies.maid.maid_array_config`; instance specs
        assume the caller already adjusted the config.
        """
        if self.instance is not None:
            return self.instance, array_config
        if self.name is None:
            raise ValueError("empty PolicySpec: set name or instance")
        params = dict(self.params)
        if self.name == "maid":
            maid_cfg = params.get("config") or MaidConfig(**params)
            return MaidPolicy(maid_cfg), maid_array_config(array_config, maid_cfg.num_cache_disks)
        return POLICY_FACTORIES[self.name](trace, **params), array_config

    def cache_key(self) -> dict[str, Any]:
        if self.instance is not None:
            blob = pickle.dumps(self.instance, protocol=pickle.HIGHEST_PROTOCOL)
            return {
                "kind": "instance",
                "name": self.instance.name,
                "describe": self.instance.describe(),
                "pickle": blob,
            }
        return {"kind": "named", "name": self.name, "params": self.params}


# -- run specs ---------------------------------------------------------------


@dataclass(eq=False)
class RunSpec:
    """Everything one simulation run needs, in picklable form.

    ``observe`` turns on the structured event trace (:mod:`repro.obs`);
    the events come back inside the result, so parallel workers and the
    cache carry them like any other metric. It is part of the cache key:
    an observed and an unobserved run of the same experiment are distinct
    entries (their metrics are identical, their payloads are not).

    ``faults`` carries the declarative fault plan (frozen dataclasses,
    picklable, canonicalized into the cache key field by field). None
    and an empty plan both mean a fault-free run.

    ``engine`` selects the simulation core: ``"scalar"`` (the event-loop
    :class:`~repro.sim.runner.ArraySimulation`) or ``"batch"``
    (:class:`~repro.sim.batch.BatchArraySimulation`, epoch-batched with
    byte-identical results). It is part of the cache key on purpose —
    results are identical by contract, but a cached entry must always be
    attributable to the backend that produced it.
    """

    trace: TraceSpec
    array: ArrayConfig
    policy: PolicySpec
    goal_s: float | None = None
    window_s: float | None = None
    keep_latency_samples: bool = True
    observe: bool = False
    faults: FaultPlan | None = None
    engine: str = "scalar"


#: Valid :attr:`RunSpec.engine` values.
ENGINE_NAMES: tuple[str, ...] = ("scalar", "batch")


def simulation_class(engine: str) -> type:
    """Resolve an engine name to its simulation class."""
    from repro.sim.runner import ArraySimulation

    if engine == "scalar":
        return ArraySimulation
    if engine == "batch":
        from repro.sim.batch import BatchArraySimulation

        return BatchArraySimulation
    raise ValueError(f"unknown engine {engine!r}; known: {list(ENGINE_NAMES)}")


def run_spec(spec: RunSpec) -> "SimulationResult":
    """Execute one spec from scratch (the worker entry point)."""
    trace = spec.trace.build()
    policy, array_config = spec.policy.build(trace, spec.array)
    sim = simulation_class(spec.engine)(
        trace=trace,
        array_config=array_config,
        policy=policy,
        goal_s=spec.goal_s,
        window_s=spec.window_s,
        keep_latency_samples=spec.keep_latency_samples,
        observe=spec.observe,
        faults=spec.faults,
    )
    return sim.run()


def execute(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> "list[SimulationResult]":
    """Run every spec, in parallel when ``jobs > 1``, consulting ``cache``.

    Results come back in spec order regardless of completion order, and
    are metric-identical for any ``jobs`` value (see the module
    docstring's determinism guarantee). Cached entries are returned
    without simulating; fresh results are stored before returning.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    results: list[Any] = [None] * len(specs)
    pending: list[int] = []
    keys: dict[int, str] = {}
    for i, spec in enumerate(specs):
        if cache is not None:
            key = cache.key_for(spec)
            keys[i] = key
            hit = cache.get(key)
            if hit is not None:
                results[i] = hit
                continue
        pending.append(i)
    if pending:
        if jobs == 1 or len(pending) == 1:
            fresh = [run_spec(specs[i]) for i in pending]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                fresh = list(pool.map(run_spec, [specs[i] for i in pending]))
        for i, result in zip(pending, fresh):
            results[i] = result
            if cache is not None:
                cache.put(keys[i], result)
    return results


def execute_one(spec: RunSpec, cache: ResultCache | None = None) -> "SimulationResult":
    """Single-spec convenience wrapper around :func:`execute`."""
    return execute([spec], jobs=1, cache=cache)[0]


def map_parallel(
    fn: Callable[[Any], Any],
    values: Sequence[Any],
    jobs: int = 1,
) -> list[Any]:
    """Order-preserving map over ``values`` with optional process fan-out.

    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` of one) when ``jobs > 1``. Used by
    :func:`repro.analysis.sweeps.sweep` for arbitrary per-point callables
    that are not expressible as :class:`RunSpec`\\ s.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    if jobs == 1 or len(values) <= 1:
        return [fn(v) for v in values]
    with ProcessPoolExecutor(max_workers=min(jobs, len(values))) as pool:
        return list(pool.map(fn, values))


def comparison_specs(
    trace_spec: TraceSpec,
    array_config: ArrayConfig,
    goal_s: float,
    hibernator_config: HibernatorConfig | None = None,
    window_s: float | None = None,
) -> list[RunSpec]:
    """Named-spec version of the paper's standard comparison set.

    Mirrors :func:`repro.analysis.experiments.standard_policies` but
    stays in recipe form end to end, so the specs are cheap to ship and
    cache-keyed by construction parameters rather than trace content.
    """
    hib_params: dict[str, Any] = {"config": hibernator_config} if hibernator_config else {}
    pdc_period = (hibernator_config or HibernatorConfig()).epoch_seconds
    names: list[tuple[str, dict[str, Any]]] = [
        ("tpm", {}),
        ("drpm", {}),
        ("pdc", {"period_s": pdc_period}),
        ("maid", {}),
        ("hibernator", hib_params),
    ]
    return [
        RunSpec(
            trace=trace_spec,
            array=array_config,
            policy=PolicySpec.named(name, **params),
            goal_s=goal_s,
            window_s=window_s,
        )
        for name, params in names
    ]
