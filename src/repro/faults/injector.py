"""Drives a :class:`FaultPlan` through the simulation engine.

The injector is built by :class:`~repro.sim.runner.ArraySimulation` when
a run carries a non-empty plan. Installation does three things:

* schedules one engine event per :class:`DiskFailure`, which fails the
  disk, emits ``disk_failed``, starts (or extends) the rebuild, and
  notifies the policy via :meth:`PowerPolicy.on_disk_failed`;
* hangs a :class:`DiskFaultState` off every disk targeted by a transient
  or slow-disk window, giving the disk's service loop its error draw,
  its latency inflation factor and its retry budget;
* wires the rebuild's completion back to
  :meth:`PowerPolicy.on_rebuild_complete`.

An *empty* plan installs nothing — no hooks, no RNGs, no events — so a
run with ``faults=None`` and a run with ``faults=FaultPlan()`` are
byte-identical to each other and to a fault-free run.

Per-disk transient draws come from generators spawned off the plan's
seed, so fault-injected runs stay deterministic and ``jobs=2`` output
matches ``jobs=1`` byte for byte.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.disks.array import DiskArray
from repro.disks.rebuild import RebuildManager
from repro.disks.scheduling import RetryPolicy
from repro.faults.plan import FaultPlan, SlowDiskFault, TransientFault
from repro.obs.events import DiskFailed
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.policies.base import PowerPolicy


class DiskFaultState:
    """Per-disk fault context consulted from the disk's service loop.

    Kept deliberately tiny: the disk calls :meth:`slow_factor` once per
    service start and :meth:`should_error` once per service completion,
    and both are cheap window scans. The RNG is only drawn inside an
    active transient window, so service order (and therefore results)
    outside the windows is untouched.
    """

    __slots__ = ("retry", "_transients", "_slows", "_rng")

    def __init__(
        self,
        retry: RetryPolicy,
        transients: tuple[TransientFault, ...],
        slows: tuple[SlowDiskFault, ...],
        rng: np.random.Generator,
    ) -> None:
        self.retry = retry
        self._transients = transients
        self._slows = slows
        self._rng = rng

    def should_error(self, now: float) -> bool:
        """Draw whether the service attempt completing at ``now`` errors."""
        probability = 0.0
        for window in self._transients:
            if window.start_s <= now < window.end_s:
                # Overlapping windows do not compound; the worst active
                # window wins.
                probability = max(probability, window.probability)
        if probability <= 0.0:
            return False
        return bool(self._rng.random() < probability)

    def slow_factor(self, now: float) -> float:
        """Service-time multiplier in effect at ``now`` (1.0 = healthy)."""
        factor = 1.0
        for window in self._slows:
            if window.start_s <= now < window.end_s:
                factor = max(factor, window.factor)
        return factor

    def extend(
        self,
        transients: tuple[TransientFault, ...],
        slows: tuple[SlowDiskFault, ...],
    ) -> None:
        """Append windows from a runtime-injected plan.

        The existing RNG keeps drawing — draws already made are history,
        and new windows join the same per-disk stream, so a given
        command sequence replays deterministically.
        """
        self._transients += transients
        self._slows += slows


class FaultInjector:
    """Schedules a plan's faults and coordinates the array's reaction."""

    def __init__(
        self,
        engine: Engine,
        array: DiskArray,
        plan: FaultPlan,
        policy: "PowerPolicy | None" = None,
    ) -> None:
        self.engine = engine
        self.array = array
        self.plan = plan
        self.policy = policy
        #: Created lazily on the first injected failure (plan.rebuild).
        self.rebuild_manager: RebuildManager | None = None
        self.failures_injected = 0
        self._installed = False

    def install(self) -> None:
        """Attach fault state and schedule the plan's failure events.

        Call once, before the run starts. A no-op for an empty plan.
        """
        if self._installed:
            raise RuntimeError("FaultInjector.install() called twice")
        self._installed = True
        plan = self.plan
        if plan.empty:
            return
        if plan.transient_faults or plan.slow_disk_faults:
            child_seeds = np.random.SeedSequence(plan.seed).spawn(self.array.num_disks)
            for i, disk in enumerate(self.array.disks):
                transients = tuple(
                    w for w in plan.transient_faults
                    if w.disks is None or i in w.disks
                )
                slows = tuple(
                    w for w in plan.slow_disk_faults
                    if w.disks is None or i in w.disks
                )
                if transients or slows:
                    disk.fault_state = DiskFaultState(
                        retry=plan.retry,
                        transients=transients,
                        slows=slows,
                        rng=np.random.default_rng(child_seeds[i]),
                    )
        for failure in plan.disk_failures:
            if not 0 <= failure.disk < self.array.num_disks:
                raise ValueError(
                    f"fault plan fails disk {failure.disk}, but the array "
                    f"has {self.array.num_disks} disks"
                )
            self.engine.schedule(failure.time_s, self._fail, failure.disk)

    def add_plan(self, plan: FaultPlan) -> None:
        """Install another plan mid-run (the serve ``inject-fault`` path).

        Times are *absolute* simulated seconds and must not lie in the
        past — the engine clock cannot rewind (use
        :func:`repro.faults.plan.shift_fault_plan` to rebase a relative
        plan). The run's original rebuild/retry knobs stay in force: a
        runtime plan adds faults, it does not renegotiate how the array
        reacts to them. A disk already failed (or failed twice across
        plans) no-ops, same as within one plan's schedule.
        """
        if not self._installed:
            raise RuntimeError("add_plan() before install()")
        if plan.empty:
            return
        now = self.engine.now
        for failure in plan.disk_failures:
            if not 0 <= failure.disk < self.array.num_disks:
                raise ValueError(
                    f"fault plan fails disk {failure.disk}, but the array "
                    f"has {self.array.num_disks} disks"
                )
            if failure.time_s < now:
                raise ValueError(
                    f"disk {failure.disk} failure at t={failure.time_s} is in "
                    f"the past (now={now}); shift the plan forward"
                )
        if plan.transient_faults or plan.slow_disk_faults:
            child_seeds = np.random.SeedSequence(plan.seed).spawn(self.array.num_disks)
            for i, disk in enumerate(self.array.disks):
                transients = tuple(
                    w for w in plan.transient_faults
                    if w.disks is None or i in w.disks
                )
                slows = tuple(
                    w for w in plan.slow_disk_faults
                    if w.disks is None or i in w.disks
                )
                if not (transients or slows):
                    continue
                if disk.fault_state is None:
                    disk.fault_state = DiskFaultState(
                        retry=self.plan.retry,
                        transients=transients,
                        slows=slows,
                        rng=np.random.default_rng(child_seeds[i]),
                    )
                else:
                    disk.fault_state.extend(transients, slows)
        for failure in plan.disk_failures:
            self.engine.schedule(failure.time_s, self._fail, failure.disk)

    def _fail(self, disk: int) -> None:
        if disk in self.array.failed_disks:
            return
        exposed = len(self.array.extent_map.extents_on(disk))
        self.array.fail_disk(disk)
        self.failures_injected += 1
        if self.array.emit is not None:
            self.array.emit(DiskFailed(
                time=self.engine.now, disk=disk, extents_exposed=exposed,
            ))
        if self.plan.rebuild:
            if self.rebuild_manager is None:
                self.rebuild_manager = RebuildManager(
                    self.array, max_inflight=self.plan.rebuild_max_inflight,
                )
                self.rebuild_manager.start(disk, self._rebuild_done)
            else:
                self.rebuild_manager.add_failure(disk)
        if self.policy is not None:
            self.policy.on_disk_failed(disk, rebuild_active=self.plan.rebuild)

    def _rebuild_done(self, _manager: RebuildManager) -> None:
        if self.policy is not None:
            self.policy.on_rebuild_complete()
