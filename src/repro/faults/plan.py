"""Declarative fault plans.

A :class:`FaultPlan` names every fault a run will inject — whole-disk
failures at scheduled times, transient per-op error windows with a
failure probability, and slow-disk windows that inflate service times —
plus the retry budget foreground ops get against transient errors and
whether failures trigger a rebuild.

Plans are frozen dataclasses, so they are picklable (parallel workers
receive them inside :class:`~repro.analysis.parallel.RunSpec`) and the
result cache keys them by content automatically. The JSON mapping used
by ``repro run --faults plan.json`` round-trips through
:func:`fault_plan_to_dict` / :func:`fault_plan_from_dict`; see
``docs/faults.md`` for the schema.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.disks.scheduling import RetryPolicy


def _as_disk_tuple(disks: Any) -> tuple[int, ...] | None:
    if disks is None:
        return None
    return tuple(int(d) for d in disks)


@dataclass(frozen=True)
class DiskFailure:
    """Fail one disk outright at ``time_s`` (it never recovers)."""

    time_s: float
    disk: int

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"DiskFailure.time_s must be >= 0, got {self.time_s}")
        if self.disk < 0:
            raise ValueError(f"DiskFailure.disk must be >= 0, got {self.disk}")


@dataclass(frozen=True)
class TransientFault:
    """A window during which service attempts fail with ``probability``.

    Attributes:
        start_s / end_s: half-open window ``[start_s, end_s)`` in
            simulated seconds.
        probability: chance that one service attempt errors and retries.
        disks: disks the window applies to; None = every disk.
    """

    start_s: float
    end_s: float
    probability: float
    disks: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s < self.start_s:
            raise ValueError(
                f"bad transient window [{self.start_s}, {self.end_s})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class SlowDiskFault:
    """A window during which service times are multiplied by ``factor``.

    Models a sick-but-alive disk (media retries, vibration): latency
    inflates, energy accrues over the longer service, but ops succeed.
    """

    start_s: float
    end_s: float
    factor: float
    disks: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s < self.start_s:
            raise ValueError(f"bad slow-disk window [{self.start_s}, {self.end_s})")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class FaultPlan:
    """Every fault one run will inject, plus how the array reacts.

    Attributes:
        disk_failures: whole-disk failures, any order (the injector
            schedules each at its own time).
        transient_faults: per-op error windows.
        slow_disk_faults: latency-inflation windows.
        retry: retry/backoff budget ops get against transient errors.
        rebuild: start/extend a :class:`RebuildManager` on each failure.
        rebuild_max_inflight: rebuild concurrency bound.
        seed: base seed for the per-disk transient-error draws; spawned
            per disk so jobs=2 runs stay byte-identical to jobs=1.
    """

    disk_failures: tuple[DiskFailure, ...] = ()
    transient_faults: tuple[TransientFault, ...] = ()
    slow_disk_faults: tuple[SlowDiskFault, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    rebuild: bool = True
    rebuild_max_inflight: int = 2
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.rebuild_max_inflight < 1:
            raise ValueError(
                f"rebuild_max_inflight must be >= 1, got {self.rebuild_max_inflight}"
            )
        seen: set[int] = set()
        for failure in self.disk_failures:
            if failure.disk in seen:
                raise ValueError(f"disk {failure.disk} fails more than once")
            seen.add(failure.disk)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing; an empty plan installs no
        hooks at all, keeping results byte-identical to a fault-free run."""
        return not (self.disk_failures or self.transient_faults or self.slow_disk_faults)


def shift_fault_plan(plan: FaultPlan, offset_s: float) -> FaultPlan:
    """Return a copy of ``plan`` with every fault time moved by ``offset_s``.

    The serve daemon's ``inject-fault`` path: an operator writes a plan
    with times relative to "now" (fail disk 2 in 60 seconds) and the
    daemon rebases it onto absolute simulated time before handing it to
    the running injector. Windows shift whole; the retry/rebuild knobs
    and the seed are untouched.
    """
    if offset_s < 0:
        raise ValueError(f"offset_s must be >= 0, got {offset_s}")
    if plan.empty or offset_s == 0.0:
        return plan
    return dataclasses.replace(
        plan,
        disk_failures=tuple(
            dataclasses.replace(f, time_s=f.time_s + offset_s)
            for f in plan.disk_failures
        ),
        transient_faults=tuple(
            dataclasses.replace(w, start_s=w.start_s + offset_s, end_s=w.end_s + offset_s)
            for w in plan.transient_faults
        ),
        slow_disk_faults=tuple(
            dataclasses.replace(w, start_s=w.start_s + offset_s, end_s=w.end_s + offset_s)
            for w in plan.slow_disk_faults
        ),
    )


def fault_plan_to_dict(plan: FaultPlan) -> dict[str, Any]:
    """Flatten a plan into the JSON mapping ``--faults`` reads."""
    return dataclasses.asdict(plan)


def fault_plan_from_dict(data: dict[str, Any]) -> FaultPlan:
    """Build a plan from the ``--faults`` JSON mapping.

    Unknown keys are rejected so a typo ('probabilty') fails loudly
    instead of silently injecting nothing.
    """
    known = {f.name for f in dataclasses.fields(FaultPlan)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown FaultPlan keys {unknown}; known: {sorted(known)}")
    failures = tuple(
        DiskFailure(time_s=float(d["time_s"]), disk=int(d["disk"]))
        for d in data.get("disk_failures", ())
    )
    transients = tuple(
        TransientFault(
            start_s=float(d["start_s"]),
            end_s=float(d["end_s"]),
            probability=float(d["probability"]),
            disks=_as_disk_tuple(d.get("disks")),
        )
        for d in data.get("transient_faults", ())
    )
    slows = tuple(
        SlowDiskFault(
            start_s=float(d["start_s"]),
            end_s=float(d["end_s"]),
            factor=float(d["factor"]),
            disks=_as_disk_tuple(d.get("disks")),
        )
        for d in data.get("slow_disk_faults", ())
    )
    retry_data = data.get("retry")
    retry = RetryPolicy(**retry_data) if retry_data is not None else RetryPolicy()
    return FaultPlan(
        disk_failures=failures,
        transient_faults=transients,
        slow_disk_faults=slows,
        retry=retry,
        rebuild=bool(data.get("rebuild", True)),
        rebuild_max_inflight=int(data.get("rebuild_max_inflight", 2)),
        seed=int(data.get("seed", 1234)),
    )


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Read a plan from a JSON file (the ``--faults`` loader)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: fault plan must be a JSON object")
    return fault_plan_from_dict(data)


def save_fault_plan(plan: FaultPlan, path: str | Path) -> None:
    """Write a plan as JSON (the inverse of :func:`load_fault_plan`)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(fault_plan_to_dict(plan), fh, indent=2, sort_keys=True)
        fh.write("\n")
