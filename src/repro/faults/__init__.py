"""Fault injection: declarative plans driven through the engine.

Public surface:

* :class:`FaultPlan` and its parts (:class:`DiskFailure`,
  :class:`TransientFault`, :class:`SlowDiskFault`) — what to inject;
* :func:`load_fault_plan` / :func:`save_fault_plan` — the JSON form
  behind ``repro run --faults plan.json``;
* :class:`FaultInjector` — schedules the plan against one simulation.
"""

from repro.faults.injector import DiskFaultState, FaultInjector
from repro.faults.plan import (
    DiskFailure,
    FaultPlan,
    SlowDiskFault,
    TransientFault,
    fault_plan_from_dict,
    fault_plan_to_dict,
    load_fault_plan,
    save_fault_plan,
    shift_fault_plan,
)

__all__ = [
    "DiskFailure",
    "DiskFaultState",
    "FaultInjector",
    "FaultPlan",
    "SlowDiskFault",
    "TransientFault",
    "fault_plan_from_dict",
    "fault_plan_to_dict",
    "load_fault_plan",
    "save_fault_plan",
    "shift_fault_plan",
]
