"""Command-line interface.

Drive the library without writing Python::

    python -m repro gen-trace --kind oltp --duration 600 -o oltp.csv
    python -m repro trace-stats oltp.csv
    python -m repro trace import msr-sample.csv.gz --format msr -o real.csv.gz
    python -m repro trace stats real.csv.gz
    python -m repro run --policy hibernator --trace oltp.csv --slack 2.0
    python -m repro compare --trace oltp.csv --slack 2.0
    python -m repro compare --trace oltp.csv --jobs 4 --cache-dir .repro-cache
    python -m repro compare --trace oltp.csv --trace-out events.jsonl
    python -m repro trace events.jsonl
    python -m repro sweep-slack --trace oltp.csv --slacks 1.5,2,3
    python -m repro cache --cache-dir .repro-cache --clear

Fleet-scale simulation (see docs/fleet.md)::

    python -m repro fleet run --arrays 8 --policy hibernator --jobs 4
    python -m repro fleet run --arrays 4 --partitioner stripe --json
    python -m repro fleet compare --arrays 4 --policies base,hibernator

Online serving (see docs/serve.md)::

    python -m repro serve --replay oltp.csv --accel 0 --control /tmp/repro.sock
    python -m repro serve --live --ingest /tmp/feed.sock --accel 60 \\
        --control /tmp/repro.sock
    python -m repro ctl status --control /tmp/repro.sock
    python -m repro ctl set-goal --goal-ms 250 --control /tmp/repro.sock
    python -m repro ctl shutdown --control /tmp/repro.sock

Traces can come from a file (``--trace``) or be generated inline with
the same knobs as ``gen-trace``. All commands print plain-text tables.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Sequence

from repro.analysis.experiments import (
    ComparisonResult,
    default_array_config,
    run_comparison,
    run_single,
)
from repro.analysis.report import format_kv, format_series, format_table
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.base import PowerPolicy
from repro.policies.drpm import DrpmPolicy
from repro.policies.maid import MaidConfig, MaidPolicy, maid_array_config
from repro.policies.oracle import OraclePolicy
from repro.policies.pdc import PdcConfig, PdcPolicy
from repro.policies.tpm import TpmConfig, TpmPolicy
from repro.fleet.spec import PARTITIONER_NAMES
from repro.sim.runner import SimulationResult
from repro.traces.cello import CelloConfig, generate_cello
from repro.traces.io import load_trace, save_trace
from repro.traces.model import Trace
from repro.traces.oltp import OltpConfig, generate_oltp
from repro.traces.synthetic import (
    FlashCrowdConfig,
    MultiTenantConfig,
    SyntheticConfig,
    WriteBurstConfig,
    generate_flash_crowd,
    generate_multi_tenant,
    generate_synthetic,
    generate_write_burst,
)
from repro.traces.tracestats import compute_trace_stats, per_extent_rates

POLICY_NAMES = ("base", "tpm", "drpm", "pdc", "maid", "hibernator", "oracle")
CTL_COMMANDS = ("ping", "status", "set-goal", "inject-fault", "force-boost", "shutdown")
TRACE_KINDS = ("oltp", "cello", "synthetic", "flashcrowd", "multitenant", "writeburst")
INGEST_FORMAT_NAMES = ("msr", "blkparse", "csv")


def _add_trace_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", help="trace file (from gen-trace); omit to generate inline")
    parser.add_argument("--kind", choices=TRACE_KINDS, default="oltp",
                        help="inline generator kind (default: oltp)")
    parser.add_argument("--duration", type=float, default=900.0,
                        help="inline trace duration in seconds")
    parser.add_argument("--rate", type=float, default=200.0,
                        help="inline mean request rate (req/s)")
    parser.add_argument("--extents", type=int, default=800,
                        help="logical extents in the volume")
    parser.add_argument("--seed", type=int, default=1, help="generator seed")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_parallel_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for independent runs "
                             "(metrics are identical for any value; default 1)")
    parser.add_argument("--cache-dir",
                        help="directory for the on-disk result cache; "
                             "repeated identical runs are served from it")


def _add_trace_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out",
                        help="collect the structured event trace and write it "
                             "as JSONL to this path (render with 'repro trace')")


def _write_trace_out(events, path: str) -> None:
    """Write the JSONL trace atomically (temp file + rename).

    A SIGINT/SIGTERM mid-write can otherwise leave a truncated final
    line; with the rename, readers only ever see a complete file (or
    the previous one).
    """
    from repro.analysis.atomicio import atomic_write
    from repro.obs.tracelog import write_jsonl

    with atomic_write(path) as fh:
        lines = write_jsonl(events, fh)
    print(f"wrote {lines} trace event(s) to {path}")


@contextlib.contextmanager
def _graceful_sigterm():
    """Turn SIGTERM into KeyboardInterrupt for the enclosed block.

    `kill <pid>` then unwinds through the same exception path as Ctrl-C,
    so `finally` blocks (worker-pool teardown, atomic file writes) run
    instead of the process dying mid-write. Only installable from the
    main thread; elsewhere (tests) the block runs unprotected.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _make_cache(args: argparse.Namespace):
    if not getattr(args, "cache_dir", None):
        return None
    from repro.analysis.cache import ResultCache

    return ResultCache(args.cache_dir)


def _add_faults_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults",
                        help="JSON fault plan (see docs/faults.md): disk "
                             "failures, transient error windows, slow disks")


def _load_faults(args: argparse.Namespace):
    if not getattr(args, "faults", None):
        return None
    from repro.faults.plan import load_fault_plan

    return load_fault_plan(args.faults)


def _add_array_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--disks", type=int, default=8, help="array width")
    parser.add_argument("--speed-levels", type=int, default=5,
                        help="RPM levels of the multi-speed disks")
    parser.add_argument("--raid5", action="store_true", help="RAID-5 write expansion")
    parser.add_argument("--scheduler", choices=("fcfs", "sstf", "scan"), default="fcfs",
                        help="per-disk queue discipline")


def _resolve_trace(args: argparse.Namespace) -> Trace:
    if args.trace:
        return load_trace(args.trace)
    return _generate(args)


def _inline_config(kind: str, duration: float, rate: float, extents: int, seed: int):
    """Generator config for the shared inline-trace CLI knobs.

    ``rate`` maps to each generator's primary rate knob (per-tenant
    base rate for multitenant, background read rate for writeburst);
    everything else keeps the generator's defaults.
    """
    if kind == "oltp":
        return OltpConfig(duration=duration, rate=rate,
                          num_extents=extents, seed=seed)
    if kind == "cello":
        return CelloConfig(days=max(duration / 86400.0, 1e-6),
                           day_rate=rate, night_rate=rate / 20.0,
                           num_extents=extents, seed=seed)
    if kind == "flashcrowd":
        return FlashCrowdConfig(duration=duration, base_rate=rate,
                                spike_start=duration / 2.0,
                                spike_duration=duration / 10.0,
                                num_extents=extents, seed=seed)
    if kind == "multitenant":
        return MultiTenantConfig(duration=duration, base_rate=rate,
                                 burst_period=max(duration / 6.0, 1e-6),
                                 num_extents=extents, seed=seed)
    if kind == "writeburst":
        return WriteBurstConfig(duration=duration, read_rate=rate,
                                checkpoint_period=max(duration / 6.0, 1e-6),
                                num_extents=extents, seed=seed)
    return SyntheticConfig(duration=duration, rate=rate,
                           num_extents=extents, seed=seed)


_GENERATORS = {
    "oltp": generate_oltp,
    "cello": generate_cello,
    "synthetic": generate_synthetic,
    "flashcrowd": generate_flash_crowd,
    "multitenant": generate_multi_tenant,
    "writeburst": generate_write_burst,
}


def _generate(args: argparse.Namespace) -> Trace:
    config = _inline_config(args.kind, args.duration, args.rate,
                            args.extents, args.seed)
    return _GENERATORS[args.kind](config)


def _array_config(args: argparse.Namespace, num_extents: int):
    config = default_array_config(
        num_disks=args.disks,
        num_extents=num_extents,
        num_speed_levels=args.speed_levels,
        raid5=args.raid5,
    )
    if args.scheduler != "fcfs":
        import dataclasses

        config = dataclasses.replace(config, scheduler=args.scheduler)
    return config


def _build_policy(name: str, args: argparse.Namespace, trace: Trace,
                  array_config) -> tuple[PowerPolicy, object]:
    """Policy instance plus the (possibly adjusted) array config."""
    if name == "base":
        return AlwaysOnPolicy(), array_config
    if name == "tpm":
        return TpmPolicy(TpmConfig()), array_config
    if name == "drpm":
        return DrpmPolicy(), array_config
    if name == "pdc":
        return PdcPolicy(PdcConfig(period_s=args.epoch)), array_config
    if name == "maid":
        maid_cfg = MaidConfig()
        return MaidPolicy(maid_cfg), maid_array_config(array_config, maid_cfg.num_cache_disks)
    if name == "oracle":
        return OraclePolicy(epoch_seconds=args.epoch), array_config
    hib = HibernatorConfig(
        epoch_seconds=args.epoch,
        migration=args.migration,
        prime_rates=per_extent_rates(trace) if args.prime else None,
    )
    return HibernatorPolicy(hib), array_config


def _result_block(result: SimulationResult, base: SimulationResult | None,
                  goal: float | None) -> str:
    import math

    p95 = result.p95_response_s
    pairs = [
        ("policy", result.policy_params),
        ("requests", f"{result.num_requests}"),
        ("simulated", f"{result.sim_end:.1f} s"),
        ("energy", f"{result.energy_joules / 1e3:.1f} kJ"),
        ("mean power", f"{result.mean_power_watts:.1f} W"),
        ("mean response", f"{result.mean_response_s * 1e3:.2f} ms"),
        # NaN means "percentiles unavailable" (samples not kept), which
        # must not render as a plausible-looking 0.00 ms.
        ("p95 response", "n/a" if math.isnan(p95) else f"{p95 * 1e3:.2f} ms"),
        ("max response", f"{result.max_response_s * 1e3:.1f} ms"),
    ]
    if base is not None:
        pairs.append(("energy savings", f"{100 * result.energy_savings_vs(base):.1f} % vs Base"))
    if goal is not None:
        pairs.append(("goal", f"{goal * 1e3:.2f} ms "
                              f"({'met' if result.mean_response_s <= goal else 'VIOLATED'})"))
    if result.migration_extents:
        pairs.append(("migration", f"{result.migration_extents} extents"))
    for key, value in sorted(result.extras.items()):
        pairs.append((key, f"{value:g}"))
    return format_kv(f"== {result.policy_name} on {result.trace_name} ==", pairs)


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def cmd_gen_trace(args: argparse.Namespace) -> int:
    trace = _generate(args)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} requests ({trace.duration:.1f} s) to {args.output}")
    return 0


def cmd_trace_stats(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace_file)
    stats = compute_trace_stats(trace)
    print(format_kv(f"== {trace.name} ==", stats.rows()))
    return 0


def _column_ref(text: str):
    """CSV field-map column reference: an index if numeric, else a name."""
    return int(text) if text.lstrip("-").isdigit() else text


def cmd_trace_import(args: argparse.Namespace) -> int:
    from repro.traces.ingest import FieldMap, IngestOptions, import_trace

    field_map = None
    if args.format == "csv":
        field_map = FieldMap(
            time=_column_ref(args.time_col),
            kind=None if args.no_kind else _column_ref(args.kind_col),
            offset=_column_ref(args.offset_col),
            size=None if args.no_size else _column_ref(args.size_col),
            time_unit=args.time_unit,
            offset_unit=args.offset_unit,
            read_values=tuple(v.strip() for v in args.read_values.split(",") if v.strip()),
            delimiter=args.delimiter,
            has_header=not args.no_header,
            default_size_bytes=args.default_size,
        )
    try:
        options = IngestOptions(
            extent_bytes=args.extent_bytes,
            num_extents=args.extents,
            name=args.name,
            field_map=field_map,
            target_extents=args.target_extents,
            target_duration_s=args.target_duration,
            target_iops=args.target_iops,
            intensity=args.intensity,
            seed=args.ingest_seed,
        )
        result = import_trace(args.source, args.format, options)
    except ValueError as exc:  # includes TraceFormatError with path:line
        print(f"repro trace import: {exc}", file=sys.stderr)
        return 2
    save_trace(result.trace, args.output)
    if args.json:
        import json

        doc = result.provenance.to_dict()
        doc["output"] = args.output
        print(json.dumps(doc, indent=2, sort_keys=True, allow_nan=False))
    else:
        print(format_kv(f"== imported {result.trace.name} ==",
                        result.provenance.rows()))
        print(f"wrote {len(result.trace)} requests "
              f"({result.trace.duration:.1f} s) to {args.output}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    trace = _resolve_trace(args)
    config = _array_config(args, trace.num_extents)
    faults = _load_faults(args)
    base = None
    goal = None
    if args.policy != "base" and args.slack is not None:
        base = run_single(trace, config, AlwaysOnPolicy(), faults=faults,
                          engine=args.engine)
        goal = args.slack * base.mean_response_s
    policy, policy_config = _build_policy(args.policy, args, trace, config)
    result = run_single(trace, policy_config, policy, goal_s=goal,
                        observe=bool(args.trace_out), faults=faults,
                        engine=args.engine)
    if args.trace_out:
        _write_trace_out(result.events, args.trace_out)
    if args.json:
        from repro.analysis.export import result_to_dict, write_json

        write_json(result_to_dict(result), sys.stdout)
        print()
    else:
        print(_result_block(result, base, goal))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    trace = _resolve_trace(args)
    config = _array_config(args, trace.num_extents)
    cache = _make_cache(args)
    comparison = run_comparison(
        trace, config, slack=args.slack,
        hibernator_config=HibernatorConfig(epoch_seconds=args.epoch,
                                           migration=args.migration),
        jobs=args.jobs, cache=cache, observe=bool(args.trace_out),
        faults=_load_faults(args), engine=args.engine,
    )
    if args.trace_out:
        _write_trace_out(comparison.all_events(), args.trace_out)
    if args.json:
        from repro.analysis.export import comparison_to_dict, write_json

        write_json(comparison_to_dict(comparison), sys.stdout)
        print()
    elif args.csv:
        from repro.analysis.export import write_comparison_csv

        write_comparison_csv(comparison, args.csv)
        print(f"wrote {args.csv}")
    else:
        print(format_table(ComparisonResult.HEADERS, comparison.rows(),
                           title=f"{trace.name}: scheme comparison "
                                 f"(goal {comparison.goal_s * 1e3:.2f} ms)"))
        print()
        print(format_table(ComparisonResult.RUNTIME_HEADERS, comparison.runtime_rows(),
                           title="run cost (simulation wall clock per scheme)"))
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
              f"{stats['stores']} stored, {stats['entries']} entr(ies) on disk")
    return 0


def cmd_sweep_slack(args: argparse.Namespace) -> int:
    from repro.analysis.parallel import PolicySpec, RunSpec, TraceSpec, execute, execute_one

    trace = _resolve_trace(args)
    config = _array_config(args, trace.num_extents)
    slacks = [float(s) for s in args.slacks.split(",")]
    for slack in slacks:
        if slack < 1.0:
            raise SystemExit(f"slack {slack} below 1.0 is unmeetable")
    cache = _make_cache(args)
    observe = bool(args.trace_out)
    trace_spec = TraceSpec.from_trace(trace)
    base = execute_one(
        RunSpec(trace=trace_spec, array=config, policy=PolicySpec.named("base"),
                observe=observe),
        cache=cache,
    )
    hib_cfg = HibernatorConfig(epoch_seconds=args.epoch, migration=args.migration)
    specs = [
        RunSpec(
            trace=trace_spec,
            array=config,
            policy=PolicySpec.named("hibernator", config=hib_cfg),
            goal_s=slack * base.mean_response_s,
            observe=observe,
        )
        for slack in slacks
    ]
    results = execute(specs, jobs=args.jobs, cache=cache)
    if args.trace_out:
        events = list(base.events)
        for result in results:
            events.extend(result.events)
        _write_trace_out(events, args.trace_out)
    points = [(slack, 100.0 * result.energy_savings_vs(base))
              for slack, result in zip(slacks, results)]
    print(format_series(
        f"{trace.name}: Hibernator savings vs slack",
        points, x_label="slack", y_label="savings %",
    ))
    return 0


def _fleet_trace_spec(args: argparse.Namespace):
    """Fleet workload as a picklable TraceSpec.

    Splitting partitioners address the *global* extent space
    (``--arrays`` x ``--extents``); ``replicate`` keeps the per-array
    space because each array regenerates the recipe with its own seed.
    """
    from repro.analysis.parallel import TraceSpec

    if args.trace:
        return TraceSpec.from_file(args.trace)
    if args.partitioner == "replicate":
        extents = args.extents
    else:
        extents = args.arrays * args.extents
    config = _inline_config(args.kind, args.duration, args.rate,
                            extents, args.seed)
    return TraceSpec.from_generator(args.kind, config)


def _fleet_policy_spec(name: str, args: argparse.Namespace):
    from repro.analysis.parallel import PolicySpec

    if name == "hibernator":
        return PolicySpec.named("hibernator", epoch_seconds=args.epoch)
    if name == "pdc":
        return PolicySpec.named("pdc", period_s=args.epoch)
    if name == "oracle":
        return PolicySpec.named("oracle", epoch_seconds=args.epoch)
    return PolicySpec.named(name)


def _build_fleet(args: argparse.Namespace, policy_name: str):
    from repro.fleet import FleetSpec, load_fleet_fault_plan

    faults = None
    if getattr(args, "fleet_faults", None):
        faults = load_fleet_fault_plan(args.fleet_faults)
    return FleetSpec(
        num_arrays=args.arrays,
        trace=_fleet_trace_spec(args),
        array=_array_config(args, args.extents),
        policy=_fleet_policy_spec(policy_name, args),
        partitioner=args.partitioner,
        goal_s=args.goal_ms / 1e3 if args.goal_ms is not None else None,
        observe=bool(getattr(args, "trace_out", None)),
        faults=faults,
        seed=args.fleet_seed,
        engine=getattr(args, "engine", "scalar"),
    )


def cmd_fleet_run(args: argparse.Namespace) -> int:
    import time

    from repro.fleet import FleetResult, fleet_to_dict, run_fleet

    fleet = _build_fleet(args, args.policy)
    cache = _make_cache(args)
    start = time.perf_counter()
    # Long fleet runs are the ones operators Ctrl-C or `kill` mid-flight;
    # route SIGTERM through KeyboardInterrupt so both paths unwind the
    # same way: worker pool torn down, already-cached shards stay cached
    # (each put is atomic), and no partial --trace-out file can appear
    # (it is written atomically after the run completes).
    with _graceful_sigterm():
        try:
            result = run_fleet(fleet, jobs=args.jobs, cache=cache)
        except KeyboardInterrupt:
            print("repro fleet run: interrupted; partial results discarded "
                  "(cached shards are kept for the next run)", file=sys.stderr)
            return 130
    wall = time.perf_counter() - start
    if args.trace_out:
        events = list(result.events)
        for shard in result.results:
            events.extend(shard.events)
        _write_trace_out(events, args.trace_out)
    if args.json:
        from repro.analysis.export import write_json

        write_json(fleet_to_dict(result), sys.stdout)
        print()
    else:
        print(format_table(
            FleetResult.HEADERS, result.rows(),
            title=f"{result.trace_name}: {result.policy_name} fleet, per array",
        ))
        print()
        pairs = result.summary_pairs()
        pairs.extend((key, f"{value:g}") for key, value in sorted(result.extras.items()))
        pairs.append(("simulated in", f"{wall:.2f} s wall ({args.jobs} job(s))"))
        print(format_kv(f"== fleet: {result.policy_name} on {result.trace_name} ==",
                        pairs))
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
              f"{stats['stores']} stored, {stats['entries']} entr(ies) on disk")
    return 0


def cmd_fleet_compare(args: argparse.Namespace) -> int:
    from repro.fleet import run_fleet

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown = sorted(set(policies) - set(POLICY_NAMES))
    if unknown:
        print(f"repro fleet compare: unknown policy(ies) {unknown}; "
              f"known: {sorted(POLICY_NAMES)}", file=sys.stderr)
        return 2
    cache = _make_cache(args)
    results = [run_fleet(_build_fleet(args, name), jobs=args.jobs, cache=cache)
               for name in policies]
    base = results[policies.index("base")] if "base" in policies else None
    rows = []
    for result in results:
        savings = "-"
        if base is not None and result is not base:
            savings = f"{100.0 * result.energy_savings_vs(base):.1f}"
        rows.append((
            result.policy_name,
            f"{result.energy_joules / 1e3:.1f}",
            savings,
            f"{result.mean_response_s * 1e3:.2f}",
            f"{100.0 * result.availability:.3f}",
            str(result.spinups),
            str(result.failed_requests),
        ))
    print(format_table(
        ("policy", "energy kJ", "savings %", "mean ms", "avail %",
         "spinups", "failed"),
        rows,
        title=f"fleet comparison: {args.arrays} array(s), "
              f"partitioner={args.partitioner}",
    ))
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
              f"{stats['stores']} stored, {stats['entries']} entr(ies) on disk")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ServeDaemon
    from repro.sim.runner import ArraySimulation
    from repro.traces.model import TraceBuilder

    if args.live:
        if args.replay:
            print("repro serve: --live and --replay are mutually exclusive",
                  file=sys.stderr)
            return 2
        if not args.ingest:
            print("repro serve: --live needs --ingest SOCKET", file=sys.stderr)
            return 2
        if args.accel <= 0:
            print("repro serve: --live needs --accel > 0 (wall-clock pacing)",
                  file=sys.stderr)
            return 2
        trace = TraceBuilder("live", num_extents=args.extents).build()
        args.prime = False  # nothing to prime heat from; observe instead
    elif args.replay:
        trace = load_trace(args.replay)
    else:
        trace = _resolve_trace(args)
    config = _array_config(args, trace.num_extents)
    goal = args.goal_ms / 1e3 if args.goal_ms is not None else None
    policy, policy_config = _build_policy(args.policy, args, trace, config)
    sim = ArraySimulation(
        trace, policy_config, policy, goal_s=goal,
        observe=bool(args.trace_out), faults=_load_faults(args),
        live=args.live,
    )
    daemon = ServeDaemon(
        sim, args.control,
        accel=args.accel,
        ingest_path=args.ingest if args.live else None,
        trace_out=args.trace_out,
        exit_on_drain=args.exit_on_drain,
    )
    mode = "live" if args.live else f"replay of {trace.name} ({len(trace)} requests)"
    print(f"serving {mode} at accel={args.accel:g}; control socket {args.control}",
          file=sys.stderr)
    result = daemon.serve()
    if args.trace_out:
        print(f"wrote {daemon.trace_lines} trace event(s) to {args.trace_out}",
              file=sys.stderr)
    if args.json:
        from repro.analysis.export import result_to_dict, write_json

        write_json(result_to_dict(result), sys.stdout)
        print()
    else:
        print(_result_block(result, None, result.goal_s))
    return 0


def cmd_ctl(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServeClient
    from repro.serve.protocol import ProtocolError

    params: dict[str, object] = {}
    if args.ctl_command == "set-goal":
        if args.clear_goal:
            params["goal_s"] = None
        elif args.goal_ms is not None:
            params["goal_s"] = args.goal_ms / 1e3
        else:
            print("repro ctl set-goal: need --goal-ms MS or --clear-goal",
                  file=sys.stderr)
            return 2
    elif args.ctl_command == "inject-fault":
        if not args.plan:
            print("repro ctl inject-fault: need --plan PLAN.json", file=sys.stderr)
            return 2
        try:
            with open(args.plan, "r", encoding="utf-8") as fh:
                params["plan"] = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro ctl inject-fault: cannot read plan {args.plan}: {exc}",
                  file=sys.stderr)
            return 2
        params["relative"] = not args.absolute
    try:
        with ServeClient.connect(args.control, retry_for_s=args.retry) as client:
            data = client.command(args.ctl_command, **params)
    except (OSError, ConnectionError) as exc:
        print(f"repro ctl: cannot reach daemon at {args.control}: {exc}",
              file=sys.stderr)
        return 1
    except ProtocolError as exc:
        print(f"repro ctl: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(data, indent=2, sort_keys=True, allow_nan=False))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.summary import render_runs
    from repro.obs.tracelog import read_jsonl, split_runs

    events = read_jsonl(args.trace_file)
    if not events:
        print(f"{args.trace_file}: no events")
        return 0
    print(render_runs(split_runs(events), width=args.width))
    return 0


def _rule_id_list(text: str | None) -> list[str] | None:
    if text is None:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.lint import (
        check_code_version_bump,
        check_protocol_version_bump,
        lint,
        render_json,
        render_rule_list,
        render_text,
        resolve_repo_root,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0

    paths = list(args.paths)
    if not paths:
        # Prefer the source tree when run from a checkout; fall back to
        # wherever the package is importable from.
        default = Path("src/repro")
        paths = [str(default if default.is_dir() else Path(repro.__file__).parent)]

    extra = []
    if args.guard_base:
        repo_root = resolve_repo_root()
        extra = check_code_version_bump(repo_root, args.guard_base)
        extra += check_protocol_version_bump(repo_root, args.guard_base)

    try:
        result = lint(
            paths,
            select=_rule_id_list(args.select),
            ignore=_rule_id_list(args.ignore),
            extra_findings=extra,
        )
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 1 if result.has_errors else 0


def cmd_perf(args: argparse.Namespace) -> int:
    from datetime import datetime, timezone
    from pathlib import Path

    from repro.lint.guard import resolve_repo_root
    from repro.perf import (
        compare_benchmarks,
        find_baseline,
        load_bench,
        profile_scenarios,
        run_benchmark,
        select_scenarios,
        write_bench,
        write_golden,
    )

    try:
        scenarios = select_scenarios(
            names=args.scenario or None, quick=args.quick
        )
    except ValueError as exc:
        print(f"repro perf: {exc}", file=sys.stderr)
        return 2

    if args.list:
        for s in scenarios:
            quick = " (quick)" if s.quick else ""
            print(f"{s.name:<28} trace={s.trace} policy={s.policy} "
                  f"faults={s.faults}{quick}")
        return 0

    if args.write_golden:
        digests = write_golden(args.write_golden)
        print(f"wrote {len(digests)} golden digest(s) to {args.write_golden}")
        return 0

    if args.profile:
        print(profile_scenarios(scenarios, top=args.top))
        return 0

    print(f"== repro perf: {len(scenarios)} scenario(s), "
          f"best of {args.repeats} repeat(s), engine={args.engine} ==")
    doc = run_benchmark(scenarios, repeats=args.repeats, log=print,
                        engine=args.engine)

    root = resolve_repo_root(Path.cwd())
    if args.out:
        out = Path(args.out)
    else:
        stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d")
        out = root / f"BENCH_{stamp}.json"
    write_bench(doc, out)
    print(f"wrote {out}")

    if args.baseline:
        baseline_path: Path | None = Path(args.baseline)
    else:
        baseline_path = find_baseline(root, exclude=out, engine=args.engine)
    if baseline_path is None:
        print("no committed BENCH_*.json baseline found; nothing to compare")
        return 0
    try:
        baseline = load_bench(baseline_path)
    except (ValueError, OSError) as exc:
        print(f"repro perf: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    print(f"baseline: {baseline_path} (generated {baseline.get('generated_at')})")
    lines, regressions = compare_benchmarks(doc, baseline, threshold=args.threshold)
    for line in lines:
        print(line)
    if regressions:
        print(f"PERF REGRESSION in {len(regressions)} scenario(s): "
              f"{', '.join(regressions)}")
        return 1
    print("no perf regression")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.analysis.cache import CODE_VERSION, ResultCache

    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    entries = len(cache)
    print(format_kv(f"== result cache at {cache.root} ==", [
        ("entries", str(entries)),
        ("size", f"{cache.size_bytes() / 1024.0:.1f} KiB"),
        ("code version", CODE_VERSION),
    ]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hibernator (SOSP 2005) reproduction: disk-array "
                    "energy management experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen-trace", help="generate a workload trace file")
    _add_trace_source(p)
    p.add_argument("-o", "--output", required=True, help="output path (.csv or .csv.gz)")
    p.set_defaults(func=cmd_gen_trace)

    p = sub.add_parser("trace-stats", help="characterize a trace file")
    p.add_argument("trace_file")
    p.set_defaults(func=cmd_trace_stats)

    p = sub.add_parser("run", help="run one policy on a trace")
    _add_trace_source(p)
    _add_array_options(p)
    p.add_argument("--policy", choices=POLICY_NAMES, default="hibernator")
    p.add_argument("--slack", type=float, default=2.0,
                   help="response-time goal as a multiple of Base's mean "
                        "(ignored for --policy base)")
    p.add_argument("--epoch", type=float, default=600.0, help="epoch/period seconds")
    p.add_argument("--migration", choices=("shuffle", "sorted", "none"),
                   default="shuffle")
    p.add_argument("--no-prime", dest="prime", action="store_false",
                   help="skip heat priming (start with an observation epoch)")
    p.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p.add_argument("--engine", choices=("scalar", "batch"), default="scalar",
                   help="simulation core: scalar event loop or the batched "
                        "core (byte-identical results, faster replay)")
    _add_faults_option(p)
    _add_trace_out(p)
    p.set_defaults(func=cmd_run, prime=True)

    p = sub.add_parser("compare", help="run the full scheme comparison")
    _add_trace_source(p)
    _add_array_options(p)
    p.add_argument("--slack", type=float, default=2.0)
    p.add_argument("--epoch", type=float, default=600.0)
    p.add_argument("--migration", choices=("shuffle", "sorted", "none"),
                   default="shuffle")
    p.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p.add_argument("--csv", help="write per-scheme CSV to this path")
    p.add_argument("--engine", choices=("scalar", "batch"), default="scalar",
                   help="simulation core: scalar event loop or the batched "
                        "core (byte-identical results, faster replay)")
    _add_faults_option(p)
    _add_parallel_options(p)
    _add_trace_out(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep-slack", help="Hibernator savings across goals")
    _add_trace_source(p)
    _add_array_options(p)
    p.add_argument("--slacks", default="1.25,1.5,2.0,3.0",
                   help="comma-separated slack multipliers")
    p.add_argument("--epoch", type=float, default=600.0)
    p.add_argument("--migration", choices=("shuffle", "sorted", "none"),
                   default="shuffle")
    _add_parallel_options(p)
    _add_trace_out(p)
    p.set_defaults(func=cmd_sweep_slack)

    p = sub.add_parser(
        "fleet",
        help="fleet-scale simulation: N arrays as one system",
        description="Simulate a fleet of arrays sharing one workload "
                    "(see docs/fleet.md): the trace is partitioned (or "
                    "replicated) across arrays, per-array simulations fan "
                    "out over --jobs processes, and the merged report "
                    "covers energy, response and availability. Results are "
                    "byte-identical for any --jobs value.",
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    def _add_fleet_options(fp: argparse.ArgumentParser) -> None:
        _add_trace_source(fp)
        _add_array_options(fp)
        fp.add_argument("--arrays", type=_positive_int, default=4,
                        help="fleet width (default 4)")
        fp.add_argument("--partitioner", choices=PARTITIONER_NAMES,
                        default="block",
                        help="workload split: block = contiguous extent "
                             "ranges, stripe = round-robin interleave, "
                             "replicate = per-array regeneration with "
                             "spawned seeds (default block). --extents is "
                             "per array; block/stripe address the global "
                             "space arrays*extents")
        fp.add_argument("--goal-ms", type=float, default=None,
                        help="per-array mean response-time goal in ms")
        fp.add_argument("--epoch", type=float, default=600.0,
                        help="epoch/period seconds for epoch-based policies")
        fp.add_argument("--fleet-seed", type=int, default=0,
                        help="fleet seed; per-array streams are spawned "
                             "from it (default 0)")
        fp.add_argument("--fleet-faults",
                        help="JSON fleet fault plan (see docs/fleet.md): "
                             "common faults, per-array plans, correlated "
                             "batch failures")
        fp.add_argument("--engine", choices=("scalar", "batch"),
                        default="scalar",
                        help="per-array simulation core (byte-identical "
                             "results, faster replay)")
        _add_parallel_options(fp)
        _add_trace_out(fp)

    fp = fleet_sub.add_parser("run", help="run one policy across the fleet")
    _add_fleet_options(fp)
    fp.add_argument("--policy", choices=POLICY_NAMES, default="hibernator")
    fp.add_argument("--json", action="store_true", help="emit JSON instead of text")
    fp.set_defaults(func=cmd_fleet_run)

    fp = fleet_sub.add_parser("compare",
                              help="run several policies across the same fleet")
    _add_fleet_options(fp)
    fp.add_argument("--policies", default="base,hibernator",
                    help="comma-separated policy list (default base,hibernator)")
    fp.set_defaults(func=cmd_fleet_compare)

    p = sub.add_parser(
        "serve",
        help="drive one simulation online behind a control socket",
        description="Run the simulator as a daemon (see docs/serve.md): "
                    "replay a trace (as fast as possible at --accel 0, "
                    "wall-clock paced at --accel N) or serve a live "
                    "request feed (--live with --ingest), while a control "
                    "socket accepts status / set-goal / inject-fault / "
                    "force-boost / shutdown commands (drive it with "
                    "'repro ctl'). At --accel 0 the replay result is "
                    "byte-identical to 'repro run' on the same trace.",
    )
    _add_trace_source(p)
    _add_array_options(p)
    p.add_argument("--control", required=True,
                   help="AF_UNIX control socket path (created; stale "
                        "sockets are replaced)")
    p.add_argument("--replay", help="trace file to replay (alternative to "
                                    "the synthetic-trace options)")
    p.add_argument("--live", action="store_true",
                   help="serve a live request stream instead of a trace "
                        "(needs --ingest and --accel > 0)")
    p.add_argument("--ingest", help="AF_UNIX socket for the live request "
                                    "feed (one JSON request per line)")
    p.add_argument("--accel", type=float, default=0.0,
                   help="simulated seconds per wall-clock second; 0 = "
                        "as-fast-as-possible deterministic replay "
                        "(default 0)")
    p.add_argument("--goal-ms", type=float, default=None,
                   help="mean response-time goal in ms")
    p.add_argument("--exit-on-drain", action="store_true",
                   help="exit when the replay workload drains instead of "
                        "waiting for a shutdown command")
    p.add_argument("--policy", choices=POLICY_NAMES, default="hibernator")
    p.add_argument("--epoch", type=float, default=600.0, help="epoch/period seconds")
    p.add_argument("--migration", choices=("shuffle", "sorted", "none"),
                   default="shuffle")
    p.add_argument("--no-prime", dest="prime", action="store_false",
                   help="skip heat priming (start with an observation epoch)")
    p.add_argument("--json", action="store_true", help="emit JSON instead of text")
    _add_faults_option(p)
    _add_trace_out(p)
    p.set_defaults(func=cmd_serve, prime=True)

    p = sub.add_parser(
        "ctl",
        help="send one command to a running serve daemon",
        description="Client for the 'repro serve' control socket. Prints "
                    "the daemon's JSON response; exits 1 when the daemon "
                    "is unreachable or refuses the command.",
    )
    p.add_argument("ctl_command", choices=CTL_COMMANDS, metavar="command",
                   help=f"one of: {', '.join(CTL_COMMANDS)}")
    p.add_argument("--control", required=True, help="daemon control socket path")
    p.add_argument("--goal-ms", type=float, default=None,
                   help="set-goal: new goal in ms")
    p.add_argument("--clear-goal", action="store_true",
                   help="set-goal: remove the goal entirely")
    p.add_argument("--plan", help="inject-fault: JSON fault plan file "
                                  "(docs/faults.md schema)")
    p.add_argument("--absolute", action="store_true",
                   help="inject-fault: plan times are absolute simulated "
                        "seconds (default: offsets from now)")
    p.add_argument("--retry", type=float, default=5.0,
                   help="seconds to retry connecting while the daemon "
                        "starts (default 5)")
    p.set_defaults(func=cmd_ctl)

    p = sub.add_parser(
        "trace",
        help="work with traces: show events, import foreign formats, stats",
        description="Trace tooling. 'show' renders a structured JSONL "
                    "event trace, 'import' converts a public block-trace "
                    "format (MSR-Cambridge CSV, blkparse output, generic "
                    "columnar CSV) into the native format with optional "
                    "modernization (see docs/traces.md), and 'stats' "
                    "characterizes a native trace file. A bare "
                    "'repro trace FILE' is shorthand for 'show'.",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    tp = trace_sub.add_parser("show", help="render a structured event trace (JSONL)")
    tp.add_argument("trace_file", help="JSONL file written via --trace-out")
    tp.add_argument("--width", type=int, default=64,
                    help="timeline width in characters (default 64)")
    tp.set_defaults(func=cmd_trace)

    tp = trace_sub.add_parser(
        "import",
        help="convert a public block-trace format to the native format",
        description="Parse a foreign trace file, optionally modernize it "
                    "(address-space/time/intensity rescaling), and write a "
                    "native trace plus a provenance report. Exit codes: "
                    "0 ok, 2 malformed input (the error names file and "
                    "line).",
    )
    tp.add_argument("source", help="trace file to import (.gz transparently)")
    tp.add_argument("--format", required=True, choices=INGEST_FORMAT_NAMES,
                    help="source format")
    tp.add_argument("-o", "--output", required=True,
                    help="native trace output path (.csv or .csv.gz)")
    tp.add_argument("--name", help="trace name (default: source file stem)")
    tp.add_argument("--extent-bytes", type=int, default=1 << 20,
                    help="bytes per logical extent when folding byte "
                         "offsets (default 1 MiB)")
    tp.add_argument("--extents", type=int, default=None,
                    help="volume size in extents (default: smallest that "
                         "fits the highest offset)")
    tp.add_argument("--target-extents", type=int, default=None,
                    help="modernize: re-map the address space onto this "
                         "many extents, preserving hot/cold skew")
    tp.add_argument("--target-duration", type=float, default=None,
                    help="modernize: rescale the time axis to this many "
                         "seconds (mutually exclusive with --target-iops)")
    tp.add_argument("--target-iops", type=float, default=None,
                    help="modernize: rescale the time axis to this mean "
                         "request rate")
    tp.add_argument("--intensity", type=float, default=1.0,
                    help="modernize: arrival-rate factor at a fixed time "
                         "axis; <1 thins, >1 superposes jittered replicas "
                         "(default 1)")
    tp.add_argument("--ingest-seed", type=int, default=0,
                    help="seed for the seeded modernization transforms "
                         "(default 0)")
    tp.add_argument("--time-col", default="time",
                    help="csv: time column name or 0-based index")
    tp.add_argument("--kind-col", default="kind",
                    help="csv: read/write column name or index")
    tp.add_argument("--no-kind", action="store_true",
                    help="csv: no read/write column; every request is a read")
    tp.add_argument("--offset-col", default="offset",
                    help="csv: address column name or index")
    tp.add_argument("--size-col", default="size",
                    help="csv: request-size column name or index")
    tp.add_argument("--no-size", action="store_true",
                    help="csv: no size column; use --default-size")
    tp.add_argument("--time-unit", choices=("s", "ms", "us", "ns"), default="s",
                    help="csv: unit of the time column (default s)")
    tp.add_argument("--offset-unit", choices=("bytes", "sectors", "extents"),
                    default="bytes",
                    help="csv: unit of the address column (default bytes)")
    tp.add_argument("--delimiter", default=",",
                    help="csv: field separator (default ',')")
    tp.add_argument("--no-header", action="store_true",
                    help="csv: first row is data, not a header (column "
                         "references must be indices)")
    tp.add_argument("--read-values", default="r,read,0,true",
                    help="csv: comma-separated tokens marking a read "
                         "(default 'r,read,0,true')")
    tp.add_argument("--default-size", type=int, default=4096,
                    help="csv: request size in bytes when there is no size "
                         "column (default 4096)")
    tp.add_argument("--json", action="store_true",
                    help="emit the provenance record as JSON")
    tp.set_defaults(func=cmd_trace_import)

    tp = trace_sub.add_parser("stats", help="characterize a native trace file")
    tp.add_argument("trace_file")
    tp.set_defaults(func=cmd_trace_stats)

    p = sub.add_parser(
        "lint",
        help="run the simulator-aware static-analysis pass",
        description="Whole-program static analysis enforcing the repo's "
                    "reproduction invariants: determinism (DET*), unit "
                    "consistency (UNIT*), cache-key completeness (CACHE*), "
                    "observability pairing (OBS*), serve-protocol sync "
                    "(PROTO*), resource lifecycle (RES*) and concurrency "
                    "safety (CONC*). Exit codes: 0 no error-severity "
                    "findings (warnings are reported but non-fatal), "
                    "1 errors, 2 usage error.",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: the repro package)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default text)")
    p.add_argument("--select", help="comma-separated rule ids to run exclusively")
    p.add_argument("--ignore", help="comma-separated rule ids to skip")
    p.add_argument("--guard-base",
                   help="git ref to diff against for the CODE_VERSION "
                        "(CACHE002) and PROTOCOL_VERSION (PROTO003) bump "
                        "guards; omit to skip both")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also list suppressed findings (text format)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "perf",
        help="run the canonical benchmark scenarios and gate on regressions",
        description="Microbenchmark harness: runs a fixed scenario matrix "
                    "through the real experiment stack, writes a "
                    "machine-readable BENCH_<date>.json at the repo root "
                    "and compares events/s against the most recent "
                    "committed BENCH file. Exit codes: 0 no regression "
                    "(or no baseline), 1 regression, 2 usage error.",
    )
    p.add_argument("--quick", action="store_true",
                   help="run only the quick subset (CI smoke)")
    p.add_argument("--scenario", action="append",
                   help="run only this scenario (repeatable)")
    p.add_argument("--repeats", type=int, default=3,
                   help="repeats per scenario; best wall time wins (default 3)")
    p.add_argument("--out", help="output BENCH path (default "
                                 "BENCH_<utc-date>.json at the repo root)")
    p.add_argument("--baseline", help="explicit baseline BENCH file "
                                      "(default: newest committed BENCH_*.json)")
    p.add_argument("--threshold", type=float, default=0.9,
                   help="regression threshold as a fraction of baseline "
                        "events/s (default 0.9)")
    p.add_argument("--profile", action="store_true",
                   help="cProfile the selected scenarios and print the "
                        "hottest functions instead of benchmarking")
    p.add_argument("--top", type=int, default=25,
                   help="rows in the --profile report (default 25)")
    p.add_argument("--write-golden", metavar="PATH",
                   help="run the golden scenarios and write their result "
                        "digests to PATH (regenerates the identity pins)")
    p.add_argument("--engine", choices=("scalar", "batch"), default="scalar",
                   help="simulation core to benchmark; the BENCH document "
                        "records it and baselines only match within the "
                        "same engine")
    p.add_argument("--list", action="store_true",
                   help="list the selected scenarios and exit")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("cache", help="inspect or clear the on-disk result cache")
    p.add_argument("--cache-dir", required=True, help="cache directory")
    p.add_argument("--clear", action="store_true", help="delete every cached result")
    p.set_defaults(func=cmd_cache)

    return parser


_TRACE_SUBCOMMANDS = ("show", "import", "stats")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arglist = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: "repro trace FILE" predates the show/import/stats
    # subcommands and still renders the JSONL event trace.
    if (
        len(arglist) >= 2
        and arglist[0] == "trace"
        and arglist[1] not in _TRACE_SUBCOMMANDS
        and arglist[1] not in ("-h", "--help")
    ):
        arglist.insert(1, "show")
    parser = build_parser()
    args = parser.parse_args(arglist)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
