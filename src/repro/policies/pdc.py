"""PDC: Popular Data Concentration (Pinheiro & Bianchini, ICS'04).

Periodically rank all extents by recent popularity and pack the hottest
onto the first disk, the next-hottest onto the second, and so on; then
let threshold-based spin-down put the cold tail of the array into
standby. PDC has no notion of intermediate speeds and no performance
goal: it trades response time for energy whenever the skew lets it park
disks — and its load *concentration* is exactly what overloads the first
disks under data-center rates, which is the failure mode the paper
contrasts Hibernator's load-spreading tiers against.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass


from repro.core.migration import MigrationExecutor, MigrationPlan
from repro.core.temperature import HeatTracker
from repro.policies.base import PowerPolicy
from repro.policies.tpm import IdleSpindownManager, breakeven_seconds
from repro.sim.request import Request

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runner import ArraySimulation


@dataclass
class PdcConfig:
    """PDC knobs.

    Attributes:
        period_s: re-ranking/migration period.
        heat_smoothing: exponential history weight when folding a period.
        spindown_threshold_s: idle timeout for passive disks; None = the
            disk spec's break-even time.
        max_moves_per_period: cap on migrations issued per period (keeps
            the concentration from monopolizing the array).
        max_inflight_migrations: concurrent extent copies.
        fill_fraction: how full to pack each disk, as a fraction of its
            slot capacity (leaving room so moves cannot deadlock).
    """

    period_s: float = 3600.0
    heat_smoothing: float = 0.5
    spindown_threshold_s: float | None = None
    max_moves_per_period: int = 500
    max_inflight_migrations: int = 4
    fill_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 < self.fill_fraction <= 1.0:
            raise ValueError("fill_fraction must be in (0, 1]")


class PdcPolicy(PowerPolicy):
    """Popularity packing onto leading disks + spin-down of the tail."""

    name = "PDC"

    def __init__(self, config: PdcConfig | None = None) -> None:
        super().__init__()
        self.config = config or PdcConfig()
        self.heat: HeatTracker | None = None
        self.executor: MigrationExecutor | None = None
        self._manager: IdleSpindownManager | None = None
        self.periods = 0

    def attach(self, sim: "ArraySimulation") -> None:
        super().attach(sim)
        array = sim.array
        spec = array.config.spec
        array.set_all_speeds(spec.max_rpm)
        self.heat = HeatTracker(array.num_extents, smoothing=self.config.heat_smoothing)
        self.executor = MigrationExecutor(array, self.config.max_inflight_migrations)
        threshold = self.config.spindown_threshold_s
        if threshold is None:
            threshold = breakeven_seconds(spec)
        self._manager = IdleSpindownManager(sim.engine, threshold)
        for disk in array.disks:
            self._manager.manage(disk)
        self.periods = 0
        self.metrics.counter("pdc_periods")  # registered so the key exists even at 0
        sim.engine.schedule(self.config.period_s, self._period_boundary)

    def on_request_arrival(self, request: Request) -> None:
        assert self.heat is not None
        self.heat.record(request.extent, is_write=not request.is_read)

    def _period_boundary(self) -> None:
        sim = self.sim
        assert sim is not None and self.heat is not None and self.executor is not None
        self.heat.close_epoch(self.config.period_s)
        self.periods += 1
        self.metrics.counter("pdc_periods").inc()
        plan = self._plan_concentration()
        if self.executor.active:
            self.executor.cancel()
        if plan.num_moves:
            self.executor.start(plan)
        if sim.workload_open:
            sim.engine.schedule_after(self.config.period_s, self._period_boundary)

    def _plan_concentration(self) -> MigrationPlan:
        """Desired layout: heat order packed disk 0, disk 1, ..."""
        sim = self.sim
        assert sim is not None and self.heat is not None
        array = sim.array
        emap = array.extent_map
        per_disk = int(emap.slots_per_disk * self.config.fill_fraction)
        per_disk = max(per_disk, -(-array.num_extents // array.num_disks))
        hottest = self.heat.hottest_first()
        moves: list[tuple[int, int]] = []
        for rank, extent in enumerate(hottest):
            if len(moves) >= self.config.max_moves_per_period:
                break
            desired = min(rank // per_disk, array.num_disks - 1)
            if emap.disk_of(int(extent)) != desired:
                moves.append((int(extent), desired))
        return MigrationPlan(moves=moves)

    def describe(self) -> str:
        return f"PDC(period={self.config.period_s:g}s, cap={self.config.max_moves_per_period})"
