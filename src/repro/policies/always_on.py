"""Base: every disk at full speed, no power management.

This is the paper's reference point: it defines 100% energy and the best
achievable response time. Every scheme's savings are reported relative
to this policy, and the response-time goal is defined as a multiple of
this policy's average response time.
"""

from __future__ import annotations

import typing

from repro.policies.base import PowerPolicy

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runner import ArraySimulation


class AlwaysOnPolicy(PowerPolicy):
    """Keep all disks spinning at full speed for the whole run."""

    name = "Base"

    def attach(self, sim: "ArraySimulation") -> None:
        super().attach(sim)
        sim.array.set_all_speeds(sim.array.config.spec.max_rpm)
