"""Oracle: the offline energy lower bound.

An idealized scheme no online system can beat, used as the reference
curve above Hibernator in sensitivity plots:

* it knows the **future** — each epoch is configured from the *actual*
  per-extent request rates of the upcoming epoch, not a prediction from
  the past;
* reconfiguration is **free** — data moves to its target tier by map
  rewrite (no migration I/O) and the optimizer's choice is applied with
  the same spindle transitions as any real scheme, but without
  migration traffic competing for the disks.

The gap between Hibernator and the oracle measures what better
prediction and cheaper migration could still buy; the gap between the
oracle and Base is the total opportunity in the workload.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.layout import identity_layout
from repro.core.response_model import MG1ResponseModel
from repro.core.speed_setting import SpeedSettingConfig, solve_speed_assignment
from repro.policies.base import PowerPolicy

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runner import ArraySimulation


class OraclePolicy(PowerPolicy):
    """Perfect-knowledge, free-migration epoch controller.

    Args:
        epoch_seconds: reconfiguration period (match the Hibernator run
            being compared against).
        speed_setting: CR optimizer knobs; the optimizer itself is the
            same as Hibernator's — only its inputs are clairvoyant.
    """

    name = "Oracle"

    def __init__(
        self,
        epoch_seconds: float = 3600.0,
        speed_setting: SpeedSettingConfig | None = None,
    ) -> None:
        super().__init__()
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.epoch_seconds = epoch_seconds
        self.speed_setting = speed_setting or SpeedSettingConfig(change_penalty_joules=0.0)
        self._epoch_rates: list[np.ndarray] = []
        self._mean_size = 4096.0
        self._boundaries: tuple[int, ...] | None = None

    def attach(self, sim: "ArraySimulation") -> None:
        super().attach(sim)
        self._epoch_rates = self._scan_trace(sim)
        self._mean_size = float(sim.trace.sizes.mean()) if len(sim.trace) else 4096.0
        self._boundaries = None
        self._apply_epoch(0)
        if len(self._epoch_rates) > 1:
            sim.engine.schedule(self.epoch_seconds, self._boundary, 1)

    def _scan_trace(self, sim: "ArraySimulation") -> list[np.ndarray]:
        """Exact per-extent request rates for every upcoming epoch."""
        trace = sim.trace
        num_extents = sim.array.num_extents
        duration = max(trace.duration, self.epoch_seconds)
        epochs = int(np.ceil(duration / self.epoch_seconds))
        rates: list[np.ndarray] = []
        for k in range(epochs):
            lo = k * self.epoch_seconds
            hi = lo + self.epoch_seconds
            i0 = int(np.searchsorted(trace.times, lo, side="left"))
            i1 = int(np.searchsorted(trace.times, hi, side="left"))
            counts = np.bincount(trace.extents[i0:i1], minlength=num_extents)
            rates.append(counts.astype(np.float64) / self.epoch_seconds)
        return rates

    def _boundary(self, index: int) -> None:
        sim = self.sim
        assert sim is not None
        self._apply_epoch(index)
        if index + 1 < len(self._epoch_rates):
            sim.engine.schedule_after(self.epoch_seconds, self._boundary, index + 1)

    def _apply_epoch(self, index: int) -> None:
        sim = self.sim
        assert sim is not None
        array = sim.array
        rates = self._epoch_rates[index]
        model = MG1ResponseModel(array.disks[0].mechanics, mean_request_bytes=self._mean_size)
        assignment = solve_speed_assignment(
            heat=rates,
            num_disks=array.num_disks,
            model=model,
            spec=array.config.spec,
            epoch_seconds=self.epoch_seconds,
            goal_s=sim.goal_s,
            prev_boundaries=self._boundaries,
            config=self.speed_setting,
        )
        self._boundaries = assignment.boundaries
        layout = identity_layout(assignment)
        for disk in array.disks:
            if index == 0:
                disk.force_speed(layout.rpm_of_disk(disk.index))
            else:
                disk.set_speed(layout.rpm_of_disk(disk.index))
        # Free migration: rewrite the map, no I/O.
        target = layout.target_tiers(np.argsort(-rates, kind="stable"))
        emap = array.extent_map
        for extent in np.argsort(-rates, kind="stable"):
            extent = int(extent)
            tier = int(target[extent])
            if layout.tier_of_disk(emap.disk_of(extent)) == tier:
                continue
            candidates = layout.disks_in_tier(tier)
            if not candidates:
                continue
            best = min(candidates, key=lambda d: len(emap.extents_on(d)))
            if emap.free_slots(best) > 0:
                emap.move(extent, best)

    def describe(self) -> str:
        return f"Oracle(epoch={self.epoch_seconds:g}s, free migration)"
