"""Power-management policies.

The paper compares Hibernator against the standard alternatives of its
era; each is reimplemented here from its published algorithm against the
same simulator API:

* :mod:`repro.policies.always_on` -- **Base**: every disk at full speed,
  no power management (the energy and performance reference point).
* :mod:`repro.policies.tpm` -- **TPM**: traditional threshold-based
  power management; spin a disk down after a fixed idle period, spin it
  back up on the next request.
* :mod:`repro.policies.drpm` -- **DRPM**: per-disk fine-grained dynamic
  RPM control driven by queue feedback (Gurumurthi et al.).
* :mod:`repro.policies.pdc` -- **PDC**: popular data concentration;
  periodically migrate the hottest data to the first disks and let the
  rest idle into standby.
* :mod:`repro.policies.maid` -- **MAID**: a few always-on cache disks
  absorb hot traffic; the remaining disks spin down when idle.
* :mod:`repro.policies.oracle` -- **Oracle**: offline lower bound with
  perfect future knowledge and free migration (not in the paper's
  comparison set; used as the reference curve above Hibernator).

Hibernator itself lives in :mod:`repro.core` (it is the paper's
contribution, not a baseline).
"""

from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.base import PowerPolicy
from repro.policies.drpm import DrpmConfig, DrpmPolicy
from repro.policies.maid import MaidConfig, MaidPolicy
from repro.policies.oracle import OraclePolicy
from repro.policies.pdc import PdcConfig, PdcPolicy
from repro.policies.tpm import TpmConfig, TpmPolicy

__all__ = [
    "PowerPolicy",
    "AlwaysOnPolicy",
    "TpmConfig",
    "TpmPolicy",
    "DrpmConfig",
    "DrpmPolicy",
    "PdcConfig",
    "PdcPolicy",
    "MaidConfig",
    "MaidPolicy",
    "OraclePolicy",
]
