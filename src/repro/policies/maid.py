"""MAID: Massive Array of Idle Disks (Colarelli & Grunwald, SC'02).

A few *cache disks* stay at full speed and absorb the hot traffic; the
*passive disks* that hold the primary copies spin down on an idle
threshold. Reads that hit the cache never wake a passive disk; misses go
to the passive disk and the block is copied into the cache (LRU).
Writes go to the cache (write-back); dirty blocks are destaged to their
home disk on eviction.

MAID was designed for near-line archival access patterns. Under
data-center load the cache disks saturate and the passive disks never
sleep long enough to pay for their spin-ups — the behaviour the paper's
comparison exposes.
"""

from __future__ import annotations

import typing
from collections import OrderedDict
from dataclasses import dataclass

from repro.policies.base import PowerPolicy
from repro.policies.tpm import IdleSpindownManager, breakeven_seconds
from repro.sim.request import IoKind, Request

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runner import ArraySimulation


@dataclass
class MaidConfig:
    """MAID knobs.

    Attributes:
        num_cache_disks: disks dedicated to the always-on cache.
        spindown_threshold_s: idle timeout for passive disks; None = the
            disk spec's break-even time.
        cache_reads: insert read-miss extents into the cache.
    """

    num_cache_disks: int = 2
    spindown_threshold_s: float | None = None
    cache_reads: bool = True

    def __post_init__(self) -> None:
        if self.num_cache_disks < 1:
            raise ValueError("MAID needs at least one cache disk")


class MaidPolicy(PowerPolicy):
    """Cache-disk front + spin-down passive disks.

    Requires the array to be built with
    ``initial_disks=tuple(range(num_cache_disks, num_disks))`` so the
    cache disks start data-free; :func:`maid_array_config` does this.
    """

    name = "MAID"

    def __init__(self, config: MaidConfig | None = None) -> None:
        super().__init__()
        self.config = config or MaidConfig()
        self._cache: "OrderedDict[int, tuple[int, int, bool]]" = OrderedDict()
        self._free_cache_slots: list[tuple[int, int]] = []
        self._manager: IdleSpindownManager | None = None
        self.cache_hits = 0
        self.cache_misses = 0
        self.destages = 0

    def attach(self, sim: "ArraySimulation") -> None:
        super().attach(sim)
        array = sim.array
        spec = array.config.spec
        c = self.config.num_cache_disks
        if c >= array.num_disks:
            raise ValueError(
                f"{c} cache disks leaves no passive disks in a {array.num_disks}-disk array"
            )
        occupied = array.extent_map.occupancy()
        for disk in range(c):
            if occupied[disk]:
                raise ValueError(
                    "cache disks must start data-free; build the array with "
                    "initial_disks excluding them (see maid_array_config)"
                )
        array.set_all_speeds(spec.max_rpm)
        self._cache = OrderedDict()
        self._free_cache_slots = [
            (disk, slot)
            for disk in range(c)
            for slot in range(array.config.slots_per_disk)
        ]
        self._free_cache_slots.reverse()  # pop() yields (0, 0) first
        self.cache_hits = 0
        self.cache_misses = 0
        self.destages = 0
        threshold = self.config.spindown_threshold_s
        if threshold is None:
            threshold = breakeven_seconds(spec)
        self._manager = IdleSpindownManager(sim.engine, threshold)
        for disk in array.disks[c:]:
            self._manager.manage(disk)
        array.redirect = self._redirect

    # -- cache logic -----------------------------------------------------------

    def _redirect(self, request: Request) -> tuple[int, int] | None:
        entry = self._cache.get(request.extent)
        if entry is not None:
            disk, slot, dirty = entry
            self._cache.move_to_end(request.extent)
            if request.kind is IoKind.WRITE and not dirty:
                self._cache[request.extent] = (disk, slot, True)
            self.cache_hits += 1
            return (disk, slot)
        self.cache_misses += 1
        if request.kind is IoKind.WRITE:
            # Write-back: allocate a cache slot and absorb the write there;
            # the home copy goes stale until destage.
            placement = self._insert(request.extent, dirty=True)
            if placement is not None:
                return placement
            return None
        if self.config.cache_reads:
            # Read miss: serve from home, then copy into the cache in the
            # background so the next access hits.
            placement = self._insert(request.extent, dirty=False)
            if placement is not None:
                disk, slot = placement
                sim = self.sim
                assert sim is not None
                sim.array.submit_background_op(disk, slot, IoKind.WRITE, request.size)
        return None

    def _insert(self, extent: int, dirty: bool) -> tuple[int, int] | None:
        if not self._free_cache_slots:
            self._evict_one()
        if not self._free_cache_slots:
            return None
        disk, slot = self._free_cache_slots.pop()
        self._cache[extent] = (disk, slot, dirty)
        return (disk, slot)

    def _evict_one(self) -> None:
        if not self._cache:
            return
        extent, (disk, slot, dirty) = self._cache.popitem(last=False)
        self._free_cache_slots.append((disk, slot))
        if dirty:
            sim = self.sim
            assert sim is not None
            array = sim.array
            home_disk = array.extent_map.disk_of(extent)
            home_slot = array.extent_map.slot_of(extent)
            array.submit_background_op(
                home_disk, home_slot, IoKind.WRITE, array.config.extent_bytes
            )
            self.destages += 1

    def describe(self) -> str:
        return f"MAID(cache_disks={self.config.num_cache_disks})"

    def extras(self) -> dict[str, float]:
        total = self.cache_hits + self.cache_misses
        return {
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_rate": self.cache_hits / total if total else 0.0,
            "destages": float(self.destages),
        }


def maid_array_config(base: "typing.Any", num_cache_disks: int) -> "typing.Any":
    """Copy an :class:`repro.disks.array.ArrayConfig` with initial data
    placement restricted to the passive disks."""
    import dataclasses

    return dataclasses.replace(
        base,
        initial_disks=tuple(range(num_cache_disks, base.num_disks)),
    )
