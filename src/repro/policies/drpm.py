"""DRPM: per-disk fine-grained dynamic RPM control.

Reimplementation of the Gurumurthi et al. (ISCA'03) scheme the paper
compares against: each disk reacts to its own short-term queue pressure,

* stepping **down one speed level** when its average queue over the last
  control window is essentially empty, and
* ramping **straight up to full speed** when the queue builds past a
  tolerance threshold.

This is the "fine-grained" end of the design space: it adapts within
seconds but changes speed constantly, serves many requests at low speed
before the ramp-up triggers, and — crucially — has no notion of a
response-time goal. Hibernator's coarse-grained CR setting plus explicit
goal tracking is the paper's answer to exactly these weaknesses.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.policies.base import PowerPolicy

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runner import ArraySimulation


@dataclass
class DrpmConfig:
    """DRPM knobs.

    Attributes:
        check_interval_s: control window; speed decisions at this period.
        samples_per_check: queue-length samples averaged per window.
        low_queue: average queue at or below which a disk steps down one
            level.
        high_queue: average queue at or above which a disk ramps to full
            speed.
        min_level: lowest speed-level index a disk may step down to.
    """

    check_interval_s: float = 10.0
    samples_per_check: int = 10
    low_queue: float = 0.1
    high_queue: float = 1.0
    min_level: int = 0

    def __post_init__(self) -> None:
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        if self.samples_per_check < 1:
            raise ValueError("samples_per_check must be >= 1")
        if self.low_queue >= self.high_queue:
            raise ValueError("low_queue must be below high_queue")


class DrpmPolicy(PowerPolicy):
    """Queue-feedback per-disk speed control (no spin-down to standby)."""

    name = "DRPM"

    def __init__(self, config: DrpmConfig | None = None) -> None:
        super().__init__()
        self.config = config or DrpmConfig()
        self._queue_sums: list[float] = []
        self._samples_taken = 0

    def attach(self, sim: "ArraySimulation") -> None:
        super().attach(sim)
        spec = sim.array.config.spec
        sim.array.set_all_speeds(spec.max_rpm)
        self._queue_sums = [0.0] * sim.array.num_disks
        self._samples_taken = 0
        interval = self.config.check_interval_s / self.config.samples_per_check
        sim.engine.schedule_after(interval, self._sample, interval)

    def _sample(self, interval: float) -> None:
        sim = self.sim
        assert sim is not None
        for disk in sim.array.disks:
            in_service = 1 if disk.busy else 0
            self._queue_sums[disk.index] += disk.queue_length + in_service
        self._samples_taken += 1
        if self._samples_taken >= self.config.samples_per_check:
            self._decide()
            self._queue_sums = [0.0] * sim.array.num_disks
            self._samples_taken = 0
        if sim.workload_open:
            sim.engine.schedule_after(interval, self._sample, interval)

    def _decide(self) -> None:
        sim = self.sim
        assert sim is not None
        spec = sim.array.config.spec
        levels = spec.rpm_levels
        for disk in sim.array.disks:
            avg_queue = self._queue_sums[disk.index] / self._samples_taken
            current = disk.requested_rpm
            level = spec.level_of(current)
            if avg_queue >= self.config.high_queue:
                if level != len(levels) - 1:
                    disk.set_speed(spec.max_rpm)
            elif avg_queue <= self.config.low_queue:
                if level > self.config.min_level:
                    disk.set_speed(levels[level - 1])

    def describe(self) -> str:
        c = self.config
        return (
            f"DRPM(window={c.check_interval_s:g}s, "
            f"low={c.low_queue:g}, high={c.high_queue:g})"
        )
