"""Power-management policy interface.

A policy observes the request stream and controls the array: disk
speeds, spin-downs and data placement (migration). The runner calls the
hooks below; everything else a policy does (periodic ticks, idle timers)
it schedules itself on ``sim.engine``.

Policies must be stateless across runs: ``attach`` receives the
simulation and is the place to initialize per-run state, so one policy
instance can be reused for several runs.
"""

from __future__ import annotations

import abc
import typing

from repro.obs.metrics import MetricsRegistry
from repro.sim.request import Request

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runner import ArraySimulation


class PowerPolicy(abc.ABC):
    """Base class for array power-management policies."""

    #: Human-readable name used in result tables.
    name: str = "policy"

    def __init__(self) -> None:
        self.sim: "ArraySimulation | None" = None
        #: Per-run named metrics; flattened into the result's ``extras``
        #: by :meth:`extras`. Recreated on every attach so a policy
        #: instance reused across runs cannot leak counts.
        self.metrics = MetricsRegistry()

    @abc.abstractmethod
    def attach(self, sim: "ArraySimulation") -> None:
        """Bind to a simulation run; initialize all per-run state here.

        Implementations must call ``super().attach(sim)`` equivalent
        behaviour by storing ``sim`` (the base class does it when called
        via ``PowerPolicy.attach(self, sim)``).
        """
        self.sim = sim
        self.metrics = MetricsRegistry()

    def on_request_arrival(self, request: Request) -> None:
        """Called just before a foreground request is submitted."""

    def on_request_complete(self, request: Request) -> None:
        """Called when a foreground request finishes."""

    def on_finish(self, now: float) -> None:
        """Called once after the trace has drained."""

    def on_disk_failed(self, disk: int, rebuild_active: bool = False) -> None:
        """Called when a disk fails (fault injection).

        ``rebuild_active`` is True when a rebuild is running (or about to
        start) for the failed disk's extents. Default: ignore — a policy
        that does nothing keeps working because the array itself routes
        around the failure; reacting (e.g. pinning speeds) is an
        optimization, not a correctness requirement.
        """

    def on_rebuild_complete(self) -> None:
        """Called when every extent of every failed disk is re-protected."""

    # -- online control hooks (repro serve) ----------------------------------

    def on_goal_changed(self, goal_s: float | None) -> None:
        """Called after the run's response-time goal changed mid-run.

        The simulation has already swapped its own deficit tracker by the
        time this fires (:meth:`ArraySimulation.set_goal`). Goal-aware
        policies react here — rebuild their guarantee machinery, re-plan
        at the next opportunity. Default: ignore, which is correct for
        goal-oblivious policies.
        """

    def force_boost(self, now: float) -> bool:
        """Operator-forced full-speed boost (serve ``force-boost``).

        Returns True when a boost was entered, False when the policy has
        no boost mechanism or is already boosted. Default: no mechanism.
        """
        return False

    def current_assignment(self) -> str | None:
        """One-line description of the current speed assignment, if the
        policy maintains one (serve ``status``). Default: None.
        """
        return None

    def describe(self) -> str:
        """One-line parameterization string for reports."""
        return self.name

    def extras(self) -> dict[str, float]:
        """Policy-specific scalar metrics merged into the run result.

        The default flattens :attr:`metrics`; policies that register
        instruments there need not override this at all.
        """
        return self.metrics.as_dict()
