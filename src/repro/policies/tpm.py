"""TPM: traditional threshold-based power management.

The classic two-state laptop-disk policy applied to an array: when a
disk has been idle for a fixed threshold, spin it down to standby; the
next request to hit it pays the full spin-up delay. The threshold
defaults to the *break-even time* — the idle duration at which the
energy saved in standby exactly pays for the spin-down + spin-up energy
— which makes the policy 2-competitive in the ski-rental sense.

On data-center workloads idle gaps per disk are almost always shorter
than the break-even (a few tens of seconds here), which is precisely why
the paper finds TPM saves ≈nothing on OLTP and hurts response time
whenever it does fire.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.disks.disk import DiskState, MultiSpeedDisk
from repro.disks.specs import DiskSpec
from repro.policies.base import PowerPolicy
from repro.sim.engine import Engine, EventHandle

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runner import ArraySimulation


def breakeven_seconds(spec: DiskSpec, rpm: int | None = None) -> float:
    """Idle time at which standby starts paying for the round trip.

    Solves ``(idle_watts - standby_watts) * t = spindown_J + spinup_J``
    for ``t`` at the given (default: full) speed.
    """
    if rpm is None:
        rpm = spec.max_rpm
    saving_rate = spec.idle_watts(rpm) - spec.standby_watts
    if saving_rate <= 0:
        raise ValueError(f"standby saves nothing at {rpm} rpm for {spec.name}")
    return (spec.spindown_joules + spec.spinup_joules) / saving_rate


class IdleSpindownManager:
    """Reusable idle-timeout spin-down machinery.

    Arms a timer whenever a managed disk goes idle; cancels it on
    activity; spins the disk down when it fires. TPM uses it for every
    disk; PDC and MAID reuse it for their passive disks.
    """

    def __init__(self, engine: Engine, threshold_s: float) -> None:
        if threshold_s <= 0:
            raise ValueError(f"threshold must be positive, got {threshold_s!r}")
        self.engine = engine
        self.threshold_s = threshold_s
        self._timers: dict[int, EventHandle] = {}
        self._managed: set[int] = set()

    def manage(self, disk: MultiSpeedDisk) -> None:
        """Start managing ``disk`` (hooks its idle/activity callbacks)."""
        self._managed.add(disk.index)
        disk.on_idle = self._disk_idle
        disk.on_activity = self._disk_activity
        if disk.state is DiskState.IDLE and disk.queue_length == 0:
            self._arm(disk)

    def unmanage(self, disk: MultiSpeedDisk) -> None:
        """Stop managing ``disk`` and cancel any pending timer."""
        self._managed.discard(disk.index)
        self._cancel(disk.index)
        disk.on_idle = None
        disk.on_activity = None

    def is_managed(self, disk_index: int) -> bool:
        return disk_index in self._managed

    def _arm(self, disk: MultiSpeedDisk) -> None:
        self._cancel(disk.index)
        self._timers[disk.index] = self.engine.schedule_after(
            self.threshold_s, self._fire, disk
        )

    def _cancel(self, disk_index: int) -> None:
        handle = self._timers.pop(disk_index, None)
        if handle is not None:
            handle.cancel()

    def _disk_idle(self, disk: MultiSpeedDisk) -> None:
        if disk.index in self._managed:
            self._arm(disk)

    def _disk_activity(self, disk: MultiSpeedDisk) -> None:
        self._cancel(disk.index)

    def _fire(self, disk: MultiSpeedDisk) -> None:
        self._timers.pop(disk.index, None)
        if disk.index not in self._managed:
            return
        if disk.state is DiskState.IDLE and disk.queue_length == 0:
            disk.spin_down()


@dataclass
class TpmConfig:
    """TPM knobs.

    Attributes:
        threshold_s: idle time before spin-down; None = the break-even
            time of the array's disk spec.
        threshold_multiple: scales the (default or explicit) threshold;
            sensitivity experiments sweep this.
    """

    threshold_s: float | None = None
    threshold_multiple: float = 1.0


class TpmPolicy(PowerPolicy):
    """Fixed-threshold spin-down on every disk; full speed when on."""

    name = "TPM"

    def __init__(self, config: TpmConfig | None = None) -> None:
        super().__init__()
        self.config = config or TpmConfig()
        self.threshold_s: float | None = None
        self._manager: IdleSpindownManager | None = None

    def attach(self, sim: "ArraySimulation") -> None:
        super().attach(sim)
        spec = sim.array.config.spec
        base = self.config.threshold_s
        if base is None:
            base = breakeven_seconds(spec)
        self.threshold_s = base * self.config.threshold_multiple
        sim.array.set_all_speeds(spec.max_rpm)
        self._manager = IdleSpindownManager(sim.engine, self.threshold_s)
        for disk in sim.array.disks:
            self._manager.manage(disk)

    def describe(self) -> str:
        if self.threshold_s is None:
            return "TPM(threshold=breakeven)"
        return f"TPM(threshold={self.threshold_s:.1f}s)"
