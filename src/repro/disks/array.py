"""The disk array: logical volume over N multi-speed disks.

The array owns the disks, the extent placement map and the fan-out of
logical requests into physical ops (optionally through the RAID-5
layer). It is policy-agnostic: power-management policies manipulate it
through :meth:`set_speed`/:meth:`set_all_speeds`, the placement map and
:meth:`migrate_extent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.disks.disk import MultiSpeedDisk
from repro.disks.mapping import ExtentMap
from repro.disks.power import PowerBreakdown
from repro.disks.raid import expand_request, expand_request_degraded
from repro.disks.specs import DiskSpec, ultrastar_36z15
from repro.obs.events import MigrationCancelled, MigrationMove, TraceEvent
from repro.sim.engine import Engine
from repro.sim.request import DiskOp, IoKind, Request, RequestClass

RequestCallback = Callable[[Request], None]


@dataclass
class ArrayConfig:
    """Shape and behaviour of the simulated array.

    Attributes:
        num_disks: array width.
        spec: per-disk hardware parameters.
        num_extents: logical extents exposed by the volume.
        extent_bytes: size of one extent (heat/migration granularity).
        slack_fraction: extra slot capacity per disk beyond the even
            share, as a fraction (0.2 = 20% headroom for migration).
        slots_override: explicit per-disk slot capacity; overrides the
            slack-derived value. Set to ``num_extents`` to model disks
            whose capacity never binds (e.g. PDC's concentration, which
            assumes the lead disks can absorb the whole working set).
        initial_disks: restrict initial extent placement to these disks
            (e.g. MAID's passive disks); None = all disks.
        raid5: expand writes through the RAID-5 layer.
        deterministic_latency: use expected rotational latency instead of
            sampling (simplifies analytic tests).
        seed: base seed for per-disk latency randomness.
        initial_layout: 'striped' or 'packed' initial extent placement.
    """

    num_disks: int = 24
    spec: DiskSpec = field(default_factory=ultrastar_36z15)
    num_extents: int = 2400
    extent_bytes: int = 1 << 20
    slack_fraction: float = 0.25
    raid5: bool = False
    deterministic_latency: bool = False
    seed: int = 42
    initial_layout: str = "striped"
    initial_disks: tuple[int, ...] | None = None
    slots_override: int | None = None
    scheduler: str = "fcfs"
    #: Controller write-back cache (NVRAM): foreground writes complete at
    #: controller latency and destage to the disks in the background.
    #: Physical I/O (and its energy) is unchanged; only write response
    #: times decouple from the spindles.
    write_cache: bool = False
    write_cache_latency_s: float = 1e-4

    def __post_init__(self) -> None:
        # Validate at construction so a zero-disk config fails loudly
        # here instead of as a ZeroDivisionError deep inside the
        # simulator (e.g. ArraySimulation's speed sampling).
        if self.num_disks < 1:
            raise ValueError(f"ArrayConfig.num_disks must be >= 1, got {self.num_disks!r}")
        if self.num_extents < 1:
            raise ValueError(f"ArrayConfig.num_extents must be >= 1, got {self.num_extents!r}")

    @property
    def slots_per_disk(self) -> int:
        if self.slots_override is not None:
            if self.slots_override <= 0:
                raise ValueError("slots_override must be positive")
            return self.slots_override
        data_disks = self.num_disks if self.initial_disks is None else len(self.initial_disks)
        if data_disks == 0:
            raise ValueError("initial_disks leaves no disk to hold data")
        even_share = -(-self.num_extents // data_disks)  # ceil division
        return max(even_share + 1, int(even_share * (1.0 + self.slack_fraction)))


class DiskArray:
    """N multi-speed disks behind one logical extent-addressed volume."""

    def __init__(self, engine: Engine, config: ArrayConfig) -> None:
        if config.num_disks < 1:
            raise ValueError("array needs at least one disk")
        if config.raid5 and config.num_disks < 2:
            raise ValueError("RAID-5 needs at least two disks")
        self.engine = engine
        self.config = config
        # Hot-path copies of immutable config fields: submit() consults
        # these per request and the config attribute chain is measurable.
        self._num_extents = config.num_extents
        self._raid5 = config.raid5
        self._write_cache = config.write_cache
        self.extent_map = ExtentMap(
            num_extents=config.num_extents,
            num_disks=config.num_disks,
            slots_per_disk=config.slots_per_disk,
            initial=config.initial_layout,
            allowed_disks=config.initial_disks,
        )
        seed_seq = np.random.SeedSequence(config.seed)
        child_seeds = seed_seq.spawn(config.num_disks)
        self.disks = [
            MultiSpeedDisk(
                engine=engine,
                spec=config.spec,
                index=i,
                total_blocks=config.slots_per_disk,
                rng=None if config.deterministic_latency else np.random.default_rng(child_seeds[i]),
                scheduler=config.scheduler,
            )
            for i in range(config.num_disks)
        ]
        # Traffic counters.
        self.foreground_completed = 0
        self.migration_extents_moved = 0
        self.migration_bytes = 0
        self._next_internal_req_id = -1
        # Slots promised to in-flight migrations, per destination disk;
        # counted against free_slots so concurrent moves cannot
        # oversubscribe a disk.
        self._reserved_slots = [0] * config.num_disks
        # Fault injection (RAID-5 degraded-mode experiments).
        self.failed_disks: set[int] = set()
        self.failed_requests = 0
        self.degraded_reads = 0
        # Optional placement override (used by caching policies such as
        # MAID): called with the request, returns (disk, block) to serve
        # it from, or None for the extent map's placement.
        self.redirect: Callable[[Request], tuple[int, int] | None] | None = None
        # Structured-trace hook (repro.obs); None = tracing disabled.
        self.emit: Callable[[TraceEvent], None] | None = None
        # Fired whenever a migration releases slot capacity (a reserved
        # slot is returned or a completed move frees the source slot);
        # the rebuilder uses it to re-queue unplaced extents the moment
        # a target becomes available, without polling timers.
        self.on_capacity_freed: Callable[[], None] | None = None

    def install_trace_hook(self, emit: Callable[[TraceEvent], None]) -> None:
        """Install the observability ``emit`` hook on the array and disks."""
        self.emit = emit
        for disk in self.disks:
            disk.emit = emit

    # -- request path --------------------------------------------------------

    def submit(self, request: Request, on_complete: RequestCallback | None = None) -> None:
        """Issue a logical request; ``on_complete(request)`` fires when the
        last physical op finishes."""
        if not 0 <= request.extent < self._num_extents:
            raise ValueError(f"extent {request.extent} out of range")
        placement = self.redirect(request) if self.redirect is not None else None
        if placement is not None and placement[0] in self.failed_disks:
            # The policy's redirect target (e.g. a MAID cache disk) has
            # died; fall through to the home placement, which the
            # degraded path below knows how to serve.
            placement = None
        if placement is not None:
            data_disk, data_block = placement
        else:
            data_disk = self.extent_map.disk_of(request.extent)
            data_block = self.extent_map.slot_of(request.extent)
        kind = request.kind
        if not self.failed_disks:
            if not self._raid5 or kind is IoKind.READ:
                # Healthy non-RAID (or RAID read) expansion is exactly one
                # op at the extent's placement; skip the PhysicalIo fan-out
                # on this, the dominant path. `physicals is None` marks it.
                physicals = None
            else:
                physicals = expand_request(
                    request,
                    data_disk=data_disk,
                    data_block=data_block,
                    num_disks=self.config.num_disks,
                    raid5=self.config.raid5,
                )
        else:
            physicals = expand_request_degraded(
                request,
                data_disk=data_disk,
                data_block=data_block,
                num_disks=self.config.num_disks,
                raid5=self.config.raid5,
                failed=self.failed_disks,
            )
            if physicals is None:
                # Unservable (no redundancy / double failure).
                request.failed = True
                request.completion = self.engine.now
                self.failed_requests += 1
                if on_complete is not None:
                    on_complete(request)
                return
            if data_disk in self.failed_disks and kind is IoKind.READ:
                self.degraded_reads += 1
        if (
            self._write_cache
            and kind is IoKind.WRITE
            and request.klass is RequestClass.FOREGROUND
        ):
            # Write-back cache: acknowledge now, destage in background.
            if physicals is None:
                self.submit_background_op(data_disk, data_block, kind, request.size)
            else:
                for phys in physicals:
                    self.submit_background_op(phys.disk, phys.block, phys.kind, phys.size)

            def _acknowledge(request: Request = request) -> None:
                request.completion = self.engine.now
                self.foreground_completed += 1
                if on_complete is not None:
                    on_complete(request)

            # Acknowledgements always fire: tuple fast path.
            self.engine.schedule_after_fast(self.config.write_cache_latency_s, _acknowledge)
            return

        request.ops_outstanding = 1 if physicals is None else len(physicals)

        def _op_done(op: DiskOp, request: Request = request) -> None:
            if op.failed:
                # A physical leg exhausted its retry budget (or its disk
                # died mid-retry): the logical request fails, but only
                # once every leg has unwound.
                request.failed = True
            request.ops_outstanding -= 1
            if request.ops_outstanding == 0:
                request.completion = self.engine.now
                if request.failed:
                    self.failed_requests += 1
                elif request.klass is RequestClass.FOREGROUND:
                    self.foreground_completed += 1
                if on_complete is not None:
                    on_complete(request)

        if physicals is None:
            self.disks[data_disk].submit(DiskOp(
                request=request,
                kind=kind,
                disk_index=data_disk,
                block=data_block,
                size=request.size,
                on_complete=_op_done,
            ))
            return
        for phys in physicals:
            op = DiskOp(
                request=request,
                kind=phys.kind,
                disk_index=phys.disk,
                block=phys.block,
                size=phys.size,
                on_complete=_op_done,
            )
            self.disks[phys.disk].submit(op)

    # -- background traffic -------------------------------------------------

    def submit_background_op(
        self,
        disk: int,
        block: int,
        kind: IoKind,
        size: int,
        on_complete: Callable[[DiskOp], None] | None = None,
    ) -> None:
        """Queue one physical op outside the foreground request path.

        Used for policy-internal traffic (cache fills, destages,
        migration legs). The op competes for disk time and energy like
        any other but is never counted in response-time statistics.

        Targeting a failed disk is not an error: the op is delivered
        back as failed (``op.failed``) without touching the disk, so
        failure-unaware policies keep running degraded.
        """
        marker = Request(
            req_id=self._next_internal_req_id,
            arrival=self.engine.now,
            kind=kind,
            extent=0,
            offset=0,
            size=size,
            klass=RequestClass.MIGRATION,
        )
        self._next_internal_req_id -= 1
        op = DiskOp(
            request=marker,
            kind=kind,
            disk_index=disk,
            block=block,
            size=size,
            on_complete=on_complete,
        )
        if disk in self.failed_disks:
            op.failed = True
            op.finished = self.engine.now
            if on_complete is not None:
                on_complete(op)
            return
        self.disks[disk].submit(op)

    # -- migration -------------------------------------------------------------

    def migrate_extent(
        self,
        extent: int,
        to_disk: int,
        on_complete: Callable[[int], None] | None = None,
    ) -> bool:
        """Move one extent to ``to_disk``: read source, write target,
        update the map.

        The read and write are real queued ops, so migration competes
        with foreground traffic for disk time and consumes energy — the
        overhead the paper charges against each scheme.

        Returns False (no ops issued) when the extent already lives on
        ``to_disk`` or the target has no free slot.
        """
        from_disk = self.extent_map.disk_of(extent)
        if from_disk == to_disk:
            return False
        if from_disk in self.failed_disks or to_disk in self.failed_disks:
            return False
        if self.extent_map.free_slots(to_disk) - self._reserved_slots[to_disk] <= 0:
            return False
        self._reserved_slots[to_disk] += 1
        size = self.config.extent_bytes

        def _abort(_reason_op: DiskOp) -> None:
            # Release the promised slot without moving the extent; the
            # caller observes the unchanged map via on_complete.
            self._reserved_slots[to_disk] -= 1
            if self.emit is not None:
                self.emit(MigrationCancelled(time=self.engine.now, unplaced=1))
            if on_complete is not None:
                on_complete(extent)
            self._notify_capacity_freed()

        def _write_done(op: DiskOp) -> None:
            if op.failed or to_disk in self.failed_disks:
                # The write never landed (retry exhaustion) or the target
                # died after draining it; the extent stays where it was.
                _abort(op)
                return
            self._reserved_slots[to_disk] -= 1
            self.extent_map.move(extent, to_disk)
            self.migration_extents_moved += 1
            self.migration_bytes += size
            if self.emit is not None:
                self.emit(MigrationMove(
                    time=self.engine.now,
                    extent=extent,
                    from_disk=from_disk,
                    to_disk=to_disk,
                ))
            if on_complete is not None:
                on_complete(extent)
            # The move vacated a slot on the source disk.
            self._notify_capacity_freed()

        def _read_done(op: DiskOp) -> None:
            if op.failed or to_disk in self.failed_disks:
                _abort(op)
                return
            # The write lands at whatever free slot the map will assign;
            # using the source slot as the physical position is a uniform
            # stand-in (placement is uniform either way).
            block = min(self.extent_map.slot_of(extent), self.config.slots_per_disk - 1)
            self.submit_background_op(to_disk, block, IoKind.WRITE, size, _write_done)

        self.submit_background_op(
            from_disk, self.extent_map.slot_of(extent), IoKind.READ, size, _read_done
        )
        return True

    def _notify_capacity_freed(self) -> None:
        if self.on_capacity_freed is not None:
            self.on_capacity_freed()

    # -- fault injection ------------------------------------------------------

    def fail_disk(self, index: int) -> None:
        """Fail one disk; subsequent requests route around it.

        With RAID-5, reads of its data reconstruct from the surviving
        disks and writes degrade to parity-only updates. Without RAID,
        requests addressing its extents fail.
        """
        if not 0 <= index < self.num_disks:
            raise ValueError(f"no disk {index}")
        self.failed_disks.add(index)
        self.disks[index].fail()

    # -- power control -----------------------------------------------------------

    def set_speed(self, disk_index: int, rpm: int) -> None:
        """Request a speed for one disk (0 = standby)."""
        self.disks[disk_index].set_speed(rpm)

    def set_all_speeds(self, rpm: int) -> None:
        """Request the same speed on every disk."""
        for disk in self.disks:
            disk.set_speed(rpm)

    def speeds(self) -> list[int]:
        """Current spindle speed of each disk."""
        return [disk.rpm for disk in self.disks]

    # -- accounting ----------------------------------------------------------------

    def total_energy(self, now: float | None = None) -> float:
        """Total joules consumed by all disks up to ``now`` (default: the
        engine clock). Does not close the meters."""
        if now is None:
            now = self.engine.now
        total = 0.0
        for disk in self.disks:
            disk.meter.update(now, disk.meter.watts, disk.meter.label)
            total += disk.meter.total_joules
        return total

    def power_breakdown(self, now: float | None = None) -> PowerBreakdown:
        """Array-wide energy breakdown by category."""
        if now is None:
            now = self.engine.now
        merged = PowerBreakdown()
        for disk in self.disks:
            disk.meter.update(now, disk.meter.watts, disk.meter.label)
            merged.merge(disk.meter.breakdown)
        return merged

    @property
    def num_disks(self) -> int:
        return self.config.num_disks

    @property
    def num_extents(self) -> int:
        return self.config.num_extents
