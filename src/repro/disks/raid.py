"""RAID-5 request expansion.

Hibernator's OLTP evaluation ran on RAID-5 volumes, where a small logical
write costs four physical I/Os (read old data, read old parity, write new
data, write new parity) spread over two disks, and a logical read costs
one. That 4x write amplification is the performance-relevant property,
so this layer models exactly that:

* logical read  -> 1 physical read at the extent's disk;
* logical write -> read+write at the extent's disk, read+write at the
  stripe's parity disk.

Parity placement is rotated by extent index over the *other* disks, a
faithful-enough stand-in for left-symmetric parity rotation under the
extent-migration remapping the policies perform (true stripe-coherent
parity would pin extents to stripes and forbid the migrations the paper
relies on; the paper's own migration treats parity the same way).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.request import IoKind, Request


@dataclass(frozen=True)
class PhysicalIo:
    """One physical disk operation produced by request expansion."""

    disk: int
    block: int
    kind: IoKind
    size: int


def parity_disk_for(extent: int, data_disk: int, num_disks: int) -> int:
    """Rotated parity disk for ``extent``, never equal to ``data_disk``."""
    if num_disks < 2:
        raise ValueError("RAID-5 needs at least 2 disks")
    offset = 1 + extent % (num_disks - 1)
    return (data_disk + offset) % num_disks


def expand_request(
    request: Request,
    data_disk: int,
    data_block: int,
    num_disks: int,
    raid5: bool,
    parity_block: int | None = None,
) -> list[PhysicalIo]:
    """Expand a logical request into physical ops.

    Args:
        request: the logical request.
        data_disk / data_block: current placement of the extent.
        num_disks: array width.
        raid5: when False, reads and writes are both a single op
            (striped / RAID-0 volume).
        parity_block: block position used for the parity ops; defaults to
            the data block (parity lives at the mirrored slot).
    """
    if not raid5 or request.kind is IoKind.READ:
        return [PhysicalIo(data_disk, data_block, request.kind, request.size)]
    pdisk = parity_disk_for(request.extent, data_disk, num_disks)
    pblock = data_block if parity_block is None else parity_block
    return [
        PhysicalIo(data_disk, data_block, IoKind.READ, request.size),
        PhysicalIo(data_disk, data_block, IoKind.WRITE, request.size),
        PhysicalIo(pdisk, pblock, IoKind.READ, request.size),
        PhysicalIo(pdisk, pblock, IoKind.WRITE, request.size),
    ]


def expand_request_degraded(
    request: Request,
    data_disk: int,
    data_block: int,
    num_disks: int,
    raid5: bool,
    failed: frozenset[int] | set[int],
) -> list[PhysicalIo] | None:
    """Expand a request when some disks have failed.

    RAID-5 survives one failure:

    * read with the data disk down -> *reconstruction*: read the stripe
      from every surviving disk (N-1 reads) and XOR;
    * write with the data disk down -> update parity only (the data's
      contribution is recomputed from the stripe on the next rebuild;
      we model the dominant cost, the parity read-modify-write);
    * write with the parity disk down -> plain data read-modify-write.

    Returns None when the request cannot be served (no RAID, or a second
    failure breaks the stripe) — the caller fails the request.
    """
    if data_disk not in failed:
        physicals = expand_request(request, data_disk, data_block, num_disks, raid5)
        if not raid5:
            return physicals
        survivors = [io for io in physicals if io.disk not in failed]
        # A write whose parity disk died degrades to the data ops alone.
        return survivors if survivors else None
    if not raid5:
        return None
    others = [d for d in range(num_disks) if d != data_disk]
    if any(d in failed for d in others):
        return None  # double failure: stripe unrecoverable
    if request.kind is IoKind.READ:
        return [PhysicalIo(d, data_block, IoKind.READ, request.size) for d in others]
    pdisk = parity_disk_for(request.extent, data_disk, num_disks)
    return [
        PhysicalIo(pdisk, data_block, IoKind.READ, request.size),
        PhysicalIo(pdisk, data_block, IoKind.WRITE, request.size),
    ]
