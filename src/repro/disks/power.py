"""Power-state accounting.

Each disk owns an :class:`EnergyMeter`. The disk reports every power
change (state transition, speed change, service start/stop) as a
``(time, watts, label)`` update; the meter integrates watts over
simulated time and keeps a per-label breakdown so experiments can report
where the joules went (idle vs. active vs. transitions vs. standby).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PowerBreakdown:
    """Energy (joules) by category, plus the time spent in each."""

    joules: dict[str, float] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, label: str, joules: float, seconds: float) -> None:
        self.joules[label] = self.joules.get(label, 0.0) + joules
        self.seconds[label] = self.seconds.get(label, 0.0) + seconds

    @property
    def total_joules(self) -> float:
        return sum(self.joules.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def merge(self, other: "PowerBreakdown") -> None:
        for label, j in other.joules.items():
            self.joules[label] = self.joules.get(label, 0.0) + j
        for label, s in other.seconds.items():
            self.seconds[label] = self.seconds.get(label, 0.0) + s

    def fraction(self, label: str) -> float:
        """Share of total energy attributed to ``label``."""
        total = self.total_joules
        if total == 0.0:
            return 0.0
        return self.joules.get(label, 0.0) / total


class EnergyMeter:
    """Integrates a piecewise-constant power draw over simulated time.

    The meter is label-aware: the power level *and* its category label
    are set together, and the energy accumulated until the next update is
    attributed to that label.
    """

    __slots__ = ("_watts", "_label", "_last_time", "breakdown", "_impulse_joules")

    def __init__(self, start_time: float = 0.0, watts: float = 0.0, label: str = "init") -> None:
        self._watts = watts
        self._label = label
        self._last_time = start_time
        self.breakdown = PowerBreakdown()
        self._impulse_joules = 0.0

    @property
    def watts(self) -> float:
        """Current power draw."""
        return self._watts

    @property
    def label(self) -> str:
        """Current accounting category."""
        return self._label

    def update(self, now: float, watts: float, label: str) -> None:
        """Close the current interval and start drawing ``watts``."""
        last = self._last_time
        if now < last:
            raise ValueError(f"time went backwards: {now} < {last}")
        elapsed = now - last
        if elapsed > 0.0:
            # Inlined PowerBreakdown.add: this runs twice per physical op
            # (service start and completion) and the method hop showed up
            # in profiles. Same arithmetic, same accumulation order.
            breakdown = self.breakdown
            joules, seconds = breakdown.joules, breakdown.seconds
            current = self._label
            joules[current] = joules.get(current, 0.0) + self._watts * elapsed
            seconds[current] = seconds.get(current, 0.0) + elapsed
        self._last_time = now
        self._watts = watts
        self._label = label

    def add_impulse(self, joules: float, label: str) -> None:
        """Account a fixed energy cost not tied to a time interval.

        Used for transition energies specified as a lump sum (e.g.
        spin-up joules) on top of — not instead of — the baseline draw.
        """
        if joules < 0:
            raise ValueError(f"negative impulse energy: {joules}")
        self.breakdown.add(label, joules, 0.0)
        self._impulse_joules += joules

    def finish(self, now: float) -> float:
        """Close the final interval and return total joules."""
        self.update(now, self._watts, self._label)
        return self.total_joules

    @property
    def total_joules(self) -> float:
        return self.breakdown.total_joules

    @property
    def impulse_joules(self) -> float:
        """Lump-sum energy added via :meth:`add_impulse` (transition costs)."""
        return self._impulse_joules
