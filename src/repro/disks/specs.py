"""Disk parameter sets.

The reference disk is derived from the IBM Ultrastar 36Z15, the drive
both DRPM (Gurumurthi et al., ISCA'03) and Hibernator built their
multi-speed models on. Multi-speed disks never shipped, so — exactly as
the paper did — we extrapolate the single-speed data sheet to multiple
speed levels with the standard scaling laws:

* rotational latency and (internal) transfer rate scale linearly with
  RPM;
* spindle power scales with RPM**2.8 on top of a constant electronics
  floor;
* seek time is RPM-independent (arm, not spindle).

All times are seconds, sizes bytes, power watts, energy joules.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class DiskSpec:
    """Complete parameter set for one multi-speed disk model.

    Attributes:
        name: human-readable model name.
        capacity_bytes: usable capacity.
        rpm_levels: supported spindle speeds, ascending, all > 0.
            Standby (spindle stopped) is implicit and not listed here.
        avg_seek_s: average seek time over uniformly random request pairs.
        min_seek_s: single-track seek time.
        max_transfer_bps: sustained media transfer rate at full speed.
        electronics_watts: RPM-independent power floor while spinning.
        spindle_watts_full: spindle power at the highest RPM level
            (idle power at full speed = electronics + spindle_full).
        spindle_exponent: exponent of the spindle power law (2.8).
        seek_watts: extra power drawn while seeking/transferring.
        standby_watts: power with the spindle stopped.
        spinup_s / spinup_joules: standby -> full-speed transition.
        spindown_s / spindown_joules: full-speed -> standby transition.
        speed_change_s_full / speed_change_joules_full: time/energy of a
            speed change across the full RPM range; a change over a
            fraction f of the range costs f times these (linear model).
    """

    name: str
    capacity_bytes: int
    rpm_levels: tuple[int, ...]
    avg_seek_s: float
    min_seek_s: float
    max_transfer_bps: float
    electronics_watts: float
    spindle_watts_full: float
    spindle_exponent: float
    seek_watts: float
    standby_watts: float
    spinup_s: float
    spinup_joules: float
    spindown_s: float
    spindown_joules: float
    speed_change_s_full: float
    speed_change_joules_full: float

    def __post_init__(self) -> None:
        if not self.rpm_levels:
            raise ValueError("rpm_levels must not be empty")
        if any(r <= 0 for r in self.rpm_levels):
            raise ValueError(f"rpm levels must be positive: {self.rpm_levels}")
        if list(self.rpm_levels) != sorted(set(self.rpm_levels)):
            raise ValueError(f"rpm levels must be ascending and unique: {self.rpm_levels}")
        if self.min_seek_s > self.avg_seek_s:
            raise ValueError("min_seek_s cannot exceed avg_seek_s")

    @property
    def max_rpm(self) -> int:
        return self.rpm_levels[-1]

    @property
    def min_rpm(self) -> int:
        return self.rpm_levels[0]

    @property
    def num_levels(self) -> int:
        return len(self.rpm_levels)

    def level_of(self, rpm: int) -> int:
        """Index of ``rpm`` within :attr:`rpm_levels` (raises if absent)."""
        try:
            return self.rpm_levels.index(rpm)
        except ValueError:
            raise ValueError(f"{rpm} rpm is not a level of {self.name}: {self.rpm_levels}") from None

    # -- derived mechanical quantities ------------------------------------

    def rotation_s(self, rpm: int) -> float:
        """Time of one full platter rotation at ``rpm``."""
        if rpm <= 0:
            raise ValueError(f"rpm must be positive, got {rpm}")
        return 60.0 / rpm

    def transfer_bps(self, rpm: int) -> float:
        """Sustained transfer rate at ``rpm`` (linear in RPM)."""
        return self.max_transfer_bps * (rpm / self.max_rpm)

    # -- derived power quantities ------------------------------------------

    def idle_watts(self, rpm: int) -> float:
        """Power while spinning at ``rpm`` with no I/O in service."""
        if rpm == 0:
            return self.standby_watts
        frac = rpm / self.max_rpm
        return self.electronics_watts + self.spindle_watts_full * frac**self.spindle_exponent

    def active_watts(self, rpm: int) -> float:
        """Power while seeking or transferring at ``rpm``."""
        if rpm == 0:
            raise ValueError("cannot be active at 0 rpm")
        return self.idle_watts(rpm) + self.seek_watts

    def transition_cost(self, from_rpm: int, to_rpm: int) -> tuple[float, float]:
        """(seconds, joules) to move the spindle between two speeds.

        ``0`` denotes standby on either side. Full spin-up/spin-down use
        the data-sheet figures; changes between spinning levels scale
        linearly with the RPM distance covered.
        """
        if from_rpm == to_rpm:
            return (0.0, 0.0)
        if from_rpm == 0:
            frac = to_rpm / self.max_rpm
            return (self.spinup_s * frac, self.spinup_joules * frac)
        if to_rpm == 0:
            frac = from_rpm / self.max_rpm
            return (self.spindown_s * frac, self.spindown_joules * frac)
        frac = abs(to_rpm - from_rpm) / self.max_rpm
        return (self.speed_change_s_full * frac, self.speed_change_joules_full * frac)

    def with_levels(self, rpm_levels: tuple[int, ...]) -> "DiskSpec":
        """Copy of this spec with a different set of speed levels."""
        return replace(self, rpm_levels=tuple(sorted(rpm_levels)))


def ultrastar_36z15(num_levels: int = 5) -> DiskSpec:
    """The paper's reference disk: IBM Ultrastar 36Z15, multi-speed.

    Data-sheet constants (36.7 GB, 15000 RPM, 3.4 ms average seek,
    55 MB/s, 10.2 W idle / 13.5 W active / 2.5 W standby, 10.9 s / 135 J
    spin-up) extended with ``num_levels`` evenly spaced speed levels from
    ``15000 / num_levels`` up to 15000 RPM. ``num_levels=5`` gives the
    default {3000, 6000, 9000, 12000, 15000} configuration; experiment F7
    sweeps this parameter.
    """
    return make_multispeed_spec(num_levels=num_levels)


def make_multispeed_spec(
    num_levels: int = 5,
    max_rpm: int = 15_000,
    name: str | None = None,
) -> DiskSpec:
    """Build an Ultrastar-36Z15-derived spec with ``num_levels`` speeds.

    Levels are evenly spaced: ``max_rpm * k / num_levels`` for
    ``k = 1..num_levels``. ``num_levels=1`` yields a conventional
    single-speed disk (the Base/TPM hardware).
    """
    if num_levels < 1:
        raise ValueError(f"num_levels must be >= 1, got {num_levels}")
    if max_rpm <= 0 or max_rpm % num_levels:
        raise ValueError(f"max_rpm {max_rpm} must be a positive multiple of num_levels {num_levels}")
    step = max_rpm // num_levels
    levels = tuple(step * k for k in range(1, num_levels + 1))
    if name is None:
        name = f"ultrastar-36z15-ms{num_levels}"
    return DiskSpec(
        name=name,
        capacity_bytes=36 * GIB,
        rpm_levels=levels,
        avg_seek_s=3.4e-3,
        min_seek_s=0.6e-3,
        max_transfer_bps=55 * 1e6,
        electronics_watts=2.5,
        spindle_watts_full=7.7,
        spindle_exponent=2.8,
        seek_watts=3.3,
        standby_watts=2.5,
        spinup_s=10.9,
        spinup_joules=135.0,
        spindown_s=1.5,
        spindown_joules=13.0,
        # DRPM-style speed changes between spinning levels are far
        # cheaper than a cold spin-up: ~2 s across the full RPM range.
        speed_change_s_full=2.0,
        speed_change_joules_full=20.0,
    )
