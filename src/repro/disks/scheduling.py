"""Per-disk queue scheduling disciplines.

The disk serves one op at a time; the discipline decides which queued op
goes next:

* :class:`FcfsQueue` — arrival order. What the paper (and the M/G/1
  prediction the CR optimizer uses) assumes.
* :class:`SstfQueue` — shortest seek time first: always the op nearest
  the head. Cuts seek time under load at the cost of potential
  starvation of far-away ops.
* :class:`ScanQueue` — the elevator: sweep the head in one direction
  serving everything on the way, reverse at the last request. Bounded
  unfairness, near-SSTF seek efficiency.

Disciplines only reorder *within a disk's queue*; they are orthogonal to
the array-level power policies, and the scheduler ablation benchmark
(A5) measures how much they shift the energy/latency picture.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass

from repro.sim.request import DiskOp


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff budget for transiently failed disk ops.

    A disk op hit by an injected transient error is re-serviced after an
    exponential backoff until either an attempt succeeds or the budget
    runs out, at which point the op (and its parent request) fails.

    Attributes:
        max_attempts: total service attempts per op, including the
            first; ``1`` disables retries entirely.
        backoff_s: delay before the first retry, in seconds.
        backoff_multiplier: factor applied to the delay per further
            retry (``backoff_s * multiplier ** (attempt - 1)``).
    """

    max_attempts: int = 3
    backoff_s: float = 0.005
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_s * self.backoff_multiplier ** (attempt - 1)


class QueueDiscipline(abc.ABC):
    """Order ops waiting for one disk."""

    __slots__ = ()

    name = "discipline"

    @abc.abstractmethod
    def push(self, op: DiskOp) -> None:
        """Add an op to the queue."""

    @abc.abstractmethod
    def pop(self, head_block: int) -> DiskOp:
        """Remove and return the next op to serve given the head position.

        Raises IndexError when empty.
        """

    @abc.abstractmethod
    def __len__(self) -> int: ...

    def __bool__(self) -> bool:
        # Subclasses override with a direct truth test on their storage;
        # this generic fallback costs a __len__ dispatch per emptiness
        # check, which the disk does twice per op.
        return len(self) > 0

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop all queued ops (used only by tests/teardown)."""


class FcfsQueue(QueueDiscipline):
    """First come, first served."""

    name = "fcfs"
    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: deque[DiskOp] = deque()

    def push(self, op: DiskOp) -> None:
        self._queue.append(op)

    def pop(self, head_block: int) -> DiskOp:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def clear(self) -> None:
        self._queue.clear()


class SstfQueue(QueueDiscipline):
    """Shortest seek time first: nearest block to the head wins.

    Ties break toward the earliest-queued op, keeping the schedule
    deterministic.
    """

    name = "sstf"
    __slots__ = ("_ops",)

    def __init__(self) -> None:
        self._ops: list[DiskOp] = []

    def push(self, op: DiskOp) -> None:
        self._ops.append(op)

    def pop(self, head_block: int) -> DiskOp:
        if not self._ops:
            raise IndexError("pop from empty queue")
        best_index = 0
        best_distance = abs(self._ops[0].block - head_block)
        for i, op in enumerate(self._ops[1:], start=1):
            distance = abs(op.block - head_block)
            if distance < best_distance:
                best_index, best_distance = i, distance
        return self._ops.pop(best_index)

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def clear(self) -> None:
        self._ops.clear()


class ScanQueue(QueueDiscipline):
    """Elevator (SCAN): serve in the sweep direction, reverse at the end."""

    name = "scan"
    __slots__ = ("_ops", "_direction")

    def __init__(self) -> None:
        self._ops: list[DiskOp] = []
        self._direction = 1  # +1 toward higher blocks

    def push(self, op: DiskOp) -> None:
        self._ops.append(op)

    def pop(self, head_block: int) -> DiskOp:
        if not self._ops:
            raise IndexError("pop from empty queue")
        chosen = self._nearest_in_direction(head_block, self._direction)
        if chosen is None:
            self._direction = -self._direction
            chosen = self._nearest_in_direction(head_block, self._direction)
        assert chosen is not None  # some op must lie on one side
        return self._ops.pop(chosen)

    def _nearest_in_direction(self, head_block: int, direction: int) -> int | None:
        best_index: int | None = None
        best_distance = None
        for i, op in enumerate(self._ops):
            delta = (op.block - head_block) * direction
            if delta < 0:
                continue
            if best_distance is None or delta < best_distance:
                best_index, best_distance = i, delta
        return best_index

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def clear(self) -> None:
        self._ops.clear()
        self._direction = 1


_DISCIPLINES = {
    "fcfs": FcfsQueue,
    "sstf": SstfQueue,
    "scan": ScanQueue,
}


def make_discipline(name: str) -> QueueDiscipline:
    """Instantiate a discipline by name ('fcfs', 'sstf', 'scan')."""
    try:
        return _DISCIPLINES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling discipline {name!r}; choose from {sorted(_DISCIPLINES)}"
        ) from None
