"""RAID-5 rebuild: re-protecting data after a disk failure.

After :meth:`DiskArray.fail_disk`, the dead disk's extents are served in
degraded mode (reconstruction reads fan out to every survivor). The
rebuilder removes that exposure: extent by extent, it

1. issues one reconstruction read on each surviving disk,
2. writes the recovered extent to the least-loaded healthy disk with a
   free slot (distributed sparing — no dedicated hot spare needed), and
3. atomically remaps the extent, after which requests stop touching the
   dead disk.

Rebuild I/O is real background traffic: it competes with foreground
requests for disk time and energy, which is exactly the degraded-window
trade-off (rebuild fast and hurt latency, or rebuild slow and stay
exposed) that the concurrency bound expresses.

The manager is multi-failure aware: a second failure mid-rebuild is
folded in via :meth:`add_failure`, extents whose reconstruction was
invalidated by that failure (a survivor died, or the write target died)
abort and re-queue against the new survivor set, and extents that found
no healthy disk with a free slot wait in an *unplaced* backlog that
drains the moment the array signals freed capacity
(:attr:`DiskArray.on_capacity_freed`) — no polling timers, so an idle
engine still drains.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.disks.array import DiskArray
from repro.obs.events import RebuildProgress
from repro.sim.request import DiskOp, IoKind


class RebuildManager:
    """Rebuilds failed disks' extents with bounded concurrency."""

    def __init__(self, array: DiskArray, max_inflight: int = 2) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.array = array
        self.max_inflight = max_inflight
        self.rebuilt = 0
        #: Extents ever scheduled (across start + add_failure rounds).
        self.total_scheduled = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._pending: deque[int] = deque()
        #: Extents that found no healthy disk with a free slot; they
        #: re-enter ``_pending`` on the array's capacity-freed signal.
        self._unplaced: list[int] = []
        self._inflight = 0
        self._on_done: Callable[["RebuildManager"], None] | None = None
        self._started = False
        # Chain onto the array's capacity signal so unplaced extents
        # retry the moment a migration returns or frees a slot.
        previous = array.on_capacity_freed

        def _chained() -> None:
            if previous is not None:
                previous()
            self._capacity_freed()

        array.on_capacity_freed = _chained

    @property
    def active(self) -> bool:
        """Reconstruction work is queued or in flight (an unplaced
        backlog alone is *stalled*, not active — it needs capacity)."""
        return self._inflight > 0 or bool(self._pending)

    @property
    def unplaced(self) -> int:
        """Extents stalled waiting for a healthy disk with a free slot."""
        return len(self._unplaced)

    @property
    def complete(self) -> bool:
        """True once every scheduled extent is re-protected. False while
        anything is pending, in flight or unplaced."""
        return (
            self._started
            and self._inflight == 0
            and not self._pending
            and not self._unplaced
        )

    def start(
        self,
        failed_disk: int,
        on_done: Callable[["RebuildManager"], None] | None = None,
    ) -> int:
        """Begin rebuilding every extent resident on ``failed_disk``.

        Returns the number of extents scheduled. ``on_done`` fires when
        every scheduled extent has been re-protected (including the
        zero-extent case) — *not* while extents remain unplaced. It is
        kept installed, so it fires again if :meth:`add_failure` reopens
        the rebuild and that round completes too.
        """
        if self.active or self._unplaced:
            raise RuntimeError("rebuild already in progress")
        if failed_disk not in self.array.failed_disks:
            raise ValueError(f"disk {failed_disk} has not failed; nothing to rebuild")
        self._pending = deque(sorted(self.array.extent_map.extents_on(failed_disk)))
        self._on_done = on_done
        self.rebuilt = 0
        self._unplaced = []
        self.started_at = self.array.engine.now
        self.finished_at = None
        self._started = True
        scheduled = len(self._pending)
        self.total_scheduled = scheduled
        self._pump()
        return scheduled

    def add_failure(self, failed_disk: int) -> int:
        """Fold a further failure into a rebuild already started.

        Enqueues the newly failed disk's extents behind whatever is
        still queued (extents in flight against it abort and re-queue on
        their own when their ops unwind). Returns the number of extents
        scheduled.
        """
        if not self._started:
            raise RuntimeError("call start() for the first failure")
        if failed_disk not in self.array.failed_disks:
            raise ValueError(f"disk {failed_disk} has not failed; nothing to rebuild")
        extents = sorted(self.array.extent_map.extents_on(failed_disk))
        self._pending.extend(extents)
        self.total_scheduled += len(extents)
        self.finished_at = None
        self._emit_progress()
        self._pump()
        return len(extents)

    def _healthy_target(self) -> int | None:
        emap = self.array.extent_map
        best: int | None = None
        best_occupancy = None
        for disk in range(self.array.num_disks):
            if disk in self.array.failed_disks:
                continue
            if emap.free_slots(disk) - self.array._reserved_slots[disk] <= 0:
                continue
            occupancy = len(emap.extents_on(disk))
            if best_occupancy is None or occupancy < best_occupancy:
                best, best_occupancy = disk, occupancy
        return best

    def _capacity_freed(self) -> None:
        """Array signal: slot capacity changed; retry the backlog."""
        if not self._unplaced:
            return
        self._pending.extend(self._unplaced)
        self._unplaced.clear()
        self._pump()

    def _pump(self) -> None:
        while self._inflight < self.max_inflight and self._pending:
            extent = self._pending.popleft()
            if not self._rebuild_one(extent):
                self._unplaced.append(extent)
                self._emit_progress()
        if (
            self._started
            and self._inflight == 0
            and not self._pending
            and not self._unplaced
            and self.finished_at is None
        ):
            self.finished_at = self.array.engine.now
            if self._on_done is not None:
                self._on_done(self)

    def _abort_extent(self, extent: int, target: int) -> None:
        """Unwind one in-flight extent whose reconstruction became
        invalid (a survivor or the target died, or an op failed) and
        re-queue it against the current survivor set."""
        self.array._reserved_slots[target] -= 1
        self._inflight -= 1
        self._pending.append(extent)
        self.finished_at = None
        self._emit_progress()
        self._pump()

    def _rebuild_one(self, extent: int) -> bool:
        array = self.array
        target = self._healthy_target()
        if target is None:
            return False
        survivors = [
            d for d in range(array.num_disks) if d not in array.failed_disks
        ]
        if not survivors:
            return False  # nothing left to reconstruct from
        array._reserved_slots[target] += 1
        self._inflight += 1
        slot = array.extent_map.slot_of(extent)
        block = min(slot, array.config.slots_per_disk - 1)
        size = array.config.extent_bytes
        state = {"reads": len(survivors), "aborted": False}

        def _read_done(op: DiskOp) -> None:
            # Re-check the survivor set on every completion: a disk that
            # failed mid-extent invalidates the reconstruction, and the
            # countdown must never complete against a dead disk.
            if op.failed or op.disk_index in array.failed_disks:
                state["aborted"] = True
            state["reads"] -= 1
            if state["reads"] > 0:
                return
            if state["aborted"] or target in array.failed_disks:
                self._abort_extent(extent, target)
                return
            array.submit_background_op(target, block, IoKind.WRITE, size, _write_done)

        def _write_done(op: DiskOp) -> None:
            if op.failed or target in array.failed_disks:
                self._abort_extent(extent, target)
                return
            array._reserved_slots[target] -= 1
            array.extent_map.move(extent, target)
            self.rebuilt += 1
            self._inflight -= 1
            self._emit_progress()
            self._pump()

        for disk in survivors:
            array.submit_background_op(disk, block, IoKind.READ, size, _read_done)
        return True

    def _emit_progress(self) -> None:
        if self.array.emit is not None:
            self.array.emit(RebuildProgress(
                time=self.array.engine.now,
                rebuilt=self.rebuilt,
                unplaced=len(self._unplaced),
                pending=len(self._pending),
                total=self.total_scheduled,
            ))

    @property
    def duration_s(self) -> float | None:
        """Wall time of the completed rebuild (None while running)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at
