"""RAID-5 rebuild: re-protecting data after a disk failure.

After :meth:`DiskArray.fail_disk`, the dead disk's extents are served in
degraded mode (reconstruction reads fan out to every survivor). The
rebuilder removes that exposure: extent by extent, it

1. issues one reconstruction read on each surviving disk,
2. writes the recovered extent to the least-loaded healthy disk with a
   free slot (distributed sparing — no dedicated hot spare needed), and
3. atomically remaps the extent, after which requests stop touching the
   dead disk.

Rebuild I/O is real background traffic: it competes with foreground
requests for disk time and energy, which is exactly the degraded-window
trade-off (rebuild fast and hurt latency, or rebuild slow and stay
exposed) that the concurrency bound expresses.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.disks.array import DiskArray
from repro.sim.request import DiskOp, IoKind


class RebuildManager:
    """Rebuilds one failed disk's extents with bounded concurrency."""

    def __init__(self, array: DiskArray, max_inflight: int = 2) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.array = array
        self.max_inflight = max_inflight
        self.rebuilt = 0
        self.unplaced = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._pending: deque[int] = deque()
        self._inflight = 0
        self._on_done: Callable[["RebuildManager"], None] | None = None

    @property
    def active(self) -> bool:
        return self._inflight > 0 or bool(self._pending)

    def start(
        self,
        failed_disk: int,
        on_done: Callable[["RebuildManager"], None] | None = None,
    ) -> int:
        """Begin rebuilding every extent resident on ``failed_disk``.

        Returns the number of extents scheduled. ``on_done`` fires when
        the queue drains (including the zero-extent case).
        """
        if self.active:
            raise RuntimeError("rebuild already in progress")
        if failed_disk not in self.array.failed_disks:
            raise ValueError(f"disk {failed_disk} has not failed; nothing to rebuild")
        self._pending = deque(sorted(self.array.extent_map.extents_on(failed_disk)))
        self._on_done = on_done
        self.rebuilt = 0
        self.unplaced = 0
        self.started_at = self.array.engine.now
        self.finished_at = None
        scheduled = len(self._pending)
        self._pump()
        return scheduled

    def _healthy_target(self) -> int | None:
        emap = self.array.extent_map
        best: int | None = None
        best_occupancy = None
        for disk in range(self.array.num_disks):
            if disk in self.array.failed_disks:
                continue
            if emap.free_slots(disk) - self.array._reserved_slots[disk] <= 0:
                continue
            occupancy = len(emap.extents_on(disk))
            if best_occupancy is None or occupancy < best_occupancy:
                best, best_occupancy = disk, occupancy
        return best

    def _pump(self) -> None:
        while self._inflight < self.max_inflight and self._pending:
            extent = self._pending.popleft()
            if not self._rebuild_one(extent):
                self.unplaced += 1
        if self._inflight == 0 and not self._pending:
            self.finished_at = self.array.engine.now
            if self._on_done is not None:
                callback, self._on_done = self._on_done, None
                callback(self)

    def _rebuild_one(self, extent: int) -> bool:
        array = self.array
        target = self._healthy_target()
        if target is None:
            return False
        array._reserved_slots[target] += 1
        self._inflight += 1
        survivors = [
            d for d in range(array.num_disks) if d not in array.failed_disks
        ]
        slot = array.extent_map.slot_of(extent)
        block = min(slot, array.config.slots_per_disk - 1)
        size = array.config.extent_bytes
        remaining = {"reads": len(survivors)}

        def _read_done(_op: DiskOp) -> None:
            remaining["reads"] -= 1
            if remaining["reads"] == 0:
                array.submit_background_op(target, block, IoKind.WRITE, size, _write_done)

        def _write_done(_op: DiskOp) -> None:
            array._reserved_slots[target] -= 1
            array.extent_map.move(extent, target)
            self.rebuilt += 1
            self._inflight -= 1
            self._pump()

        for disk in survivors:
            array.submit_background_op(disk, block, IoKind.READ, size, _read_done)
        return True

    @property
    def duration_s(self) -> float | None:
        """Wall time of the completed rebuild (None while running)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at
