"""Multi-speed disk substrate.

Models the hardware Hibernator assumes: disks that can spin at several
rotational speeds, serving requests at any speed, with power that falls
steeply at lower RPM (spindle power scales roughly with RPM^2.8).

* :mod:`repro.disks.specs` -- parameter sets (IBM Ultrastar 36Z15-derived
  multi-speed disk, plus factories for 2..N speed-level variants).
* :mod:`repro.disks.mechanics` -- service-time model (seek, rotation,
  transfer) and its analytic moments, used both to serve requests and to
  feed the CR optimizer's queueing predictions.
* :mod:`repro.disks.power` -- power states, transition costs and energy
  metering.
* :mod:`repro.disks.disk` -- a single multi-speed disk: FCFS queue,
  speed/standby state machine, energy integration.
* :mod:`repro.disks.mapping` -- extent-to-disk placement map with O(1)
  moves/swaps (the substrate under data migration).
* :mod:`repro.disks.array` -- the disk array: fans logical requests out
  to physical disk ops, optionally through the RAID-5 layer.
* :mod:`repro.disks.raid` -- RAID-5 request expansion (read-modify-write).
"""

from repro.disks.array import ArrayConfig, DiskArray
from repro.disks.disk import DiskState, MultiSpeedDisk
from repro.disks.mapping import ExtentMap
from repro.disks.mechanics import DiskMechanics, ServiceMoments
from repro.disks.power import EnergyMeter, PowerBreakdown
from repro.disks.specs import DiskSpec, make_multispeed_spec, ultrastar_36z15

__all__ = [
    "ArrayConfig",
    "DiskArray",
    "DiskState",
    "MultiSpeedDisk",
    "ExtentMap",
    "DiskMechanics",
    "ServiceMoments",
    "EnergyMeter",
    "PowerBreakdown",
    "DiskSpec",
    "make_multispeed_spec",
    "ultrastar_36z15",
]
