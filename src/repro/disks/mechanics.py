"""Mechanical service-time model for a multi-speed disk.

Service time of one physical op is ``seek + rotational latency +
transfer``:

* **Seek** depends only on arm travel distance, never on RPM. We use the
  standard square-root seek curve ``seek(d) = min_seek +
  (max_seek - min_seek) * sqrt(d)`` over the normalized travel distance
  ``d`` in [0, 1], with ``max_seek`` calibrated so the average over
  uniformly random request pairs matches the data-sheet average seek
  (for independent uniform positions, E[sqrt(d)] = 8/15).
* **Rotational latency** is uniform in one rotation period, which scales
  as 1/RPM — this is where low speeds hurt latency.
* **Transfer time** is ``size / rate`` with rate linear in RPM.

The same model is exposed in two forms: sampled (to serve simulated
requests) and analytic first/second moments (to feed the M/G/1
response-time predictor that Hibernator's CR optimizer uses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.disks.specs import DiskSpec

# For two independent uniform positions on [0, 1], the distance D has
# density 2(1 - d); these are E[sqrt(D)], E[D] under that density.
_MEAN_SQRT_DIST = 8.0 / 15.0
_MEAN_DIST = 1.0 / 3.0


@dataclass(frozen=True)
class ServiceMoments:
    """First and second moments of the service-time distribution.

    These are exactly what the M/G/1 waiting-time formula needs:
    ``W = lambda * second / (2 * (1 - lambda * mean))``.
    """

    mean: float
    second: float

    @property
    def variance(self) -> float:
        return max(0.0, self.second - self.mean * self.mean)


class DiskMechanics:
    """Service-time sampling and moments for one :class:`DiskSpec`."""

    def __init__(self, spec: DiskSpec) -> None:
        self.spec = spec
        self.min_seek_s = spec.min_seek_s
        # Calibrate the curve so random-pair average equals the sheet value.
        self.max_seek_s = spec.min_seek_s + (spec.avg_seek_s - spec.min_seek_s) / _MEAN_SQRT_DIST
        self._seek_span = self.max_seek_s - self.min_seek_s
        # (rotation_s, transfer_bps) per rpm: both are pure functions of
        # the speed level and service_time needs them on every op.
        self._rpm_cache: dict[int, tuple[float, float]] = {}

    # -- sampled service --------------------------------------------------

    def seek_time(self, distance_fraction: float) -> float:
        """Seek time for a normalized arm travel distance in [0, 1]."""
        if distance_fraction < 0.0 or distance_fraction > 1.0:
            raise ValueError(f"distance fraction out of range: {distance_fraction!r}")
        if distance_fraction == 0.0:
            return 0.0
        return self.min_seek_s + self._seek_span * math.sqrt(distance_fraction)

    def rotational_latency(self, rpm: int, rng: np.random.Generator | None = None) -> float:
        """Rotational latency at ``rpm``: sampled if ``rng`` given, else
        the expectation (half a rotation)."""
        rotation = self.spec.rotation_s(rpm)
        if rng is None:
            return rotation / 2.0
        return float(rng.uniform(0.0, rotation))

    def transfer_time(self, size_bytes: int, rpm: int) -> float:
        """Media transfer time for ``size_bytes`` at ``rpm``."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        return size_bytes / self.spec.transfer_bps(rpm)

    def service_time(
        self,
        from_block: int,
        to_block: int,
        total_blocks: int,
        size_bytes: int,
        rpm: int,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Full service time of one op.

        Args:
            from_block: current head position (block index).
            to_block: target block index.
            total_blocks: number of addressable blocks on the disk.
            size_bytes: transfer size.
            rpm: current spindle speed (must be a spinning speed).
            rng: randomness source for rotational latency; None uses the
                expected latency (deterministic mode).
        """
        if rpm <= 0:
            raise ValueError("disk must be spinning to serve an op")
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        # Inlined seek_time/rotational_latency/transfer_time (same math,
        # same operation order): this runs once per physical op and the
        # three method hops plus per-call rotation/bps recomputation were
        # measurable. The standalone methods remain for analytic callers.
        span = total_blocks - 1
        if span < 1:
            span = 1
        distance = abs(to_block - from_block) / span
        if distance > 1.0:
            distance = 1.0
        seek = 0.0 if distance == 0.0 else self.min_seek_s + self._seek_span * math.sqrt(distance)
        cached = self._rpm_cache.get(rpm)
        if cached is None:
            cached = self._rpm_cache[rpm] = (self.spec.rotation_s(rpm), self.spec.transfer_bps(rpm))
        rotation_s, bps = cached
        rotation = rotation_s / 2.0 if rng is None else float(rng.uniform(0.0, rotation_s))
        return seek + rotation + size_bytes / bps

    # -- analytic moments (for the CR optimizer) ---------------------------

    def seek_moments(self, seek_probability: float = 1.0) -> ServiceMoments:
        """Moments of the seek time under random placement.

        ``seek_probability`` is the fraction of ops that require a seek
        at all (sequential runs skip it).
        """
        if not 0.0 <= seek_probability <= 1.0:
            raise ValueError(f"seek probability out of range: {seek_probability!r}")
        m, c = self.min_seek_s, self._seek_span
        mean_if_seek = m + c * _MEAN_SQRT_DIST
        second_if_seek = m * m + 2.0 * m * c * _MEAN_SQRT_DIST + c * c * _MEAN_DIST
        return ServiceMoments(
            mean=seek_probability * mean_if_seek,
            second=seek_probability * second_if_seek,
        )

    def service_moments(
        self,
        rpm: int,
        mean_request_bytes: float,
        seek_probability: float = 1.0,
    ) -> ServiceMoments:
        """Moments of the full service time at ``rpm``.

        Seek, rotation and transfer are independent, so means add and
        variances add. Transfer is treated as deterministic at the mean
        request size (second-order effect for the workloads modelled).
        """
        if rpm <= 0:
            raise ValueError("moments are only defined for spinning speeds")
        seek = self.seek_moments(seek_probability)
        rotation = self.spec.rotation_s(rpm)
        rot_mean = rotation / 2.0
        rot_second = rotation * rotation / 3.0
        xfer = mean_request_bytes / self.spec.transfer_bps(rpm)
        mean = seek.mean + rot_mean + xfer
        variance = seek.variance + (rot_second - rot_mean * rot_mean)
        return ServiceMoments(mean=mean, second=variance + mean * mean)
