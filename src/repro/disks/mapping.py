"""Extent-to-disk placement map.

The array stores fixed-size logical *extents*; each extent lives in one
*slot* on one disk. Heat tracking, tiering and migration all operate at
extent granularity, so the map supports O(1) lookup, O(1) move (to any
disk with a free slot) and O(1) swap — the primitives the randomized
shuffling migration planner needs.

Slots double as physical positions: slot *k* on a disk is block *k* for
seek-distance purposes.
"""

from __future__ import annotations

import numpy as np


class ExtentMap:
    """Bidirectional extent <-> (disk, slot) mapping.

    Args:
        num_extents: number of logical extents.
        num_disks: number of disks.
        slots_per_disk: physical capacity of each disk in extents. Must
            satisfy ``num_disks * slots_per_disk >= num_extents``; the
            surplus is migration headroom.
        initial: 'striped' places extent ``e`` on disk ``e % num_disks``
            (round robin); 'packed' fills disk 0 first, then disk 1, etc.
        allowed_disks: restrict *initial* placement to these disks (MAID
            keeps its cache disks data-free at start). Later moves may
            target any disk.
    """

    def __init__(
        self,
        num_extents: int,
        num_disks: int,
        slots_per_disk: int,
        initial: str = "striped",
        allowed_disks: tuple[int, ...] | None = None,
    ) -> None:
        if num_extents <= 0 or num_disks <= 0 or slots_per_disk <= 0:
            raise ValueError("num_extents, num_disks and slots_per_disk must be positive")
        targets = tuple(range(num_disks)) if allowed_disks is None else tuple(allowed_disks)
        if not targets or any(not 0 <= d < num_disks for d in targets):
            raise ValueError(f"allowed_disks out of range: {allowed_disks!r}")
        if len(targets) * slots_per_disk < num_extents:
            raise ValueError(
                f"capacity {len(targets) * slots_per_disk} extents cannot hold {num_extents}"
            )
        self.num_extents = num_extents
        self.num_disks = num_disks
        self.slots_per_disk = slots_per_disk
        # Plain lists, not numpy: disk_of/slot_of sit on the per-request
        # path, and list indexing returns a native int with no boxing.
        self._disk: list[int] = [0] * num_extents
        self._slot: list[int] = [0] * num_extents
        self._residents: list[set[int]] = [set() for _ in range(num_disks)]
        self._free_slots: list[list[int]] = [
            list(range(slots_per_disk - 1, -1, -1)) for _ in range(num_disks)
        ]
        if initial == "striped":
            for extent in range(num_extents):
                self._place(extent, targets[extent % len(targets)])
        elif initial == "packed":
            for extent in range(num_extents):
                self._place(extent, targets[extent // slots_per_disk])
        else:
            raise ValueError(f"unknown initial layout {initial!r}")

    def _place(self, extent: int, disk: int) -> None:
        slot = self._free_slots[disk].pop()
        self._disk[extent] = disk
        self._slot[extent] = slot
        self._residents[disk].add(extent)

    # -- queries -----------------------------------------------------------

    def disk_of(self, extent: int) -> int:
        """Disk currently holding ``extent``."""
        return self._disk[extent]

    def slot_of(self, extent: int) -> int:
        """Slot (physical block position) of ``extent`` on its disk."""
        return self._slot[extent]

    def extents_on(self, disk: int) -> set[int]:
        """Extents resident on ``disk`` (live view; do not mutate)."""
        return self._residents[disk]

    def free_slots(self, disk: int) -> int:
        """Number of unoccupied slots on ``disk``."""
        return len(self._free_slots[disk])

    def occupancy(self) -> np.ndarray:
        """Array of resident-extent counts per disk."""
        return np.array([len(r) for r in self._residents], dtype=np.int64)

    # -- mutation -----------------------------------------------------------

    def move(self, extent: int, to_disk: int) -> None:
        """Relocate ``extent`` to a free slot on ``to_disk``.

        Raises:
            ValueError: if ``to_disk`` has no free slot.
        """
        from_disk = self._disk[extent]
        if from_disk == to_disk:
            return
        if not self._free_slots[to_disk]:
            raise ValueError(f"disk {to_disk} has no free slot for extent {extent}")
        self._free_slots[from_disk].append(self._slot[extent])
        self._residents[from_disk].discard(extent)
        self._place(extent, to_disk)

    def swap(self, a: int, b: int) -> None:
        """Exchange the placements of extents ``a`` and ``b``."""
        if a == b:
            return
        disk_a, slot_a = self._disk[a], self._slot[a]
        disk_b, slot_b = self._disk[b], self._slot[b]
        self._disk[a], self._slot[a] = disk_b, slot_b
        self._disk[b], self._slot[b] = disk_a, slot_a
        if disk_a != disk_b:
            self._residents[disk_a].discard(a)
            self._residents[disk_b].discard(b)
            self._residents[disk_b].add(a)
            self._residents[disk_a].add(b)

    # -- invariants (used by property tests) ---------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency; raises AssertionError on breakage."""
        seen: set[tuple[int, int]] = set()
        for extent in range(self.num_extents):
            disk = self._disk[extent]
            slot = self._slot[extent]
            assert 0 <= disk < self.num_disks, f"extent {extent} on bad disk {disk}"
            assert 0 <= slot < self.slots_per_disk, f"extent {extent} in bad slot {slot}"
            assert (disk, slot) not in seen, f"slot collision at {(disk, slot)}"
            seen.add((disk, slot))
            assert extent in self._residents[disk], f"resident set misses extent {extent}"
        total_resident = sum(len(r) for r in self._residents)
        assert total_resident == self.num_extents, "resident sets out of sync"
        for disk in range(self.num_disks):
            used = {self._slot[e] for e in self._residents[disk]}
            free = set(self._free_slots[disk])
            assert not (used & free), f"disk {disk}: slot both used and free"
            assert len(used) + len(free) == self.slots_per_disk, f"disk {disk}: slots leaked"
