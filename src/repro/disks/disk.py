"""A single multi-speed disk: FCFS queue + speed state machine + energy.

State machine::

    STANDBY --(spin up)--> TRANSITION --> IDLE <--> ACTIVE
       ^                                    |
       +----------- (spin down) ------------+

* ``STANDBY``: spindle stopped (rpm 0), drawing standby power. Ops that
  arrive are queued and trigger an automatic spin-up.
* ``TRANSITION``: spindle accelerating/decelerating (spin-up, spin-down
  or speed change). No service; transition energy is accounted from the
  spec's lump-sum transition costs.
* ``IDLE``: spinning at :attr:`rpm`, queue empty.
* ``ACTIVE``: serving exactly one op (FCFS).

Speed changes requested while the disk is busy take effect when the
in-flight op completes; requests that arrive mid-transition wait for the
spindle. This is the behaviour the DRPM/Hibernator hardware model
assumes.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import DiskFaultState

from repro.disks.mechanics import DiskMechanics
from repro.disks.power import EnergyMeter
from repro.disks.scheduling import QueueDiscipline, make_discipline
from repro.disks.specs import DiskSpec
from repro.obs.events import OpRetried, SpeedTransition, TraceEvent
from repro.sim.engine import Engine
from repro.sim.request import DiskOp


class DiskState(enum.Enum):
    """Spindle/service state of a disk."""

    STANDBY = "standby"
    TRANSITION = "transition"
    IDLE = "idle"
    ACTIVE = "active"
    FAILED = "failed"


class MultiSpeedDisk:
    """One multi-speed disk attached to a simulation engine.

    Args:
        engine: the event loop this disk schedules on.
        spec: hardware parameters.
        index: position in the array (used in labels and stats).
        total_blocks: number of addressable block slots; seek distances
            are normalized against this span.
        rng: randomness for rotational latency; None gives deterministic
            (expected) latencies.
        initial_rpm: starting speed; defaults to full speed.
        scheduler: queue discipline name ('fcfs', 'sstf', 'scan').
    """

    def __init__(
        self,
        engine: Engine,
        spec: DiskSpec,
        index: int = 0,
        total_blocks: int = 36_000,
        rng: np.random.Generator | None = None,
        initial_rpm: int | None = None,
        scheduler: str = "fcfs",
    ) -> None:
        if initial_rpm is None:
            initial_rpm = spec.max_rpm
        if initial_rpm != 0:
            spec.level_of(initial_rpm)  # validate
        self.engine = engine
        self.spec = spec
        self.mechanics = DiskMechanics(spec)
        self.index = index
        self.total_blocks = total_blocks
        self.rng = rng
        self.rpm = initial_rpm
        self.state = DiskState.STANDBY if initial_rpm == 0 else DiskState.IDLE
        self.queue: QueueDiscipline = make_discipline(scheduler)
        self.head_block = 0
        self.meter = EnergyMeter(
            start_time=engine.now,
            watts=spec.standby_watts if initial_rpm == 0 else spec.idle_watts(initial_rpm),
            label="standby" if initial_rpm == 0 else "idle",
        )
        # Speed the disk should run at when spinning; spin-ups go here.
        self._requested_rpm = initial_rpm if initial_rpm != 0 else spec.max_rpm
        # Per-rpm power caches: idle_watts does a float pow per call and
        # both are hit on every service start/completion, while a disk
        # only ever runs at a handful of discrete speeds.
        self._idle_watts_cache: dict[int, float] = {}
        self._active_watts_cache: dict[int, float] = {}
        self._in_flight: DiskOp | None = None
        self._transition_target: int | None = None
        # Observability hooks for policies (TPM idle timers, DRPM sampling).
        self.on_idle: Callable[["MultiSpeedDisk"], None] | None = None
        self.on_activity: Callable[["MultiSpeedDisk"], None] | None = None
        # Structured-trace hook (repro.obs); None = tracing disabled.
        self.emit: Callable[[TraceEvent], None] | None = None
        # Fault-injection hook (repro.faults.DiskFaultState); None means
        # no faults target this disk and every fault branch is skipped,
        # keeping the no-fault path byte-identical.
        self.fault_state: "DiskFaultState | None" = None
        # Counters.
        self.ops_completed = 0
        self.bytes_transferred = 0
        self.spinups = 0
        self.speed_changes = 0
        self.op_errors = 0
        self.op_retries = 0
        self.last_activity_time = engine.now
        self.failed = False

    # -- observability -----------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Ops waiting (not counting the one in service)."""
        return len(self.queue)

    @property
    def is_spinning(self) -> bool:
        return self.rpm > 0 and self.state is not DiskState.TRANSITION

    @property
    def requested_rpm(self) -> int:
        """Spinning speed the disk will run at when (re)activated."""
        return self._requested_rpm

    @property
    def busy(self) -> bool:
        return self._in_flight is not None

    # -- I/O ----------------------------------------------------------------

    def submit(self, op: DiskOp) -> None:
        """Queue a physical op; wakes the disk from standby if needed."""
        if self.failed:
            raise RuntimeError(f"disk {self.index} has failed; route around it")
        now = self.engine.now
        op.enqueued = now
        op.disk_index = self.index
        self.queue.push(op)
        self.last_activity_time = now
        if self.on_activity is not None:
            self.on_activity(self)
        if self.state is DiskState.IDLE:
            self._start_service()
        elif self.state is DiskState.STANDBY:
            self._begin_transition(self._requested_rpm or self.spec.max_rpm)
        # ACTIVE / TRANSITION: op waits in queue.

    # -- speed control -------------------------------------------------------

    def set_speed(self, rpm: int) -> None:
        """Request a spindle speed (0 = spin down to standby).

        Takes effect immediately when idle/standby, after the in-flight
        op when active, and after the current transition when already
        transitioning. A spin-down request is ignored while ops are
        queued or in flight (the policy is expected not to strand work).
        Ignored on a failed disk.
        """
        if self.failed:
            return
        if rpm != 0:
            self.spec.level_of(rpm)  # validate
        if rpm == 0 and (self.queue or self._in_flight is not None):
            return
        if rpm != 0:
            self._requested_rpm = rpm
        if self.state is DiskState.ACTIVE:
            return  # applied in _complete()
        if self.state is DiskState.TRANSITION:
            return  # applied when the transition ends
        if rpm == self.rpm:
            return
        self._begin_transition(rpm)

    def spin_down(self) -> None:
        """Convenience wrapper: request standby."""
        self.set_speed(0)

    def fail(self) -> None:
        """Fail the disk (fault injection).

        The array stops routing to it immediately; ops already queued or
        in flight are allowed to drain (a graceful failure window), then
        the disk goes to :attr:`DiskState.FAILED` and draws no power.
        """
        if self.failed:
            return
        self.failed = True
        if self._in_flight is None and not self.queue and self.state is not DiskState.TRANSITION:
            self._finalize_failure()

    def _finalize_failure(self) -> None:
        self.state = DiskState.FAILED
        self.rpm = 0
        self.meter.update(self.engine.now, 0.0, "failed")

    def force_speed(self, rpm: int) -> None:
        """Set the spindle speed instantaneously, with no transition.

        Initialization-only: models an array that was already running in
        the desired configuration before the simulated window opened
        (e.g. a primed steady state). Refuses once any I/O has touched
        the disk.
        """
        if self.ops_completed or self.queue or self._in_flight is not None:
            raise RuntimeError("force_speed is initialization-only; the disk has seen I/O")
        if self.state is DiskState.TRANSITION:
            raise RuntimeError("force_speed during a transition is not meaningful")
        if rpm != 0:
            self.spec.level_of(rpm)  # validate
            self._requested_rpm = rpm
        self.rpm = rpm
        now = self.engine.now
        if rpm == 0:
            self.state = DiskState.STANDBY
            self.meter.update(now, self.spec.standby_watts, "standby")
        else:
            self.state = DiskState.IDLE
            self.meter.update(now, self.spec.idle_watts(rpm), "idle")

    # -- internals ------------------------------------------------------------

    def _idle_watts(self, rpm: int) -> float:
        watts = self._idle_watts_cache.get(rpm)
        if watts is None:
            watts = self._idle_watts_cache[rpm] = self.spec.idle_watts(rpm)
        return watts

    def _active_watts(self, rpm: int) -> float:
        watts = self._active_watts_cache.get(rpm)
        if watts is None:
            watts = self._active_watts_cache[rpm] = self.spec.active_watts(rpm)
        return watts

    def _begin_transition(self, to_rpm: int) -> None:
        now = self.engine.now
        if to_rpm == self.rpm:
            return
        duration, joules = self.spec.transition_cost(self.rpm, to_rpm)
        self.state = DiskState.TRANSITION
        self._transition_target = to_rpm
        # Transition energy is the spec's lump sum; no time-based draw on
        # top (the data-sheet joules already include the interval).
        self.meter.update(now, 0.0, "transition")
        self.meter.add_impulse(joules, "transition")
        if self.rpm == 0 and to_rpm > 0:
            self.spinups += 1
        elif self.rpm > 0 and to_rpm > 0:
            self.speed_changes += 1
        if self.emit is not None:
            self.emit(SpeedTransition(
                time=now, disk=self.index, from_rpm=self.rpm, to_rpm=to_rpm,
            ))
        # Transitions always run to completion: fast path.
        self.engine.schedule_after_fast(duration, self._finish_transition)

    def _finish_transition(self) -> None:
        now = self.engine.now
        target = self._transition_target
        assert target is not None, "transition finished without a target"
        self._transition_target = None
        self.rpm = target
        if self.failed:
            if not self.queue:
                self._finalize_failure()
            elif self.rpm == 0:
                self._begin_transition(self._requested_rpm or self.spec.max_rpm)
            else:
                self.state = DiskState.IDLE
                self.meter.update(now, self._idle_watts(self.rpm), "idle")
                self._start_service()
            return
        if self.rpm == 0:
            self.state = DiskState.STANDBY
            self.meter.update(now, self.spec.standby_watts, "standby")
            if self.queue:
                # An op arrived during spin-down: bounce back up.
                self._begin_transition(self._requested_rpm or self.spec.max_rpm)
            return
        # Spinning. Honour a speed request that changed mid-transition.
        if self._requested_rpm != self.rpm and self._requested_rpm > 0:
            self._begin_transition(self._requested_rpm)
            return
        if self.queue:
            self.state = DiskState.IDLE
            self.meter.update(now, self._idle_watts(self.rpm), "idle")
            self._start_service()
        else:
            self.state = DiskState.IDLE
            self.meter.update(now, self._idle_watts(self.rpm), "idle")
            self._notify_idle()

    def _start_service(self) -> None:
        assert self.state is DiskState.IDLE and self.queue, "bad service start"
        now = self.engine.now
        op = self.queue.pop(self.head_block)
        self._in_flight = op
        self.state = DiskState.ACTIVE
        self.meter.update(now, self._active_watts(self.rpm), "active")
        service = self.mechanics.service_time(
            from_block=self.head_block,
            to_block=op.block,
            total_blocks=self.total_blocks,
            size_bytes=op.size,
            rpm=self.rpm,
            rng=self.rng,
        )
        if self.fault_state is not None:
            service *= self.fault_state.slow_factor(now)
        op.started = now
        # Service completions are never cancelled: fast path.
        self.engine.schedule_after_fast(service, self._complete, (op,))

    def _complete(self, op: DiskOp) -> None:
        now = self.engine.now
        if self.fault_state is not None and self._attempt_failed(op):
            return  # retry scheduled; completion withheld for now
        op.finished = now
        self._in_flight = None
        self.head_block = op.block
        if not op.failed:
            self.ops_completed += 1
            self.bytes_transferred += op.size
        self.last_activity_time = now
        self.state = DiskState.IDLE
        self.meter.update(now, self._idle_watts(self.rpm), "idle")
        if op.on_complete is not None:
            op.on_complete(op)
        if self.failed:
            if self.queue:
                self._start_service()  # drain the tail, then die
            else:
                self._finalize_failure()
            return
        if self.state is not DiskState.IDLE:
            # The completion callback changed our state (e.g. spun us
            # down); nothing more to do here.
            return
        if self._requested_rpm != self.rpm:
            self._begin_transition(self._requested_rpm)
        elif self.queue:
            self._start_service()
        else:
            self._notify_idle()

    def _notify_idle(self) -> None:
        if self.on_idle is not None:
            self.on_idle(self)

    # -- fault injection ---------------------------------------------------------

    def _attempt_failed(self, op: DiskOp) -> bool:
        """Apply an injected transient error to a finishing service attempt.

        Returns True when the op's completion is withheld because a retry
        was scheduled; returns False when the attempt succeeded or the op
        gave up (``op.failed`` set), in which case :meth:`_complete`
        proceeds to deliver the completion.
        """
        fault_state = self.fault_state
        assert fault_state is not None
        now = self.engine.now
        if not fault_state.should_error(now):
            return False
        self.op_errors += 1
        op.attempts += 1
        if op.attempts >= fault_state.retry.max_attempts or self.failed:
            # Budget exhausted (or the disk is already draining toward
            # FAILED): surface the failure to the caller.
            op.failed = True
            return False
        self.op_retries += 1
        backoff = fault_state.retry.backoff_for(op.attempts)
        if self.emit is not None:
            self.emit(OpRetried(
                time=now, disk=self.index, attempt=op.attempts,
                op_kind=op.kind.value, backoff_s=backoff,
            ))
        # The op leaves service and re-queues after the backoff; the disk
        # is free to serve the rest of its queue meanwhile.
        self._in_flight = None
        self.head_block = op.block
        self.last_activity_time = now
        self.state = DiskState.IDLE
        self.meter.update(now, self._idle_watts(self.rpm), "idle")
        self.engine.schedule_after_fast(backoff, self._resubmit, (op,))
        if self._requested_rpm != self.rpm:
            self._begin_transition(self._requested_rpm)
        elif self.queue:
            self._start_service()
        else:
            self._notify_idle()
        return True

    def _resubmit(self, op: DiskOp) -> None:
        """Re-queue an op after its retry backoff elapsed."""
        now = self.engine.now
        if self.failed:
            # The disk died while the op waited out its backoff; deliver
            # the completion as a failure so the caller can unwind.
            op.failed = True
            op.finished = now
            if op.on_complete is not None:
                op.on_complete(op)
            return
        self.queue.push(op)
        self.last_activity_time = now
        if self.on_activity is not None:
            self.on_activity(self)
        if self.state is DiskState.IDLE:
            self._start_service()
        elif self.state is DiskState.STANDBY:
            self._begin_transition(self._requested_rpm or self.spec.max_rpm)
        # ACTIVE / TRANSITION: op waits in queue.

    # -- accounting -------------------------------------------------------------

    def finish_accounting(self, now: float) -> float:
        """Close the energy meter; returns total joules consumed."""
        return self.meter.finish(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiSpeedDisk(#{self.index}, {self.state.value}, {self.rpm} rpm, "
            f"queue={self.queue_length})"
        )
