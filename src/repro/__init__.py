"""repro: a reproduction of *Hibernator: helping disk arrays sleep
through the winter* (SOSP 2005).

Quick start::

    from repro import (
        HibernatorConfig, HibernatorPolicy,
        default_array_config, generate_oltp, run_comparison,
    )

    trace = generate_oltp()
    comparison = run_comparison(trace, default_array_config(), slack=1.5)
    print(comparison.rows())

Package map (details in DESIGN.md):

* :mod:`repro.sim` -- discrete-event engine, request model, runner.
* :mod:`repro.disks` -- multi-speed disk array substrate.
* :mod:`repro.traces` -- workload generators (OLTP, Cello99-style).
* :mod:`repro.policies` -- baselines: Base, TPM, DRPM, PDC, MAID.
* :mod:`repro.core` -- Hibernator itself (CR speed setting, tiered
  layout, shuffling migration, response-time guarantee).
* :mod:`repro.analysis` -- experiment harness and reporting.
"""

from repro.analysis.experiments import (
    ComparisonResult,
    default_array_config,
    derive_goal,
    run_comparison,
    run_single,
    standard_policies,
)
from repro.core.guarantee import BoostController, GuaranteeConfig
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.core.speed_setting import SpeedSettingConfig
from repro.disks.array import ArrayConfig, DiskArray
from repro.disks.specs import DiskSpec, make_multispeed_spec, ultrastar_36z15
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.drpm import DrpmConfig, DrpmPolicy
from repro.policies.maid import MaidConfig, MaidPolicy, maid_array_config
from repro.policies.oracle import OraclePolicy
from repro.policies.pdc import PdcConfig, PdcPolicy
from repro.policies.tpm import TpmConfig, TpmPolicy
from repro.sim.runner import ArraySimulation, SimulationResult
from repro.traces.cello import CelloConfig, generate_cello
from repro.traces.model import Trace, TraceBuilder
from repro.traces.oltp import OltpConfig, generate_oltp
from repro.traces.synthetic import SyntheticConfig, generate_synthetic
from repro.traces.tracestats import compute_trace_stats

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ComparisonResult",
    "default_array_config",
    "derive_goal",
    "run_comparison",
    "run_single",
    "standard_policies",
    "BoostController",
    "GuaranteeConfig",
    "HibernatorConfig",
    "HibernatorPolicy",
    "SpeedSettingConfig",
    "ArrayConfig",
    "DiskArray",
    "DiskSpec",
    "make_multispeed_spec",
    "ultrastar_36z15",
    "AlwaysOnPolicy",
    "DrpmConfig",
    "DrpmPolicy",
    "MaidConfig",
    "MaidPolicy",
    "maid_array_config",
    "OraclePolicy",
    "PdcConfig",
    "PdcPolicy",
    "TpmConfig",
    "TpmPolicy",
    "ArraySimulation",
    "SimulationResult",
    "CelloConfig",
    "generate_cello",
    "Trace",
    "TraceBuilder",
    "OltpConfig",
    "generate_oltp",
    "SyntheticConfig",
    "generate_synthetic",
    "compute_trace_stats",
]
