"""Batched simulation core: epoch advancement between decision points.

:class:`BatchArraySimulation` is a drop-in replacement for
:class:`~repro.sim.runner.ArraySimulation` selected with
``--engine batch``. Instead of one heap pop per arrival/completion, it
advances the run in *segments* between decision points — the next heap
event (sampler tick, injected failure, policy timer) or the next fault
window edge — and processes every request inside a segment data-parallel
per disk: seek/transfer math runs over numpy columns, rotational draws
come from bulk generator calls, and statistics fold through plain local
accumulators.

The contract is **byte identity**: a batch run must produce the exact
``result_digest`` the scalar engine produces for the same spec
(``tests/test_golden_identity.py`` and the cross-backend tests enforce
it on every perf scenario). That shapes the whole design:

* every floating-point chain (service time, Welford latency moments,
  energy-meter folds) replicates the scalar operation order bit for bit
  — numpy elementwise ops round identically to Python floats, and bulk
  ``Generator.uniform(0, r, n)`` draws the same stream as ``n`` scalar
  draws;
* batching only engages for runs the scalar engine would drive through
  the default no-op policy hooks (base policy, FCFS, no RAID-5
  fan-out, no write cache, no observability) — anything else, and any
  heap event the pump does not recognise, falls back to the scalar
  event loop, rehydrating in-flight state into real heap events first;
* fault windows become segment boundaries: inside a window the pump
  runs a lean per-disk event loop that consults the real
  :class:`~repro.faults.injector.DiskFaultState` (same RNG, same draw
  sites), outside it the vectorized path never touches the fault RNG —
  exactly like the scalar fast path.

Event/sequence accounting is kept consistent in bulk
(``engine.events_executed`` and the schedule sequence counter advance by
the same totals the scalar loop would accumulate), so ``runtime_events``
and event ordering against pre-scheduled heap entries are preserved. The
one residual: *absolute* sequence numbers assigned inside a segment can
differ from the scalar interleaving, which could only matter if a
service completion tied a heap event to the exact float — a
measure-zero coincidence with continuous service times.
"""

from __future__ import annotations

import heapq
import math
import time
from bisect import bisect_left, bisect_right
from collections import deque
from typing import Any

import numpy as np

from repro.disks.disk import DiskState, MultiSpeedDisk
from repro.policies.base import PowerPolicy
from repro.sim.request import DiskOp, Request, RequestClass
from repro.sim.runner import ArraySimulation

_INF = math.inf


class _Lane:
    """Per-disk pump state: carries, meter mirror, counters.

    The lane mirrors exactly the mutable per-disk state the scalar event
    loop maintains through ``MultiSpeedDisk``; it is flushed back into
    the disk object at decision points (sampler barriers, fallback,
    drain) so every reader outside the pump sees scalar-identical state.
    """

    __slots__ = (
        "free", "seek_prev", "head", "mlast", "infl", "queue", "resubs",
        "idle_w", "act_w", "idle_j", "idle_s", "act_j", "act_s",
        "folded_idle", "folded_act", "ops", "nbytes", "last_act",
        "op_errors", "op_retries", "fault", "fwin",
        "min_seek", "seek_span", "span", "rotation_s", "bps", "rng",
    )

    def __init__(self, disk: MultiSpeedDisk) -> None:
        meter = disk.meter
        self.free = 0.0
        self.seek_prev = disk.head_block
        self.head = disk.head_block
        self.mlast = meter._last_time
        #: In-flight op: ``(completion, start, rec)`` or None.
        self.infl: tuple[float, float, list] | None = None
        #: Queued op records ``[arrival, req, block, size, attempts]``.
        self.queue: deque[list] = deque()
        #: Pending retries: heap of ``(resubmit_time, tiebreak, rec)``.
        self.resubs: list[tuple[float, int, list]] = []
        rpm = disk.rpm
        self.idle_w = disk._idle_watts(rpm)
        self.act_w = disk._active_watts(rpm)
        joules, seconds = meter.breakdown.joules, meter.breakdown.seconds
        self.idle_j = joules.get("idle", 0.0)
        self.idle_s = seconds.get("idle", 0.0)
        self.act_j = joules.get("active", 0.0)
        self.act_s = seconds.get("active", 0.0)
        self.folded_idle = "idle" in joules
        self.folded_act = "active" in joules
        self.ops = disk.ops_completed
        self.nbytes = disk.bytes_transferred
        self.last_act = disk.last_activity_time
        self.op_errors = disk.op_errors
        self.op_retries = disk.op_retries
        self.fault = disk.fault_state
        # Merged (start, end) fault windows for segment-overlap tests.
        windows: list[tuple[float, float]] = []
        if self.fault is not None:
            for w in self.fault._transients:
                windows.append((w.start_s, w.end_s))
            for w in self.fault._slows:
                windows.append((w.start_s, w.end_s))
        self.fwin = windows
        # Service-time constants, identical to the scalar inlined math.
        mech = disk.mechanics
        self.min_seek = mech.min_seek_s
        self.seek_span = mech._seek_span
        span = disk.total_blocks - 1
        if span < 1:
            span = 1
        self.span = span
        cached = mech._rpm_cache.get(rpm)
        if cached is None:
            cached = mech._rpm_cache[rpm] = (
                mech.spec.rotation_s(rpm), mech.spec.transfer_bps(rpm),
            )
        self.rotation_s, self.bps = cached
        self.rng = disk.rng


class BatchArraySimulation(ArraySimulation):
    """Epoch-batched replay with scalar-identical results.

    Accepts exactly the ``ArraySimulation`` constructor signature except
    ``live`` (the serve daemon drives the scalar core). Runs that the
    batch core cannot accelerate — custom policy hooks, RAID-5 writes,
    observability, non-FCFS scheduling — transparently execute on the
    inherited scalar machinery and produce identical results by
    construction.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        if kwargs.pop("live", False):
            raise ValueError("the batch engine does not support live mode; "
                             "use the scalar ArraySimulation")
        super().__init__(*args, **kwargs)
        cls = type(self.policy)
        hooks_default = (
            cls.on_request_arrival is PowerPolicy.on_request_arrival
            and cls.on_request_complete is PowerPolicy.on_request_complete
        )
        config = self.array.config
        #: True once the run is (or became) scalar-driven. Static
        #: ineligibility is decided here; runtime surprises (policy
        #: timers, injected failures) flip it via _fallback_to_scalar.
        self._scalar_mode = not (
            hooks_default
            and self.emit is None
            and not config.raid5
            and not config.write_cache
            and config.scheduler == "fcfs"
        )
        self._pending_arrival: tuple[float, int] | None = None
        self._pump_ready = False
        self._frontier = 0.0
        self._lanes: list[_Lane] = []
        self._deliveries: list[tuple[float, int, bool]] = []
        self._fault_edges: list[float] = []
        self._resub_tiebreak = 0
        self._pending_scheds = 0

    # -- arrival plumbing (virtual pending arrival) -----------------------

    def _schedule_next_arrival(self) -> None:
        if self._scalar_mode:
            super()._schedule_next_arrival()
            return
        i = self._next_index
        if i < self._trace_len:
            # Consume a real sequence number without a heap push: the
            # pending arrival is merged against heap entries on
            # (time, seq) exactly as if it had been scheduled.
            engine = self.engine
            seq = engine._seq
            engine._seq = seq + 1
            self._pending_arrival = (self._times[i], seq)
        else:
            self._pending_arrival = None

    # -- driving -----------------------------------------------------------

    def step(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_on_drain: bool = True,
    ) -> int:
        if self._scalar_mode:
            return super().step(until, max_events, stop_on_drain)
        if until is not None or max_events is not None or not stop_on_drain:
            # Incremental (serve-style) driving defeats segment batching;
            # hand the whole run to the scalar loop.
            self._ensure_pump()
            self._fallback_to_scalar()
            return super().step(until, max_events, stop_on_drain)
        if self._drain_complete:
            return 0
        # repro: lint-ok[DET003] wall-clock instrumentation, not a result input
        wall_start = time.perf_counter()
        executed = self._pump()
        self._wall_s += time.perf_counter() - wall_start  # repro: lint-ok[DET003] instrumentation only
        if self._drained():
            self._drain_complete = True
        return executed

    # -- pump infrastructure ----------------------------------------------

    def _ensure_pump(self) -> None:
        if self._pump_ready:
            return
        self._pump_ready = True
        trace = self.trace
        self._times_np = trace.times
        self._sizes_np = np.asarray(trace.sizes)
        self._ext_np = np.asarray(trace.extents)
        emap = self.array.extent_map
        self._diskmap_np = np.asarray(emap._disk, dtype=np.intp)
        self._slotmap_np = np.asarray(emap._slot, dtype=np.intp)
        self._lanes = [_Lane(d) for d in self.array.disks]
        edges: set[float] = set()
        for lane in self._lanes:
            for start, end in lane.fwin:
                edges.add(start)
                edges.add(end)
        self._fault_edges = sorted(edges)
        self._sampler_cb = self._sample_speeds

    def _probe_eligibility(self) -> bool:
        """Runtime check after ``policy.attach``: everything must be in
        the exact steady state the vectorized math assumes."""
        array = self.array
        if array.redirect is not None or array.failed_disks:
            return False
        if any(array._reserved_slots):
            return False
        for disk in array.disks:
            if disk.failed or disk.state is not DiskState.IDLE:
                return False
            if disk.on_idle is not None or disk.on_activity is not None:
                return False
            if disk.emit is not None:
                return False
            if disk.rpm <= 0 or disk._requested_rpm != disk.rpm:
                return False
        return True

    def _peek_entry(self) -> tuple | None:
        """Next live heap entry, lazily dropping cancelled handles
        (mirrors the scalar loop's skip)."""
        heap = self.engine._heap
        while heap:
            entry = heap[0]
            if entry[2] is None and entry[3].cancelled:
                heapq.heappop(heap)
                continue
            return entry
        return None

    def _have_carries(self) -> bool:
        for lane in self._lanes:
            if lane.infl is not None or lane.queue or lane.resubs:
                return True
        return False

    def _next_fault_edge(self) -> float:
        edges = self._fault_edges
        i = bisect_right(edges, self._frontier)
        return edges[i] if i < len(edges) else _INF

    # -- the pump ----------------------------------------------------------

    def _pump(self) -> int:
        self._ensure_pump()
        engine = self.engine
        if not self._probe_eligibility():
            self._fallback_to_scalar()
            return engine.run(stop=self._drained)
        if self._drained():
            # Scalar semantics: run(stop=...) checks the predicate only
            # *after* a callback, so an already-drained run still
            # executes exactly one pending event (if any).
            self._fallback_to_scalar()
            return engine.run(stop=self._drained)
        executed = 0
        while True:
            if self._pending_arrival is None and not self._have_carries():
                # Workload drained: the scalar loop stops at the
                # delivery that drained it; lingering timers never fire.
                break
            top = self._peek_entry()
            t_top = top[0] if top is not None else _INF
            edge = self._next_fault_edge()
            seg_end = edge if edge < t_top else t_top
            executed += self._advance_segment(
                seg_end, top if seg_end == t_top else None)
            if self._pending_arrival is None and not self._have_carries():
                # The workload drained inside the segment: the scalar
                # loop's stop predicate fires right after that delivery,
                # so the barrier event at seg_end never executes.
                break
            if seg_end == _INF:
                continue
            self._frontier = seg_end
            if seg_end < t_top:
                continue  # internal fault-window edge, no event
            # The heap event at seg_end is due: all simulated work
            # strictly before it (plus tie-winning arrivals) is done.
            if top[2] is not None and top[2] == self._sampler_cb:
                # Light barrier: the sampler only reads meter watts and
                # rpms; flush the meters, fire it, keep batching.
                self._flush_meters()
                heapq.heappop(engine._heap)
                engine._live -= 1
                engine._now = seg_end
                top[2](*top[3])
                engine.events_executed += 1
                executed += 1
                continue
            # Unknown decision point (injected failure, policy timer,
            # cancellable handle): rehydrate and finish on the scalar
            # event loop.
            self._fallback_to_scalar()
            return executed + engine.run(stop=self._drained)
        self._flush_all()
        return executed

    def _advance_segment(self, seg_end: float, top: tuple | None) -> int:
        """Process every event in ``[frontier, seg_end)``; returns the
        number of events the scalar loop would have executed."""
        engine = self.engine
        i0 = self._next_index
        pa = self._pending_arrival
        i1 = i0
        if pa is not None:
            if seg_end == _INF:
                i1 = self._trace_len
            else:
                i1 = bisect_left(self._times, seg_end, i0)
                if (i1 == i0 and top is not None and pa[0] == seg_end
                        and pa[1] < top[1]):
                    # The pending arrival ties the heap event and was
                    # scheduled first: it fires before the barrier.
                    i1 = i0 + 1
        k = i1 - i0
        lanes = self._lanes
        num_disks = len(lanes)
        seg_start = self._frontier
        per_disk: list[tuple | None] = [None] * num_disks
        if k:
            ext = self._ext_np[i0:i1]
            if len(ext) and (ext.min() < 0 or ext.max() >= self.array._num_extents):
                for e in ext.tolist():
                    if not 0 <= e < self.array._num_extents:
                        raise ValueError(f"extent {e} out of range")
            dks = self._diskmap_np[ext]
            blks = self._slotmap_np[ext]
            tms = self._times_np[i0:i1]
            szs = self._sizes_np[i0:i1]
            order = np.argsort(dks, kind="stable")
            dks_sorted = dks[order]
            bounds = np.searchsorted(dks_sorted, np.arange(num_disks + 1))
            for d in range(num_disks):
                a, b = bounds[d], bounds[d + 1]
                if a == b:
                    continue
                idx = order[a:b]
                per_disk[d] = (tms[idx], blks[idx], szs[idx], (idx + i0).tolist())
            self._next_index = i1
            self._outstanding += k
        deliveries = self._deliveries
        starts = attempts = resub_events = scheds = 0
        last_event = -_INF
        if k:
            last_event = float(tms[-1])
        for d in range(num_disks):
            lane = lanes[d]
            grp = per_disk[d]
            if grp is None and lane.infl is None and not lane.queue and not lane.resubs:
                continue
            if lane.fault is not None and (
                lane.resubs
                or any(s < seg_end and e > seg_start for s, e in lane.fwin)
            ):
                s_n, a_n, r_n, last = self._run_lean(lane, grp, seg_end, deliveries)
                resub_events += r_n
            else:
                s_n, a_n, last = self._run_clean(lane, grp, seg_end, deliveries)
            starts += s_n
            attempts += a_n
            if last > last_event:
                last_event = last
        # Scalar sequence-number consumption inside the segment: one per
        # service start plus one per scheduled retry (_run_lean folds the
        # latter into _pending_scheds).
        engine.events_executed += k + attempts + resub_events
        engine._seq += starts + self._pending_scheds
        self._pending_scheds = 0
        if k:
            if i1 < self._trace_len:
                engine._seq += k
                self._pending_arrival = (self._times[i1], engine._seq - 1)
            else:
                engine._seq += k - 1
                self._pending_arrival = None
        if deliveries:
            self._fold_deliveries(deliveries)
        if last_event > engine._now:
            engine._now = last_event
        return k + attempts + resub_events

    # -- clean segment: vectorized service math ---------------------------

    def _run_clean(
        self,
        lane: _Lane,
        grp: tuple | None,
        seg_end: float,
        deliveries: list,
    ) -> tuple[int, int, float]:
        """No fault window overlaps the segment and no retries are
        pending: the whole chain is one free-time recurrence over
        precomputed service components. Returns
        ``(service_starts, completion_attempts, last_event_time)``."""
        attempts = 0
        last_event = -_INF
        mlast = lane.mlast
        idle_w, act_w = lane.idle_w, lane.act_w
        idle_j, idle_s = lane.idle_j, lane.idle_s
        act_j, act_s = lane.act_j, lane.act_s
        folded_idle, folded_act = lane.folded_idle, lane.folded_act
        append = deliveries.append
        # 1) carried in-flight op.
        if lane.infl is not None:
            c0, s0, rec = lane.infl
            if c0 >= seg_end:
                # Busy past the horizon: arrivals can only queue.
                if grp is not None:
                    tms, blks, szs, reqs = grp
                    blk_l = blks.tolist()
                    siz_l = szs.tolist()
                    tms_l = tms.tolist()
                    q_append = lane.queue.append
                    for j in range(len(reqs)):
                        q_append([tms_l[j], reqs[j], blk_l[j], siz_l[j], 0])
                    if tms_l[-1] > lane.last_act:
                        lane.last_act = tms_l[-1]
                return 0, 0, last_event
            el = c0 - mlast
            if el > 0.0:
                act_j += act_w * el
                act_s += el
                folded_act = True
            mlast = c0
            lane.free = c0
            lane.head = rec[2]
            lane.ops += 1
            lane.nbytes += rec[3]
            if c0 > lane.last_act:
                lane.last_act = c0
            append((c0, rec[1], False))
            attempts += 1
            last_event = c0
            lane.infl = None
        # 2) candidates: carried queue, then this segment's arrivals.
        nq = len(lane.queue)
        if grp is not None:
            tms, blks, szs, reqs = grp
        else:
            tms = blks = szs = None
            reqs = []
        if nq:
            q = lane.queue
            qa = np.fromiter((r[0] for r in q), dtype=np.float64, count=nq)
            qb = np.fromiter((r[2] for r in q), dtype=np.int64, count=nq)
            qs = np.fromiter((r[3] for r in q), dtype=np.int64, count=nq)
            atts = [r[4] for r in q]
            req_l = [r[1] for r in q]
            if tms is not None:
                arrs = np.concatenate((qa, tms))
                blocks = np.concatenate((qb, blks))
                sizes = np.concatenate((qs, szs))
                atts += [0] * len(reqs)
                req_l += reqs
            else:
                arrs, blocks, sizes = qa, qb, qs
            lane.queue = deque()
        elif tms is not None:
            arrs, blocks, sizes = tms, blks, szs
            atts = None  # all zero
            req_l = reqs
        else:
            self._store_lane_folds(
                lane, mlast, idle_j, idle_s, act_j, act_s, folded_idle, folded_act)
            return 0, attempts, last_event
        n = len(blocks)
        # Service components, scalar operation order: dist = |Δblock| /
        # span, clamped; seek = 0 or min + span_coef * sqrt(dist);
        # service = (seek + rotation) + size / bps.
        prev = np.empty(n, dtype=blocks.dtype)
        prev[0] = lane.seek_prev
        if n > 1:
            prev[1:] = blocks[:-1]
        dist = np.abs(blocks - prev) / lane.span
        np.minimum(dist, 1.0, out=dist)
        seek = np.where(
            dist == 0.0, 0.0, lane.min_seek + lane.seek_span * np.sqrt(dist))
        xfer = sizes / lane.bps
        rng = lane.rng
        if rng is None:
            half = lane.rotation_s / 2.0
            svc_l = ((seek + half) + xfer).tolist()
            seek_l = xfer_l = None
        elif seg_end == _INF:
            # The whole chain runs to completion, so every candidate's
            # rotation is drawn — a bulk draw is the identical stream.
            rot = rng.uniform(0.0, lane.rotation_s, n)
            svc_l = ((seek + rot) + xfer).tolist()
            seek_l = xfer_l = None
        else:
            # Bounded horizon: only ops that actually start may draw.
            svc_l = None
            seek_l = seek.tolist()
            xfer_l = xfer.tolist()
            uniform = rng.uniform
            rotation_s = lane.rotation_s
        arr_l = arrs.tolist()
        blk_l = blocks.tolist()
        siz_l = sizes.tolist()
        free = lane.free
        seek_prev = lane.seek_prev
        head = lane.head
        ops = lane.ops
        nbytes = lane.nbytes
        last_act = lane.last_act
        starts = 0
        stop_at = n
        for j in range(n):
            a = arr_l[j]
            start = a if a > free else free
            if start >= seg_end:
                stop_at = j
                break
            if svc_l is None:
                svc = (seek_l[j] + float(uniform(0.0, rotation_s))) + xfer_l[j]
            else:
                svc = svc_l[j]
            el = start - mlast
            if el > 0.0:
                idle_j += idle_w * el
                idle_s += el
                folded_idle = True
            mlast = start
            starts += 1
            seek_prev = blk_l[j]
            c = start + svc
            if c >= seg_end:
                lane.infl = (
                    c, start,
                    [a, req_l[j], blk_l[j], siz_l[j],
                     atts[j] if atts is not None else 0],
                )
                free = c
                stop_at = j + 1
                break
            el = c - start
            if el > 0.0:
                act_j += act_w * el
                act_s += el
                folded_act = True
            mlast = c
            free = c
            head = blk_l[j]
            ops += 1
            nbytes += siz_l[j]
            append((c, req_l[j], False))
            attempts += 1
            if c > last_event:
                last_event = c
            last_act = c
        if stop_at < n:
            q_append = lane.queue.append
            for j in range(stop_at, n):
                q_append([arr_l[j], req_l[j], blk_l[j], siz_l[j],
                          atts[j] if atts is not None else 0])
        if grp is not None:
            t_last = arr_l[-1] if nq == 0 else float(tms[-1])
            if t_last > last_act:
                last_act = t_last
        lane.free = free
        lane.seek_prev = seek_prev
        lane.head = head
        lane.ops = ops
        lane.nbytes = nbytes
        lane.last_act = last_act
        self._store_lane_folds(
            lane, mlast, idle_j, idle_s, act_j, act_s, folded_idle, folded_act)
        return starts, attempts, last_event

    # -- fault segment: lean per-disk event loop ---------------------------

    def _run_lean(
        self,
        lane: _Lane,
        grp: tuple | None,
        seg_end: float,
        deliveries: list,
    ) -> tuple[int, int, int, float]:
        """A fault window overlaps the segment (or retries are pending):
        run a per-disk event merge that consults the real fault state —
        same draw sites, same retry arithmetic as the scalar disk.
        Returns ``(starts, attempts, resub_events, last_event_time)``."""
        fault = lane.fault
        assert fault is not None
        retry = fault.retry
        rng = lane.rng
        min_seek, seek_span, span = lane.min_seek, lane.seek_span, lane.span
        rotation_s, bps = lane.rotation_s, lane.bps
        slow_factor = fault.slow_factor
        should_error = fault.should_error
        sqrt = math.sqrt
        if grp is not None:
            tms, blks, szs, reqs = grp
            arr_l = tms.tolist()
            blk_l = blks.tolist()
            siz_l = szs.tolist()
            n = len(reqs)
        else:
            arr_l = blk_l = siz_l = []
            reqs = []
            n = 0
        i = 0
        queue = lane.queue
        resubs = lane.resubs
        infl = lane.infl
        mlast = lane.mlast
        idle_w, act_w = lane.idle_w, lane.act_w
        idle_j, idle_s = lane.idle_j, lane.idle_s
        act_j, act_s = lane.act_j, lane.act_s
        folded_idle, folded_act = lane.folded_idle, lane.folded_act
        seek_prev = lane.seek_prev
        append = deliveries.append
        heappush, heappop = heapq.heappush, heapq.heappop
        starts = attempts = resub_events = scheds = 0
        last_event = -_INF
        max_attempts = retry.max_attempts
        while True:
            tc = infl[0] if infl is not None else _INF
            tr = resubs[0][0] if resubs else _INF
            ta = arr_l[i] if i < n else _INF
            t = tc if tc <= tr else tr
            if ta < t:
                t = ta
            if t >= seg_end:
                break
            if t == tc and tc <= tr:
                now, s0, rec = infl
                attempts += 1
                last_event = now
                el = now - mlast
                if el > 0.0:
                    act_j += act_w * el
                    act_s += el
                    folded_act = True
                mlast = now
                infl = None
                lane.head = rec[2]
                lane.last_act = now
                if should_error(now):
                    lane.op_errors += 1
                    rec[4] += 1
                    if rec[4] >= max_attempts:
                        append((now, rec[1], True))
                    else:
                        lane.op_retries += 1
                        backoff = retry.backoff_for(rec[4])
                        scheds += 1
                        self._resub_tiebreak += 1
                        heappush(resubs, (now + backoff, self._resub_tiebreak, rec))
                else:
                    lane.ops += 1
                    lane.nbytes += rec[3]
                    append((now, rec[1], False))
            elif t == tr:
                now, _, rec = heappop(resubs)
                resub_events += 1
                last_event = now
                queue.append(rec)
                lane.last_act = now
                if infl is not None:
                    continue
            else:
                now = ta
                queue.append([now, reqs[i], blk_l[i], siz_l[i], 0])
                i += 1
                lane.last_act = now
                if infl is not None:
                    continue
            if infl is None and queue:
                # Start the next service, scalar math inline.
                rec = queue.popleft()
                el = now - mlast
                if el > 0.0:
                    idle_j += idle_w * el
                    idle_s += el
                    folded_idle = True
                mlast = now
                blk = rec[2]
                distance = abs(blk - seek_prev) / span
                if distance > 1.0:
                    distance = 1.0
                seek = 0.0 if distance == 0.0 else min_seek + seek_span * sqrt(distance)
                rotation = rotation_s / 2.0 if rng is None else float(
                    rng.uniform(0.0, rotation_s))
                svc = seek + rotation + rec[3] / bps
                svc *= slow_factor(now)
                infl = (now + svc, now, rec)
                seek_prev = blk
                starts += 1
        # Arrivals at exactly seg_end (barrier tie-winners) only queue.
        while i < n:
            queue.append([arr_l[i], reqs[i], blk_l[i], siz_l[i], 0])
            if arr_l[i] > lane.last_act:
                lane.last_act = arr_l[i]
            i += 1
        lane.infl = infl
        lane.seek_prev = seek_prev
        self._pending_scheds += scheds
        self._store_lane_folds(
            lane, mlast, idle_j, idle_s, act_j, act_s, folded_idle, folded_act)
        return starts, attempts, resub_events, last_event

    def _store_lane_folds(
        self, lane: _Lane, mlast: float,
        idle_j: float, idle_s: float, act_j: float, act_s: float,
        folded_idle: bool, folded_act: bool,
    ) -> None:
        lane.mlast = mlast
        lane.idle_j = idle_j
        lane.idle_s = idle_s
        lane.act_j = act_j
        lane.act_s = act_s
        lane.folded_idle = folded_idle
        lane.folded_act = folded_act

    # -- delivery fold -----------------------------------------------------

    def _fold_deliveries(self, deliveries: list) -> None:
        """Deliver completions in global time order: latency Welford,
        deficit/window accounting, array counters — exactly the work
        ``runner._complete`` plus the array's ``_op_done`` do."""
        deliveries.sort()
        times = self._times
        st = self.latency.stats
        n, total, mean = st.n, st.total, st.mean
        m2, mn, mx = st._m2, st.min, st.max
        keep = self.latency.keep_samples
        samples_append = self.latency._samples.append
        deficit = self.deficit
        windows = self._latency_windows
        fg = failed_n = 0
        for c, req, bad in deliveries:
            if bad:
                failed_n += 1
                continue
            lat = c - times[req]
            n += 1
            total += lat
            delta = lat - mean
            mean += delta / n
            m2 += delta * (lat - mean)
            if lat < mn:
                mn = lat
            if lat > mx:
                mx = lat
            if keep:
                samples_append(lat)
            if deficit is not None:
                deficit.add(lat)
            if windows is not None:
                windows.add(c, lat)
            fg += 1
        st.n, st.total, st.mean = n, total, mean
        st._m2, st.min, st.max = m2, mn, mx
        array = self.array
        array.foreground_completed += fg
        if failed_n:
            array.failed_requests += failed_n
            self.failed_requests += failed_n
        self._outstanding -= fg + failed_n
        deliveries.clear()

    # -- flush & fallback --------------------------------------------------

    def _flush_meters(self) -> None:
        for lane, disk in zip(self._lanes, self.array.disks):
            meter = disk.meter
            joules, seconds = meter.breakdown.joules, meter.breakdown.seconds
            if lane.folded_idle:
                joules["idle"] = lane.idle_j
                seconds["idle"] = lane.idle_s
            if lane.folded_act:
                joules["active"] = lane.act_j
                seconds["active"] = lane.act_s
            meter._last_time = lane.mlast
            if lane.infl is not None:
                meter._watts = lane.act_w
                meter._label = "active"
            else:
                meter._watts = lane.idle_w
                meter._label = "idle"

    def _flush_all(self) -> None:
        self._flush_meters()
        for lane, disk in zip(self._lanes, self.array.disks):
            disk.head_block = lane.head
            disk.last_activity_time = lane.last_act
            disk.ops_completed = lane.ops
            disk.bytes_transferred = lane.nbytes
            disk.op_errors = lane.op_errors
            disk.op_retries = lane.op_retries

    def _make_op(self, rec: list, disk_index: int) -> DiskOp:
        """Rebuild the Request + DiskOp pair (with the array's
        completion closure) for a carried op during fallback."""
        arrival, req_idx, blk, size, att = rec
        request = Request(
            req_id=req_idx,
            arrival=self._times[req_idx],
            kind=self._kinds[req_idx],
            extent=self._extents[req_idx],
            offset=self._offsets[req_idx],
            size=self._sizes[req_idx],
        )
        request.ops_outstanding = 1
        array = self.array
        sim_complete = self._complete

        def _op_done(op: DiskOp, request: Request = request) -> None:
            if op.failed:
                request.failed = True
            request.ops_outstanding -= 1
            if request.ops_outstanding == 0:
                request.completion = array.engine.now
                if request.failed:
                    array.failed_requests += 1
                elif request.klass is RequestClass.FOREGROUND:
                    array.foreground_completed += 1
                sim_complete(request)

        op = DiskOp(
            request=request,
            kind=request.kind,
            disk_index=disk_index,
            block=blk,
            size=size,
            on_complete=_op_done,
        )
        op.enqueued = arrival
        op.attempts = att
        return op

    def _fallback_to_scalar(self) -> None:
        """Materialize pump state into real engine/disk state and hand
        the rest of the run to the inherited scalar event loop."""
        engine = self.engine
        if self._pump_ready:
            self._flush_all()
            for d, (lane, disk) in enumerate(zip(self._lanes, self.array.disks)):
                for rec in lane.queue:
                    disk.queue.push(self._make_op(rec, d))
                lane.queue.clear()
                if lane.infl is not None:
                    c, s0, rec = lane.infl
                    op = self._make_op(rec, d)
                    op.started = s0
                    disk._in_flight = op
                    disk.state = DiskState.ACTIVE
                    engine.schedule_fast(c, disk._complete, (op,))
                    lane.infl = None
                for r, _, rec in lane.resubs:
                    engine.schedule_fast(r, disk._resubmit, (self._make_op(rec, d),))
                lane.resubs = []
        pa = self._pending_arrival
        if pa is not None:
            # Re-insert with the sequence number reserved at allocation
            # time so its ordering against heap entries is preserved.
            heapq.heappush(engine._heap, (pa[0], pa[1], self._arrive, ()))
            engine._live += 1
            self._pending_arrival = None
        self._scalar_mode = True
