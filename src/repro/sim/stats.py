"""Online statistics used throughout the simulator.

Everything here is incremental: the simulator feeds observations as they
happen and the experiment harness reads summaries at the end (or at epoch
boundaries). Nothing stores the full event stream unless explicitly asked
to (:class:`LatencyRecorder` with ``keep_samples=True``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


class OnlineStats:
    """Streaming count/mean/variance/min/max (Welford's algorithm)."""

    __slots__ = ("n", "mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        """Fold one observation into the summary."""
        self.n += 1
        self.total += x
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def variance(self) -> float:
        """Population variance; 0.0 with fewer than two observations."""
        if self.n < 2:
            return 0.0
        return self._m2 / self.n

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> None:
        """Fold another summary into this one (parallel Welford merge)."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n = self.n + other.n
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self.mean = (self.mean * self.n + other.mean * other.n) / n
        self.n = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineStats(n={self.n}, mean={self.mean:.6g}, stdev={self.stdev:.6g})"


class LatencyRecorder:
    """Latency accounting with optional percentile support.

    Always keeps streaming moments; when ``keep_samples`` is true it also
    retains every sample so exact percentiles can be computed afterwards.
    """

    def __init__(self, keep_samples: bool = True) -> None:
        self.stats = OnlineStats()
        self.keep_samples = keep_samples
        self._samples: list[float] = []

    def add(self, latency: float) -> None:
        self.stats.add(latency)
        if self.keep_samples:
            self._samples.append(latency)

    @property
    def n(self) -> int:
        return self.stats.n

    @property
    def mean(self) -> float:
        return self.stats.mean

    def percentile(self, q: float) -> float:
        """Exact percentile (q in [0, 100]); requires kept samples."""
        if not self.keep_samples:
            raise ValueError("percentiles need keep_samples=True")
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.percentile(self._samples, q))

    def samples(self) -> np.ndarray:
        """Copy of the recorded samples (empty if not kept)."""
        return np.asarray(self._samples, dtype=float)


class TimeWeighted:
    """Integrates a piecewise-constant signal over simulated time.

    Used for utilization, queue length and power-state occupancy: call
    :meth:`update` whenever the signal changes and :meth:`finish` at the
    end of the run.
    """

    __slots__ = ("_value", "_last_time", "integral", "_started")

    def __init__(self, initial: float = 0.0, start_time: float = 0.0) -> None:
        self._value = initial
        self._last_time = start_time
        self.integral = 0.0
        self._started = start_time

    @property
    def value(self) -> float:
        return self._value

    def update(self, now: float, new_value: float) -> None:
        """Advance the integral to ``now`` and switch to ``new_value``."""
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self.integral += self._value * (now - self._last_time)
        self._last_time = now
        self._value = new_value

    def advance(self, now: float) -> None:
        """Advance the integral to ``now`` without changing the value."""
        self.update(now, self._value)

    def mean(self, now: float) -> float:
        """Time-average of the signal from the start through ``now``."""
        span = now - self._started
        if span <= 0:
            return self._value
        return (self.integral + self._value * (now - self._last_time)) / span


class DeficitTracker:
    """Running sum of (observation - goal), the boost trigger signal.

    Hibernator's performance guarantee keeps the *cumulative average*
    response time at or below the goal. Equivalently, the running sum of
    per-request overshoot ``latency - goal`` must be <= 0. This class
    tracks that sum; a positive :attr:`deficit` means the guarantee is
    currently violated and the array must be boosted to full speed.
    """

    __slots__ = ("goal", "deficit", "n")

    def __init__(self, goal: float) -> None:
        if goal <= 0:
            raise ValueError(f"goal must be positive, got {goal!r}")
        self.goal = goal
        self.deficit = 0.0
        self.n = 0

    def add(self, latency: float) -> None:
        self.deficit += latency - self.goal
        self.n += 1

    @property
    def violated(self) -> bool:
        """True when the cumulative average currently exceeds the goal."""
        return self.deficit > 0.0

    @property
    def cumulative_average(self) -> float:
        """Cumulative average response time implied by the deficit."""
        if self.n == 0:
            return 0.0
        return self.goal + self.deficit / self.n

    def headroom(self) -> float:
        """Slack (in latency-seconds) before the guarantee is violated."""
        return -self.deficit


@dataclass
class WindowAverage:
    """Fixed-duration tumbling-window mean, for time-series plots."""

    width: float
    _window_start: float = 0.0
    _sum: float = 0.0
    _count: int = 0
    points: list[tuple[float, float, int]] = field(default_factory=list)

    def add(self, now: float, value: float) -> None:
        """Record an observation, closing windows that ``now`` has passed."""
        self._roll(now)
        self._sum += value
        self._count += 1

    def _roll(self, now: float) -> None:
        while now >= self._window_start + self.width:
            if self._count:
                mean = self._sum / self._count
            else:
                # A window with no observations has no mean; 0.0 would be
                # indistinguishable from a genuine zero-latency window.
                mean = float("nan")
            self.points.append((self._window_start, mean, self._count))
            self._window_start += self.width
            self._sum = 0.0
            self._count = 0

    def finish(self, now: float) -> list[tuple[float, float, int]]:
        """Close the final window and return all (start, mean, n) points."""
        self._roll(now)
        if self._count:
            self.points.append((self._window_start, self._sum / self._count, self._count))
            self._sum = 0.0
            self._count = 0
        return self.points
