"""I/O request model shared by traces, the disk array and policies.

A :class:`Request` is a *logical* array-level operation (read or write of
``size`` bytes starting at byte ``offset`` inside logical extent
``extent``). The array layer fans a logical request out into one or more
*physical* disk operations (:class:`DiskOp`); the request completes when
its last physical operation completes.

Requests carry their own latency bookkeeping so statistics never need a
side table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class IoKind(enum.Enum):
    """Operation direction of a request."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RequestClass(enum.Enum):
    """Why a request exists; migration traffic is accounted separately."""

    FOREGROUND = "foreground"
    MIGRATION = "migration"


@dataclass(slots=True)
class Request:
    """A logical array-level I/O request.

    Attributes:
        req_id: unique id within a simulation run.
        arrival: simulated arrival time (seconds).
        kind: read or write.
        extent: logical extent index addressed.
        offset: byte offset within the extent.
        size: transfer size in bytes.
        klass: foreground (trace) or migration (background) traffic.
        completion: set when the last physical op finishes; None while
            in flight.
        ops_outstanding: physical ops still in flight for this request.
    """

    req_id: int
    arrival: float
    kind: IoKind
    extent: int
    offset: int
    size: int
    klass: RequestClass = RequestClass.FOREGROUND
    completion: float | None = None
    ops_outstanding: int = 0
    #: True when the request could not be served (e.g. data lost to a
    #: double failure); failed requests complete immediately and are
    #: excluded from latency statistics.
    failed: bool = False

    @property
    def latency(self) -> float:
        """Response time in seconds; raises if the request is in flight."""
        if self.completion is None:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.completion - self.arrival

    @property
    def is_read(self) -> bool:
        return self.kind is IoKind.READ

    @property
    def is_migration(self) -> bool:
        return self.klass is RequestClass.MIGRATION


@dataclass(slots=True)
class DiskOp:
    """A physical operation queued at one disk on behalf of a request.

    Attributes:
        request: the logical parent request (None for synthetic ops such
            as parity scrubs injected by tests).
        kind: physical direction; may differ from the parent (RAID-5
            read-modify-write issues reads for a logical write).
        disk_index: target disk within the array.
        block: physical block index on the disk, used for seek-distance
            modelling.
        size: transfer size in bytes.
        enqueued: time the op joined the disk queue.
        started: time service began (None while queued).
        finished: time service completed (None while queued/in service).
    """

    request: Request | None
    kind: IoKind
    disk_index: int
    block: int
    size: int
    enqueued: float = 0.0
    started: float | None = None
    finished: float | None = None
    on_complete: object = field(default=None, repr=False)
    #: Transient-error attempts already consumed by this op. Incremented
    #: by the disk when an injected fault forces a retry.
    attempts: int = 0
    #: True when the op gave up: its retry budget is exhausted or its
    #: disk failed while the op waited to be retried. A failed op still
    #: delivers ``on_complete`` exactly once so callers can unwind.
    failed: bool = False

    @property
    def queue_delay(self) -> float:
        if self.started is None:
            raise ValueError("op has not started service")
        return self.started - self.enqueued

    @property
    def service_time(self) -> float:
        if self.started is None or self.finished is None:
            raise ValueError("op has not finished service")
        return self.finished - self.started
