"""Discrete-event simulation substrate.

This package provides the engine that every other subsystem runs on:

* :mod:`repro.sim.engine` -- the event loop (a classic binary-heap
  discrete-event scheduler with cancellable events).
* :mod:`repro.sim.request` -- the I/O request model shared by traces,
  disks and policies.
* :mod:`repro.sim.stats` -- online statistics used for response-time and
  utilization accounting.
* :mod:`repro.sim.runner` -- the orchestration layer that replays a trace
  against a disk array under a power-management policy and collects the
  metrics every experiment reports.
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.request import IoKind, Request
from repro.sim.runner import ArraySimulation, SimulationResult
from repro.sim.stats import DeficitTracker, LatencyRecorder, OnlineStats, TimeWeighted

__all__ = [
    "Engine",
    "EventHandle",
    "IoKind",
    "Request",
    "ArraySimulation",
    "SimulationResult",
    "OnlineStats",
    "LatencyRecorder",
    "TimeWeighted",
    "DeficitTracker",
]
