"""Simulation orchestration: trace x array x policy -> metrics.

:class:`ArraySimulation` replays a trace against a :class:`DiskArray`
under a power-management policy and produces a :class:`SimulationResult`
with everything the experiments report: energy (total and by category),
response-time statistics (foreground traffic only), migration overhead,
spin-up/speed-change counts and optional time series.

Arrivals are scheduled lazily (each arrival schedules the next) so the
event heap stays small regardless of trace length.
"""

from __future__ import annotations

import time
import typing
from dataclasses import dataclass, field

from repro.disks.array import ArrayConfig, DiskArray
from repro.disks.power import PowerBreakdown
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.events import RequestFailed, RunEnd, RunStart, TraceEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracelog import TraceLog
from repro.sim.engine import Engine
from repro.sim.request import IoKind, Request
from repro.sim.stats import DeficitTracker, LatencyRecorder, WindowAverage
from repro.traces.model import _KIND_READ, Trace

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.policies.base import PowerPolicy


@dataclass
class SimulationResult:
    """Everything one run reports.

    Energy figures cover the whole run (trace duration plus drain);
    latency statistics cover foreground requests only — migration I/O is
    charged to energy and disk time but not to response time, matching
    the paper's accounting.

    ``num_requests`` counts **successfully served** foreground requests
    — exactly the population the latency statistics are computed over.
    Requests that could not be served (degraded mode without redundancy)
    are counted in ``failed_requests`` only and contribute no latency
    samples, so ``num_requests + failed_requests`` is the total offered
    foreground load.

    ``events`` holds the structured trace (:mod:`repro.obs`) when the run
    was built with ``observe=True``; it is empty — and cost nothing to
    not collect — otherwise.
    """

    trace_name: str
    policy_name: str
    policy_params: str
    num_requests: int
    sim_end: float
    energy_joules: float
    breakdown: PowerBreakdown
    mean_response_s: float
    p95_response_s: float
    p99_response_s: float
    max_response_s: float
    goal_s: float | None
    cumulative_avg_vs_goal: float | None
    failed_requests: int
    migration_extents: int
    migration_bytes: int
    spinups: int
    speed_changes: int
    latency_windows: list[tuple[float, float, int]] = field(default_factory=list)
    speed_samples: list[tuple[float, float, int]] = field(default_factory=list)
    power_samples: list[tuple[float, float]] = field(default_factory=list)
    extras: dict[str, float] = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def mean_power_watts(self) -> float:
        if self.sim_end <= 0:
            return 0.0
        return self.energy_joules / self.sim_end

    @property
    def meets_goal(self) -> bool:
        """True when the run's mean response time is within the goal."""
        if self.goal_s is None:
            return True
        return self.mean_response_s <= self.goal_s

    def energy_savings_vs(self, baseline: "SimulationResult") -> float:
        """Fractional energy savings relative to ``baseline`` (1 - E/E0)."""
        if baseline.energy_joules <= 0:
            return 0.0
        return 1.0 - self.energy_joules / baseline.energy_joules


class ArraySimulation:
    """One trace replay against one array under one policy.

    The classic entry point is the one-shot :meth:`run`. The serve
    daemon (:mod:`repro.serve`) instead drives the same machinery
    incrementally: :meth:`begin` once, :meth:`step` as often as its
    pacing loop likes, :meth:`finalize` at the end. ``run()`` is exactly
    ``begin() + step() + finalize()``, so both driving modes execute the
    identical event sequence and produce byte-identical results.

    Args:
        trace: workload to replay.
        array_config: array shape/hardware.
        policy: power-management policy instance.
        goal_s: optional response-time goal, recorded into the result
            (and visible to goal-aware policies via :attr:`goal_s`).
        window_s: width of the time-series windows; None disables
            time-series collection.
        keep_latency_samples: retain per-request latencies for exact
            percentiles (disable for very long runs).
        observe: collect the structured event trace (:mod:`repro.obs`)
            into ``SimulationResult.events``. Off by default; when off,
            the ``emit`` hook is None everywhere and no event objects are
            ever constructed, so metrics are identical either way.
        faults: declarative fault plan to inject during the run. None
            (or an empty plan) installs nothing, keeping the run
            byte-identical to a fault-free one. Faults scheduled past
            the trace's drain point never fire — the accounting window
            is bounded by the workload, exactly as for periodic timers.
        live: the run may receive requests beyond the trace columns via
            :meth:`inject_request` (serve live mode). Periodic machinery
            (samplers, epoch boundaries) keeps rescheduling while the
            stream is open even after the trace itself is exhausted; see
            :attr:`workload_open`. False for every batch run, in which
            case behaviour is untouched.
    """

    def __init__(
        self,
        trace: Trace,
        array_config: ArrayConfig,
        policy: "PowerPolicy",
        goal_s: float | None = None,
        window_s: float | None = None,
        keep_latency_samples: bool = True,
        observe: bool = False,
        faults: FaultPlan | None = None,
        live: bool = False,
    ) -> None:
        self.trace = trace
        # Column pre-extraction: replaying through Trace.__getitem__ costs
        # a TraceRequest allocation plus five numpy-scalar boxings per
        # request. Plain Python lists with pre-decoded IoKind values make
        # _arrive allocation-free apart from the Request itself. tolist()
        # yields native floats/ints, so values are bit-identical to the
        # float()/int() conversions __getitem__ performs.
        self._times: list[float] = trace.times.tolist()
        _read, _write = IoKind.READ, IoKind.WRITE
        self._kinds: list[IoKind] = [
            _read if k == _KIND_READ else _write for k in trace.kinds.tolist()
        ]
        self._extents: list[int] = trace.extents.tolist()
        self._offsets: list[int] = trace.offsets.tolist()
        self._sizes: list[int] = trace.sizes.tolist()
        self._trace_len = len(trace)
        self.engine = Engine()
        self.array = DiskArray(self.engine, array_config)
        self.policy = policy
        # Pre-bound hot callables: _arrive/_complete run once per request
        # and the attribute chains (self.policy.on_request_arrival etc.)
        # cost a dict lookup plus a bound-method build per call.
        self._on_arrival = policy.on_request_arrival
        self._on_completion = policy.on_request_complete
        self._array_submit = self.array.submit
        self.goal_s = goal_s
        self.metrics = MetricsRegistry()
        self.obs_log: TraceLog | None = TraceLog() if observe else None
        #: The narrow observability hook: ``emit(event)`` or None. Every
        #: instrumented site guards with ``is None`` so disabled runs pay
        #: nothing.
        self.emit = self.obs_log.emit if self.obs_log is not None else None
        if self.emit is not None:
            self.array.install_trace_hook(self.emit)
        self.latency = LatencyRecorder(keep_samples=keep_latency_samples)
        self.deficit = DeficitTracker(goal_s) if goal_s is not None else None
        self._window_s = window_s
        self._latency_windows = WindowAverage(window_s) if window_s else None
        self._speed_samples: list[tuple[float, float, int]] = []
        self._power_samples: list[tuple[float, float]] = []
        self._next_index = 0
        self._outstanding = 0
        self._ran = False
        self._finalized = False
        self.failed_requests = 0
        self.live = live
        #: Requests submitted via :meth:`inject_request` (serve live mode).
        self.injected_requests = 0
        self._halted = False
        self._drain_complete = False
        self._wall_s = 0.0
        # Fault injection: an empty plan is normalized to None so that
        # FaultPlan() and faults=None take the exact same (hook-free)
        # code path.
        self.faults = faults if faults is not None and not faults.empty else None
        self.injector: FaultInjector | None = None

    # -- arrival plumbing ----------------------------------------------------

    def _schedule_next_arrival(self) -> None:
        i = self._next_index
        if i < self._trace_len:
            # Arrivals are never cancelled: tuple fast path.
            self.engine.schedule_fast(self._times[i], self._arrive)

    def _arrive(self) -> None:
        if self._halted:
            # Graceful shutdown: the arrival chain is broken here (fast
            # events cannot be cancelled), so no further trace requests
            # are submitted while in-flight ones drain.
            return
        i = self._next_index
        self._next_index = i + 1
        # arrival is the scheduled time, which is exactly engine.now when
        # this callback fires — reading the column skips the property hop.
        request = Request(
            req_id=i,
            arrival=self._times[i],
            kind=self._kinds[i],
            extent=self._extents[i],
            offset=self._offsets[i],
            size=self._sizes[i],
        )
        self._outstanding += 1
        self._on_arrival(request)
        self._array_submit(request, self._complete)
        self._schedule_next_arrival()

    def _complete(self, request: Request) -> None:
        self._outstanding -= 1
        if request.failed:
            self.failed_requests += 1
            if self.emit is not None:
                self.emit(RequestFailed(
                    time=self.engine.now,
                    req_id=request.req_id,
                    extent=request.extent,
                    op_kind=request.kind.value,
                ))
            # No latency to record, but the policy must still see the
            # completion (request.failed is set) or outstanding-request
            # accounting leaks on degraded-mode runs.
            self._on_completion(request)
            return
        latency = request.latency
        self.latency.add(latency)
        if self.deficit is not None:
            self.deficit.add(latency)
        if self._latency_windows is not None:
            self._latency_windows.add(self.engine.now, latency)
        self._on_completion(request)

    def _sample_speeds(self) -> None:
        speeds = self.array.speeds()
        mean_rpm = sum(speeds) / len(speeds)
        spinning = sum(1 for s in speeds if s > 0)
        self._speed_samples.append((self.engine.now, mean_rpm, spinning))
        watts = sum(d.meter.watts for d in self.array.disks)
        self._power_samples.append((self.engine.now, watts))
        if self.workload_open:
            assert self._window_s is not None
            self.engine.schedule_after_fast(self._window_s, self._sample_speeds)

    def _emit_terminal_sample(self, end: float) -> None:
        """Close the speed/power time series with a sample at ``end``.

        The periodic sampler stops rescheduling once the workload drains,
        so without this the series would end one window early and
        timelines would not cover the full energy-accounting window.
        """
        if self._speed_samples and self._speed_samples[-1][0] >= end:
            return
        speeds = self.array.speeds()
        mean_rpm = sum(speeds) / len(speeds)
        spinning = sum(1 for s in speeds if s > 0)
        self._speed_samples.append((end, mean_rpm, spinning))
        watts = sum(d.meter.watts for d in self.array.disks)
        self._power_samples.append((end, watts))

    def _drained(self) -> bool:
        return self._next_index >= self._trace_len and self._outstanding == 0

    @property
    def workload_open(self) -> bool:
        """More foreground work can still arrive.

        Periodic machinery (the sampler, epoch boundaries, policy
        timers) keys rescheduling off this: in batch mode it is exactly
        "trace remains or requests are in flight"; in live mode the
        stream stays open until :meth:`halt_arrivals`.
        """
        if self.live and not self._halted:
            return True
        return self._next_index < self._trace_len or self._outstanding > 0

    @property
    def drain_complete(self) -> bool:
        """True once :meth:`step` has delivered everything a batch
        ``run()`` would have executed (workload drained, loop stopped)."""
        return self._drain_complete

    @property
    def outstanding(self) -> int:
        """Foreground requests currently in flight."""
        return self._outstanding

    @property
    def trace_remaining(self) -> int:
        """Trace requests not yet submitted."""
        return self._trace_len - self._next_index

    # -- main entries ---------------------------------------------------------

    def begin(self) -> None:
        """Set up the run: attach the policy, install faults, prime the
        event loop. Call once; :meth:`run` does it for you."""
        if self._ran:
            raise RuntimeError("ArraySimulation is single-shot; build a new one")
        self._ran = True
        self.policy.attach(self)
        if self.faults is not None:
            self.injector = FaultInjector(
                self.engine, self.array, self.faults, self.policy,
            )
            self.injector.install()
        if self.obs_log is not None:
            # Prepended *after* attach so initial_rpm reflects any instant
            # (force_speed) priming the policy did; every attach-time event
            # shares t=0 with it, so time order is preserved.
            self.obs_log.events.insert(0, RunStart(
                time=0.0,
                trace_name=self.trace.name,
                policy_name=self.policy.name,
                policy_params=self.policy.describe(),
                goal_s=self.goal_s,
                num_disks=self.array.num_disks,
                num_extents=self.array.num_extents,
                initial_rpm=tuple(int(d.rpm) for d in self.array.disks),
            ))
        self._schedule_next_arrival()
        if self._window_s is not None:
            self.engine.schedule_fast(0.0, self._sample_speeds)

    def step(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_on_drain: bool = True,
    ) -> int:
        """Advance the simulation and return the events executed.

        With ``stop_on_drain`` (the default, batch semantics) the loop
        exits as soon as every foreground request has completed —
        lingering periodic timers must not stretch the energy-accounting
        window — and later calls are no-ops, so any chunking of ``step``
        calls executes the exact event sequence one un-chunked call
        would. ``stop_on_drain=False`` is the live-mode variant: the
        clock may fast-forward to ``until`` so wall-clock-paced epochs
        keep firing while the request stream is idle.
        """
        if stop_on_drain and self._drain_complete:
            return 0
        # The wall clock feeds the runtime_* gauges only, never a
        # simulation result; see test_observe_parity.
        # repro: lint-ok[DET003] wall-clock instrumentation, not a result input
        wall_start = time.perf_counter()
        executed = self.engine.run(
            until=until,
            max_events=max_events,
            stop=self._drained if stop_on_drain else None,
        )
        self._wall_s += time.perf_counter() - wall_start  # repro: lint-ok[DET003] instrumentation only
        if stop_on_drain and self._drained():
            # The stop predicate fired (or would fire on the very next
            # callback): everything a one-shot run() executes has run.
            self._drain_complete = True
        return executed

    def run(self) -> SimulationResult:
        """Replay the trace to completion and return the metrics."""
        self.begin()
        self.step()
        return self.finalize()

    # -- serve-mode controls --------------------------------------------------

    def halt_arrivals(self) -> None:
        """Stop submitting new foreground requests (graceful shutdown).

        Trace arrivals already in the heap return without submitting;
        in-flight requests keep draining. Irreversible.
        """
        self._halted = True

    def drain_in_flight(self) -> int:
        """Run the engine only until every in-flight request completes.

        The serve daemon's shutdown path: after :meth:`halt_arrivals`,
        this delivers the completions already under way without starting
        anything new. Returns the events executed.
        """
        if self._outstanding == 0:
            return 0
        return self.engine.run(stop=lambda: self._outstanding == 0)

    def inject_request(
        self,
        kind: IoKind,
        extent: int,
        offset: int = 0,
        size: int = 4096,
    ) -> int:
        """Submit one foreground request from outside the trace columns.

        The serve daemon's live-ingest path. The request arrives *now*
        (request ids continue past the trace's), feeds the policy hooks
        and the latency/deficit accounting exactly like a trace arrival,
        and counts toward ``num_requests`` on completion. Returns the
        request id.
        """
        if self._halted:
            raise RuntimeError("simulation is halted; no new requests accepted")
        if not 0 <= extent < self.array.num_extents:
            raise ValueError(
                f"extent {extent} outside the volume [0, {self.array.num_extents})"
            )
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        req_id = self._trace_len + self.injected_requests
        self.injected_requests += 1
        request = Request(
            req_id=req_id,
            arrival=self.engine.now,
            kind=kind,
            extent=extent,
            offset=offset,
            size=size,
        )
        self._outstanding += 1
        self._on_arrival(request)
        self._array_submit(request, self._complete)
        return req_id

    def set_goal(self, goal_s: float | None) -> None:
        """Change (or clear) the response-time goal mid-run.

        The deficit accounting restarts under the new goal — mixing
        per-request overshoots measured against two different goals
        would make the cumulative figure meaningless — and the policy is
        told via :meth:`~repro.policies.base.PowerPolicy.on_goal_changed`
        so goal-aware controllers (the boost, the CR optimizer's next
        epoch solve) act on it online.
        """
        if goal_s is not None and goal_s <= 0:
            raise ValueError(f"goal must be positive, got {goal_s!r}")
        self.goal_s = goal_s
        self.deficit = DeficitTracker(goal_s) if goal_s is not None else None
        self.policy.on_goal_changed(goal_s)

    def inject_faults(self, plan: FaultPlan) -> None:
        """Install an additional fault plan mid-run (serve control path).

        Plan times must already be absolute simulated seconds at or
        after ``engine.now`` (the serve daemon shifts relative plans via
        :func:`repro.faults.plan.shift_fault_plan`). The first injected
        plan's rebuild knobs govern if the run started fault-free.
        """
        if plan.empty:
            return
        if self.injector is None:
            # Validate before install(): install attaches per-disk fault
            # state as it goes, so a late rejection would leave the plan
            # half-applied. (add_plan does its own up-front validation.)
            now = self.engine.now
            for failure in plan.disk_failures:
                if not 0 <= failure.disk < self.array.num_disks:
                    raise ValueError(
                        f"fault plan fails disk {failure.disk}, but the "
                        f"array has {self.array.num_disks} disks"
                    )
                if failure.time_s < now:
                    raise ValueError(
                        f"disk {failure.disk} failure at t={failure.time_s} "
                        f"is in the past (now={now}); shift the plan forward"
                    )
            self.injector = FaultInjector(
                self.engine, self.array, plan, self.policy,
            )
            self.injector.install()
        else:
            self.injector.add_plan(plan)

    # -- result assembly ------------------------------------------------------

    def finalize(self) -> SimulationResult:
        """Close accounting and assemble the result. Call once, after
        the workload drained (or the serve daemon drained in-flight)."""
        if not self._ran:
            raise RuntimeError("finalize() before begin()")
        if self._finalized:
            raise RuntimeError("finalize() is single-shot")
        self._finalized = True
        wall_s = self._wall_s
        events = self.engine.events_executed
        end = max(self.engine.now, self.trace.duration)
        self.policy.on_finish(end)
        energy = 0.0
        breakdown = PowerBreakdown()
        spinups = 0
        speed_changes = 0
        for disk in self.array.disks:
            energy += disk.finish_accounting(end)
            breakdown.merge(disk.meter.breakdown)
            spinups += disk.spinups
            speed_changes += disk.speed_changes
        if self._window_s is not None:
            self._emit_terminal_sample(end)
        windows = self._latency_windows.finish(end) if self._latency_windows else []
        has_latency = self.latency.n > 0
        # Percentiles need retained samples; when they are unavailable
        # (keep_latency_samples=False, or no successful request produced
        # one) report NaN — 0.0 would be indistinguishable from a genuine
        # zero-latency percentile. JSON exports render NaN as null.
        can_percentile = has_latency and self.latency.keep_samples
        nan = float("nan")
        extras = dict(self.policy.extras())
        # Run instrumentation, via the registry. runtime_events is
        # deterministic (a pure function of the spec); the wall-clock
        # figures are the only result fields that vary between repeats,
        # so consumers that compare results for identity must strip the
        # runtime_* keys (see repro.analysis.parallel).
        self.metrics.gauge("runtime_events").set(float(events))
        self.metrics.gauge("runtime_wall_s").set(wall_s)
        self.metrics.gauge("runtime_events_per_s").set(
            events / wall_s if wall_s > 0 else 0.0
        )
        if self.injector is not None:
            # Fault-run extras only — fault-free runs keep the exact key
            # set they had before, which the byte-identity test pins.
            self.metrics.gauge("fault_failures_injected").set(
                float(self.injector.failures_injected)
            )
            self.metrics.gauge("fault_op_errors").set(
                float(sum(d.op_errors for d in self.array.disks))
            )
            self.metrics.gauge("fault_op_retries").set(
                float(sum(d.op_retries for d in self.array.disks))
            )
            manager = self.injector.rebuild_manager
            if manager is not None:
                self.metrics.gauge("fault_rebuilt_extents").set(float(manager.rebuilt))
                self.metrics.gauge("fault_unplaced_extents").set(float(manager.unplaced))
        extras.update(self.metrics.as_dict())
        if self.emit is not None:
            self.emit(RunEnd(
                time=end,
                num_requests=self.latency.n,
                failed_requests=self.failed_requests,
                energy_joules=energy,
                impulse_joules=sum(d.meter.impulse_joules for d in self.array.disks),
                boost_seconds=extras.get("boost_seconds", 0.0),
                spinups=spinups,
                speed_changes=speed_changes,
                migration_extents=self.array.migration_extents_moved,
                migration_bytes=self.array.migration_bytes,
            ))
        return SimulationResult(
            trace_name=self.trace.name,
            policy_name=self.policy.name,
            policy_params=self.policy.describe(),
            num_requests=self.latency.n,
            sim_end=end,
            energy_joules=energy,
            breakdown=breakdown,
            mean_response_s=self.latency.mean if has_latency else 0.0,
            p95_response_s=self.latency.percentile(95) if can_percentile else nan,
            p99_response_s=self.latency.percentile(99) if can_percentile else nan,
            max_response_s=self.latency.stats.max if has_latency else 0.0,
            goal_s=self.goal_s,
            cumulative_avg_vs_goal=(
                self.deficit.cumulative_average - self.goal_s
                if self.deficit is not None and self.goal_s is not None
                else None
            ),
            failed_requests=self.failed_requests,
            migration_extents=self.array.migration_extents_moved,
            migration_bytes=self.array.migration_bytes,
            spinups=spinups,
            speed_changes=speed_changes,
            latency_windows=windows,
            speed_samples=self._speed_samples,
            power_samples=self._power_samples,
            extras=extras,
            events=list(self.obs_log.events) if self.obs_log is not None else [],
        )
