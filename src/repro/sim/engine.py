"""Discrete-event simulation engine.

A minimal, fast event loop: events are ``(time, sequence, callback)``
triples kept in a binary heap. The sequence number breaks ties so that
events scheduled earlier run earlier at equal timestamps, which makes
every simulation fully deterministic.

Events can be cancelled in O(1) by invalidating their handle; cancelled
entries are dropped lazily when they surface at the top of the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in
    the past)."""


class EventHandle:
    """Cancellable reference to a scheduled event.

    Attributes:
        time: simulated time at which the event fires.
        cancelled: True once :meth:`cancel` has been called.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple,
                 engine: "Engine | None" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if not self.cancelled and self._engine is not None:
            self._engine._live -= 1
        self.cancelled = True
        # Drop references so cancelled events do not pin large objects
        # while they wait to be popped from the heap.
        self.callback = _noop
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed by :meth:`EventHandle.cancel`."""


class Engine:
    """Binary-heap discrete-event scheduler.

    Typical use::

        engine = Engine()
        engine.schedule(1.5, my_callback, arg1, arg2)
        engine.run()

    Callbacks receive their scheduled arguments and may schedule further
    events. Time never goes backwards; scheduling an event before
    ``engine.now`` raises :class:`SimulationError`.
    """

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        # Count of live (not cancelled) events in the heap, maintained on
        # push/cancel/pop so `pending_events` is O(1) instead of a scan.
        self._live = 0
        #: Lifetime count of callbacks executed, across all run() calls.
        #: Deterministic for a given simulation, so it doubles as a
        #: cheap progress/throughput metric (events per wall-second).
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued. O(1)."""
        return self._live

    def schedule(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute ``time``.

        Returns a handle that can be cancelled with
        :meth:`EventHandle.cancel`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self._now:.6f}"
            )
        handle = EventHandle(time, self._seq, callback, args, engine=self)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    def schedule_after(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, *args)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> int:
        """Process events in time order.

        Args:
            until: stop once the next event would fire after this time
                (the clock advances to ``until`` when the loop drains,
                but not when ``stop`` or ``max_events`` ends it early).
            max_events: safety valve; stop after this many callbacks.
            stop: optional predicate checked after every callback; the
                loop exits as soon as it returns True (used to end a run
                when the workload drains even though periodic timers are
                still queued).

        Returns:
            The number of callbacks executed.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        executed = 0
        # True when the loop ran out of work at or before `until` (queue
        # empty, or the next event lies beyond the horizon). Only then may
        # the clock fast-forward to `until`; an early exit via `stop` or
        # `max_events` must leave the clock at the last executed event, or
        # the energy-accounting window silently stretches.
        drained = True
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    drained = False
                    break
                heapq.heappop(self._heap)
                self._live -= 1
                self._now = head.time
                head.callback(*head.args)
                executed += 1
                self.events_executed += 1
                if stop is not None and stop():
                    drained = False
                    break
        finally:
            self._running = False
        if until is not None and drained and self._now < until:
            self._now = until
        return executed

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
