"""Discrete-event simulation engine.

A minimal, fast event loop: the heap holds plain 4-tuples, compared at C
level on ``(time, seq)`` — the sequence number is unique, so comparison
never reaches the later elements, and equal-time events run in schedule
order, which makes every simulation fully deterministic.

Two kinds of entry share the heap:

* ``(time, seq, callback, args)`` — the *fast path*
  (:meth:`Engine.schedule_fast`): no handle is allocated and the event
  can never be cancelled. Request arrivals, service completions and
  sampler ticks — the events that dominate a run — all take this path.
* ``(time, seq, None, handle)`` — the cancellable path
  (:meth:`Engine.schedule`): element 2 is ``None`` as the discriminator
  and the :class:`EventHandle` rides in element 3. Cancellation is O(1)
  (invalidate the handle); cancelled entries are dropped lazily when
  they surface at the top of the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: A heap entry: ``(time, seq, callback, args)`` for fast events or
#: ``(time, seq, None, handle)`` for cancellable ones.
_Entry = tuple  # noqa: N816 - internal alias


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in
    the past)."""


class EventHandle:
    """Cancellable reference to a scheduled event.

    Attributes:
        time: simulated time at which the event fires.
        cancelled: True once :meth:`cancel` has been called.
        fired: True once the engine has executed the event.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_engine")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple,
                 engine: "Engine | None" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once.

        Cancelling after the event has already fired is a no-op for the
        live count: the engine decremented it when it popped the entry.
        """
        if not self.cancelled and not self.fired and self._engine is not None:
            self._engine._live -= 1
        self.cancelled = True
        # Drop references so cancelled (or fired) handles do not pin
        # large objects — including the engine and its heap — while the
        # caller retains the handle.
        self.callback = _noop
        self.args = ()
        self._engine = None

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed by :meth:`EventHandle.cancel`."""


class Engine:
    """Binary-heap discrete-event scheduler.

    Typical use::

        engine = Engine()
        engine.schedule(1.5, my_callback, arg1, arg2)
        engine.run()

    Callbacks receive their scheduled arguments and may schedule further
    events. Time never goes backwards; scheduling an event before
    ``engine.now`` raises :class:`SimulationError`.
    """

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        # Count of live (not cancelled) events in the heap, maintained on
        # push/cancel/pop so `pending_events` is O(1) instead of a scan.
        self._live = 0
        #: Lifetime count of callbacks executed, across all run() calls.
        #: Deterministic for a given simulation, so it doubles as a
        #: cheap progress/throughput metric (events per wall-second).
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued. O(1)."""
        return self._live

    def schedule(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute ``time``.

        Returns a handle that can be cancelled with
        :meth:`EventHandle.cancel`. Events that are never cancelled
        should use :meth:`schedule_fast` instead — it skips the handle
        allocation entirely.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args, engine=self)
        heapq.heappush(self._heap, (time, seq, None, handle))
        self._live += 1
        return handle

    def schedule_after(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, *args)

    def schedule_fast(self, time: float, callback: Callable[..., None],
                      args: tuple = ()) -> None:
        """Schedule a **never-cancelled** event at absolute ``time``.

        The hot-path variant of :meth:`schedule`: the event is a bare
        heap tuple, no :class:`EventHandle` is allocated and *nothing is
        returned* — by construction the caller cannot cancel it. Use
        only for events whose firing is unconditional (arrivals, service
        completions, sampler ticks); anything a policy might want to
        cancel must go through :meth:`schedule`. The PERF001 lint rule
        flags call sites that try to use a return value.

        Ordering is identical to :meth:`schedule`: both draw from the
        same sequence counter, so interleaved fast/cancellable events at
        equal times still fire in schedule order.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, callback, args))
        self._live += 1

    def schedule_after_fast(self, delay: float, callback: Callable[..., None],
                            args: tuple = ()) -> None:
        """Never-cancelled event ``delay`` seconds from now (fast path)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self.schedule_fast(self._now + delay, callback, args)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> int:
        """Process events in time order.

        Args:
            until: stop once the next event would fire after this time
                (the clock advances to ``until`` when the loop drains,
                but not when ``stop`` or ``max_events`` ends it early).
            max_events: safety valve; stop after this many callbacks.
            stop: optional predicate checked after every callback; the
                loop exits as soon as it returns True (used to end a run
                when the workload drains even though periodic timers are
                still queued).

        Returns:
            The number of callbacks executed.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        executed = 0
        # True when the loop ran out of work at or before `until` (queue
        # empty, or the next event lies beyond the horizon). Only then may
        # the clock fast-forward to `until`; an early exit via `stop` or
        # `max_events` must leave the clock at the last executed event, or
        # the energy-accounting window silently stretches.
        drained = True
        # Locals for the hot loop: every iteration would otherwise pay
        # repeated attribute/global lookups for the heap and heappop.
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                entry = heap[0]
                callback = entry[2]
                if callback is None and entry[3].cancelled:
                    heappop(heap)
                    continue
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and executed >= max_events:
                    drained = False
                    break
                heappop(heap)
                self._live -= 1
                self._now = entry[0]
                if callback is None:
                    handle = entry[3]
                    # Mark consumed *before* invoking: a cancel() during
                    # or after the callback must not decrement the live
                    # count a second time, and the handle no longer needs
                    # to pin the engine.
                    handle.fired = True
                    handle._engine = None
                    handle.callback(*handle.args)
                else:
                    callback(*entry[3])
                executed += 1
                if stop is not None and stop():
                    drained = False
                    break
        finally:
            self._running = False
            self.events_executed += executed
        if until is not None and drained and self._now < until:
            self._now = until
        return executed

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] is None and entry[3].cancelled:
                heapq.heappop(heap)
                continue
            return entry[0]
        return None
