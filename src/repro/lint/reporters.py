"""Finding reporters: human-readable text and machine-stable JSON.

The JSON schema is versioned (top-level ``"schema": 1``) and covered by
a snapshot test; changing any key is a breaking change for CI consumers
and must bump the schema number.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.engine import LintResult
from repro.lint.registry import all_rules

#: Bump when the JSON reporter's key layout changes.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, verbose: bool = False) -> str:
    """GCC-style ``path:line:col: SEV RULE message`` lines plus a tally."""
    lines = [
        f"{f.location()}: {f.severity} {f.rule_id} {f.message}"
        for f in result.findings
    ]
    if verbose:
        lines.extend(
            f"{f.location()}: suppressed {f.rule_id} {f.message}"
            for f in result.suppressed
        )
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun} "
        f"({len(result.suppressed)} suppressed) "
        f"in {result.files_checked} files"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document for CI and tooling."""
    doc: dict[str, Any] = {
        "schema": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed_count": len(result.suppressed),
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """One line per registered rule for ``repro lint --list-rules``."""
    rows = []
    for rule_id in sorted(all_rules()):
        rule = all_rules()[rule_id]
        scope = ", ".join(rule.scopes) if rule.scopes else "all modules"
        rows.append(f"{rule_id}  {rule.severity}  {rule.name}\n"
                    f"        {rule.description}\n"
                    f"        scope: {scope}")
    return "\n".join(rows)
