"""CODE_VERSION bump guard (CACHE002).

The result cache folds ``repro.analysis.cache.CODE_VERSION`` into every
content key so that changing simulator *code* invalidates cached
*results*. That only works if humans remember to bump the constant.
This guard makes forgetting loud: it diffs the working tree against a
base git revision and fails when any file under the semantics-bearing
packages (``core``, ``sim``, ``disks``, ``policies``) changed while
``CODE_VERSION`` did not.

Unlike the AST rules this needs git history, so it runs only when the
CLI is given ``--guard-base`` (CI passes the PR base ref). Its findings
carry rule id ``CACHE002`` and flow through the same selection,
suppression and reporting machinery as everything else.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path

from repro.lint.findings import Finding, Severity

#: Packages whose changes demand a CODE_VERSION bump.
_SENSITIVE = re.compile(r"^src/repro/(core|sim|disks|policies)/.*\.py$")

_CACHE_MODULE = "src/repro/analysis/cache.py"

_VERSION_RE = re.compile(r'^CODE_VERSION\s*=\s*["\']([^"\']+)["\']', re.MULTILINE)


def _git(repo: Path, *args: str) -> str | None:
    """Run git in ``repo``; None on any failure (not a repo, bad ref)."""
    try:
        proc = subprocess.run(
            ["git", "-C", str(repo), *args],
            capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def _version_in(text: str) -> str | None:
    match = _VERSION_RE.search(text)
    return match.group(1) if match else None


def resolve_repo_root(start: Path | None = None) -> Path:
    """Toplevel of the git repository containing ``start`` (default cwd).

    Falls back to ``start`` itself outside a work tree, so callers can
    pass the result straight to :func:`check_code_version_bump` — which
    then reports the unreadable cache module instead of passing silently.
    """
    base = start if start is not None else Path.cwd()
    out = _git(base, "rev-parse", "--show-toplevel")
    if out is not None and out.strip():
        return Path(out.strip())
    return base


def check_code_version_bump(repo: Path, base: str) -> list[Finding]:
    """CACHE002 findings for ``repo`` diffed against git ref ``base``.

    Uses the merge-base of ``base`` and HEAD when one exists (so CI can
    pass the target branch directly), falling back to ``base`` itself.
    Unreadable history degrades to a single finding rather than a crash,
    so CI misconfiguration cannot silently disable the guard.
    """
    merge_base = _git(repo, "merge-base", base, "HEAD")
    anchor = merge_base.strip() if merge_base else base

    # Diff the anchor against the *working tree* (not HEAD) so locally
    # uncommitted simulator changes are seen too; in CI the two agree.
    diff = _git(repo, "diff", "--name-only", anchor, "--")
    if diff is None:
        return [Finding(
            path=_CACHE_MODULE, line=1, col=0,
            rule_id="CACHE002", severity=Severity.ERROR,
            message=f"cannot diff against {base!r}; CODE_VERSION guard "
                    "could not run (is the base ref fetched?)",
        )]

    changed = [line for line in diff.splitlines() if _SENSITIVE.match(line)]
    if not changed:
        return []

    base_cache = _git(repo, "show", f"{anchor}:{_CACHE_MODULE}")
    if base_cache is None:
        # The cache module did not exist at base: any version passes.
        return []
    old_version = _version_in(base_cache)

    cache_path = repo / _CACHE_MODULE
    try:
        cache_text = cache_path.read_text(encoding="utf-8")
    except OSError:
        cache_text = None
    new_version = _version_in(cache_text) if cache_text is not None else None

    if new_version is None:
        # An unreadable or versionless cache module must be loud, not a
        # pass: returning [] here would silently disable the guard when
        # the repo path is wrong (e.g. run from a subdirectory).
        return [Finding(
            path=_CACHE_MODULE, line=1, col=0,
            rule_id="CACHE002", severity=Severity.ERROR,
            message=f"cannot read CODE_VERSION from {cache_path}; the "
                    "guard could not verify the bump (is the repo root "
                    "right and the constant still defined?)",
        )]

    if old_version is not None and old_version == new_version:
        sample = ", ".join(changed[:3]) + ("..." if len(changed) > 3 else "")
        match = _VERSION_RE.search(cache_text)
        line = cache_text[:match.start()].count("\n") + 1 if match else 1
        return [Finding(
            path=_CACHE_MODULE, line=line, col=0,
            rule_id="CACHE002", severity=Severity.ERROR,
            message=f"simulator code changed ({sample}) but CODE_VERSION "
                    f"is still {old_version!r}; bump it so cached results "
                    "from the old code cannot be served for the new code",
        )]
    return []
