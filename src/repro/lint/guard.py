"""Git-history guards (CACHE002, PROTO003).

Two constants in this repo promise invalidation when their surroundings
change, and both promises need git history to check:

* ``repro.analysis.cache.CODE_VERSION`` is folded into every result
  cache key so changing simulator *code* invalidates cached *results*
  — **CACHE002** diffs the working tree against a base revision and
  fails when the semantics-bearing packages (``core``, ``sim``,
  ``disks``, ``policies``) changed while ``CODE_VERSION`` did not;
* ``repro.serve.protocol.PROTOCOL_VERSION`` is reported by ``ping`` so
  clients can refuse a daemon they don't speak — **PROTO003** parses
  the base and working-tree ``protocol.py`` and fails when the command
  set (``COMMANDS``) or per-command request fields (``MESSAGE_FIELDS``)
  changed while the version did not.

Unlike the AST rules these need git history, so they run only when the
CLI is given ``--guard-base`` (CI passes the PR base ref). Their
findings carry rule ids ``CACHE002``/``PROTO003`` and flow through the
same selection, suppression and reporting machinery as everything else.
"""

from __future__ import annotations

import ast
import re
import subprocess
from pathlib import Path
from typing import Any

from repro.lint.findings import Finding, Severity

#: Packages whose changes demand a CODE_VERSION bump.
_SENSITIVE = re.compile(r"^src/repro/(core|sim|disks|policies)/.*\.py$")

_CACHE_MODULE = "src/repro/analysis/cache.py"

_VERSION_RE = re.compile(r'^CODE_VERSION\s*=\s*["\']([^"\']+)["\']', re.MULTILINE)


def _git(repo: Path, *args: str) -> str | None:
    """Run git in ``repo``; None on any failure (not a repo, bad ref)."""
    try:
        proc = subprocess.run(
            ["git", "-C", str(repo), *args],
            capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def _version_in(text: str) -> str | None:
    match = _VERSION_RE.search(text)
    return match.group(1) if match else None


def resolve_repo_root(start: Path | None = None) -> Path:
    """Toplevel of the git repository containing ``start`` (default cwd).

    Falls back to ``start`` itself outside a work tree, so callers can
    pass the result straight to :func:`check_code_version_bump` — which
    then reports the unreadable cache module instead of passing silently.
    """
    base = start if start is not None else Path.cwd()
    out = _git(base, "rev-parse", "--show-toplevel")
    if out is not None and out.strip():
        return Path(out.strip())
    return base


def check_code_version_bump(repo: Path, base: str) -> list[Finding]:
    """CACHE002 findings for ``repo`` diffed against git ref ``base``.

    Uses the merge-base of ``base`` and HEAD when one exists (so CI can
    pass the target branch directly), falling back to ``base`` itself.
    Unreadable history degrades to a single finding rather than a crash,
    so CI misconfiguration cannot silently disable the guard.
    """
    merge_base = _git(repo, "merge-base", base, "HEAD")
    anchor = merge_base.strip() if merge_base else base

    # Diff the anchor against the *working tree* (not HEAD) so locally
    # uncommitted simulator changes are seen too; in CI the two agree.
    diff = _git(repo, "diff", "--name-only", anchor, "--")
    if diff is None:
        return [Finding(
            path=_CACHE_MODULE, line=1, col=0,
            rule_id="CACHE002", severity=Severity.ERROR,
            message=f"cannot diff against {base!r}; CODE_VERSION guard "
                    "could not run (is the base ref fetched?)",
        )]

    changed = [line for line in diff.splitlines() if _SENSITIVE.match(line)]
    if not changed:
        return []

    base_cache = _git(repo, "show", f"{anchor}:{_CACHE_MODULE}")
    if base_cache is None:
        # The cache module did not exist at base: any version passes.
        return []
    old_version = _version_in(base_cache)

    cache_path = repo / _CACHE_MODULE
    try:
        cache_text = cache_path.read_text(encoding="utf-8")
    except OSError:
        cache_text = None
    new_version = _version_in(cache_text) if cache_text is not None else None

    if new_version is None:
        # An unreadable or versionless cache module must be loud, not a
        # pass: returning [] here would silently disable the guard when
        # the repo path is wrong (e.g. run from a subdirectory).
        return [Finding(
            path=_CACHE_MODULE, line=1, col=0,
            rule_id="CACHE002", severity=Severity.ERROR,
            message=f"cannot read CODE_VERSION from {cache_path}; the "
                    "guard could not verify the bump (is the repo root "
                    "right and the constant still defined?)",
        )]

    if old_version is not None and old_version == new_version:
        sample = ", ".join(changed[:3]) + ("..." if len(changed) > 3 else "")
        match = _VERSION_RE.search(cache_text)
        line = cache_text[:match.start()].count("\n") + 1 if match else 1
        return [Finding(
            path=_CACHE_MODULE, line=line, col=0,
            rule_id="CACHE002", severity=Severity.ERROR,
            message=f"simulator code changed ({sample}) but CODE_VERSION "
                    f"is still {old_version!r}; bump it so cached results "
                    "from the old code cannot be served for the new code",
        )]
    return []


# -- PROTO003: PROTOCOL_VERSION bump guard -----------------------------------

_PROTOCOL_MODULE = "src/repro/serve/protocol.py"


def _protocol_surface(text: str) -> dict[str, Any] | None:
    """The wire-contract constants of a ``protocol.py`` source text.

    Returns ``{"version": ..., "commands": ..., "fields": ...}`` with
    literal values evaluated, or None when the text does not parse.
    Constants the module does not define come back as None — a missing
    registry is treated as "unknown", never as "unchanged".
    """
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return None
    surface: dict[str, Any] = {"version": None, "commands": None, "fields": None}
    keys = {"PROTOCOL_VERSION": "version", "COMMANDS": "commands",
            "MESSAGE_FIELDS": "fields"}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id in keys and value is not None:
                try:
                    surface[keys[target.id]] = ast.literal_eval(value)
                except ValueError:
                    pass
    return surface


def _normalized_fields(fields: Any) -> Any:
    """Field registry with order-insensitive values for comparison."""
    if not isinstance(fields, dict):
        return fields
    return {cmd: sorted(value) if isinstance(value, (list, tuple)) else value
            for cmd, value in fields.items()}


def check_protocol_version_bump(repo: Path, base: str) -> list[Finding]:
    """PROTO003 findings for ``repo`` diffed against git ref ``base``.

    Same anchoring as :func:`check_code_version_bump`: merge-base of
    ``base`` and HEAD when one exists, the working tree on the new side,
    loud single-finding degradation when history is unreadable.
    """
    merge_base = _git(repo, "merge-base", base, "HEAD")
    anchor = merge_base.strip() if merge_base else base

    old_text = _git(repo, "show", f"{anchor}:{_PROTOCOL_MODULE}")
    if old_text is None:
        # No protocol module at base (or unreadable ref): a brand-new
        # protocol needs no bump; a bad ref already fails CACHE002 loudly.
        return []
    old = _protocol_surface(old_text)
    if old is None:
        return []

    proto_path = repo / _PROTOCOL_MODULE
    try:
        new_text = proto_path.read_text(encoding="utf-8")
    except OSError:
        new_text = None
    new = _protocol_surface(new_text) if new_text is not None else None
    if new is None:
        return [Finding(
            path=_PROTOCOL_MODULE, line=1, col=0,
            rule_id="PROTO003", severity=Severity.ERROR,
            message=f"cannot read the protocol surface from {proto_path}; "
                    "the PROTOCOL_VERSION guard could not run (is the repo "
                    "root right and the module still parseable?)",
        )]

    def _drifted(old_value: Any, new_value: Any) -> bool:
        # A registry the base did not define yet cannot have drifted
        # (introducing COMMANDS/MESSAGE_FIELDS is not a wire change);
        # deleting one the base had is always drift.
        if old_value is None:
            return False
        if new_value is None:
            return True
        return old_value != new_value

    changed: list[str] = []
    old_cmds = set(old["commands"]) if old["commands"] is not None else None
    new_cmds = set(new["commands"]) if new["commands"] is not None else None
    if _drifted(old_cmds, new_cmds):
        changed.append("command set (COMMANDS)")
    if _drifted(_normalized_fields(old["fields"]), _normalized_fields(new["fields"])):
        changed.append("message fields (MESSAGE_FIELDS)")
    if not changed:
        return []
    if old["version"] != new["version"]:
        return []
    return [Finding(
        path=_PROTOCOL_MODULE, line=1, col=0,
        rule_id="PROTO003", severity=Severity.ERROR,
        message=f"the wire contract changed ({' and '.join(changed)}) but "
                f"PROTOCOL_VERSION is still {new['version']!r}; bump it so "
                "clients can refuse a daemon they no longer speak",
    )]
