"""Serve-protocol consistency rules (PROTO001-PROTO003).

The control protocol has four places a command must exist at once: the
daemon's dispatch table, the ``COMMANDS`` registry in
:mod:`repro.serve.protocol`, a :class:`ServeClient` method, and the
command table in ``docs/serve.md``. History says these drift: a command
added to the dispatch dict works in ad-hoc testing but is unreachable
from ``repro ctl`` and invisible in the docs. These rules walk the
project for command-dispatch dict literals (string keys mapped to
``_cmd_*`` handlers) and hold every dispatched command to the contract:

* **PROTO001** — the command is declared in a ``COMMANDS`` registry and
  has a client method (``set-goal`` ↔ ``ServeClient.set_goal``);
* **PROTO002** — the command is documented in ``docs/serve.md``;
* **PROTO003** — changing the command set or the per-command
  ``MESSAGE_FIELDS`` without bumping ``PROTOCOL_VERSION`` is caught by
  the git guard (:func:`repro.lint.guard.check_protocol_version_bump`),
  which runs under ``--guard-base`` exactly like CACHE002.

Like every cross-file rule, PROTO001 resolves definitions through the
project symbol table, so the registry and client may live in any loaded
module (the real tree) or the linted file itself (fixtures).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

_COMMANDS_CACHE_KEY = "protocol.declared_commands"
_CLIENT_CACHE_KEY = "protocol.client_methods"

#: Class name the client-side protocol implementation lives on.
_CLIENT_CLASS = "ServeClient"

#: Attribute/function name prefix marking a dispatch-table handler.
_HANDLER_PREFIX = "_cmd"


def _handler_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dispatched_commands(ctx: FileContext) -> Iterator[tuple[str, ast.expr]]:
    """Command strings this file dispatches, with their key nodes.

    A dispatch table is a dict literal whose string keys map to
    ``_cmd_*`` handlers (``{"ping": self._cmd_ping, ...}``). Requiring
    at least two such entries keeps one-off dicts out.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Dict):
            continue
        entries: list[tuple[str, ast.expr]] = []
        for key, value in zip(node.keys, node.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            handler = _handler_name(value)
            if handler is not None and handler.startswith(_HANDLER_PREFIX):
                entries.append((key.value, key))
        if len(entries) >= 2:
            yield from entries


def _declared_commands(project: ProjectContext) -> frozenset[str]:
    """Every command declared in a module-level ``COMMANDS`` registry."""
    cached = project.cache.get(_COMMANDS_CACHE_KEY)
    if cached is not None:
        return cached
    declared: set[str] = set()
    for ctx in project.all_files():
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not any(isinstance(t, ast.Name) and t.id == "COMMANDS" for t in targets):
                continue
            if isinstance(value, (ast.Tuple, ast.List)):
                declared.update(
                    el.value for el in value.elts
                    if isinstance(el, ast.Constant) and isinstance(el.value, str)
                )
    result = frozenset(declared)
    project.cache[_COMMANDS_CACHE_KEY] = result
    return result


def _client_methods(project: ProjectContext) -> frozenset[str]:
    """Method names on every loaded ``ServeClient`` class."""
    cached = project.cache.get(_CLIENT_CACHE_KEY)
    if cached is not None:
        return cached
    methods: set[str] = set()
    for info in project.symbols().classes_named(_CLIENT_CLASS):
        methods.update(info.methods)
    result = frozenset(methods)
    project.cache[_CLIENT_CACHE_KEY] = result
    return result


def check_command_registered(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """PROTO001: dispatched commands need a registry entry + client method."""
    declared = None
    methods = None
    for cmd, key in dispatched_commands(ctx):
        if declared is None:
            declared = _declared_commands(project)
            methods = _client_methods(project)
        assert methods is not None
        if cmd not in declared:
            yield (key.lineno, key.col_offset,
                   f"command {cmd!r} is dispatched but not declared in a "
                   "COMMANDS registry; add it to protocol.COMMANDS (and "
                   "MESSAGE_FIELDS) so clients can validate requests")
        if cmd.replace("-", "_") not in methods:
            yield (key.lineno, key.col_offset,
                   f"command {cmd!r} has no {_CLIENT_CLASS}."
                   f"{cmd.replace('-', '_')}() method; every daemon command "
                   "must be drivable from the one client implementation")


def _serve_doc_for(path: Path) -> Path | None:
    """Nearest ``docs/serve.md`` above ``path``, if any."""
    for parent in path.resolve().parents:
        candidate = parent / "docs" / "serve.md"
        if candidate.is_file():
            return candidate
    return None


def check_command_documented(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """PROTO002: every dispatched command has a ``docs/serve.md`` entry."""
    doc_text: str | None = None
    for cmd, key in dispatched_commands(ctx):
        if doc_text is None:
            doc = _serve_doc_for(ctx.path)
            if doc is None:
                yield (key.lineno, key.col_offset,
                       "no docs/serve.md found above this file; the protocol "
                       "doc-sync check could not run")
                return
            doc_text = doc.read_text(encoding="utf-8")
        if f"`{cmd}`" not in doc_text:
            yield (key.lineno, key.col_offset,
                   f"command {cmd!r} is dispatched but undocumented; add a "
                   "row for it to the command table in docs/serve.md")


def _no_findings(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    return iter(())


register(Rule(
    rule_id="PROTO001",
    name="undispatched-or-clientless-command",
    description="every dispatched serve command needs a COMMANDS entry and a ServeClient method",
    severity=Severity.ERROR,
    scopes=(),
    check=check_command_registered,
))

register(Rule(
    rule_id="PROTO002",
    name="undocumented-command",
    description="every dispatched serve command needs a docs/serve.md entry",
    severity=Severity.ERROR,
    scopes=(),
    check=check_command_documented,
))

#: PROTO003 is registered here for selection/suppression/reporting; its
#: findings come from repro.lint.guard (git history), not file ASTs.
register(Rule(
    rule_id="PROTO003",
    name="protocol-version-guard",
    description="PROTOCOL_VERSION must be bumped when the command set or message fields change",
    severity=Severity.ERROR,
    scopes=(),
    check=_no_findings,
))
