"""Resource-lifecycle rules (RES001-RES002).

The serve daemon made the simulator long-running: sockets, trace
writers and result files now outlive the function that created them,
and the failure modes are the quiet kind — a leaked client socket per
reconnect, a torn result JSON after a mid-write SIGTERM that a later
reader mistakes for data. Scope is the long-running and result-bearing
packages (``repro.serve``, ``repro.fleet``, ``repro.analysis``,
``repro.perf``).

* **RES001** — every acquired resource (``open(...)``,
  ``socket.socket(...)``, ``JsonlWriter(...)``) must have a visible
  release path: a ``with`` block, a ``.close()`` reachable in a
  ``finally``, storage on ``self`` with a class-level ``.close()``, or
  an ownership transfer (the function returns the handle).
* **RES002** — write-mode ``open()`` calls must use the atomic
  tempfile + :func:`os.replace` idiom — in practice,
  :func:`repro.analysis.atomicio.atomic_write`; a bare
  ``open(path, "w")`` is accepted only when the enclosing function
  itself performs the ``os.replace``/``os.rename``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

_RES_SCOPES = (
    "repro.serve",
    "repro.fleet",
    "repro.analysis",
    "repro.perf",
)

def _is_acquire(ctx: FileContext, node: ast.Call) -> str | None:
    """The resource kind a call acquires, or None."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in ("open", "JsonlWriter"):
        return func.id
    dotted = ctx.qualified_call_name(func)
    if dotted == "socket.socket":
        return "socket.socket"
    if dotted is not None and dotted.endswith(".JsonlWriter"):
        return "JsonlWriter"
    return None


def _assign_target(ctx: FileContext, node: ast.Call) -> ast.expr | None:
    """The Name/Attribute the call's value is bound to, walking through
    value-preserving wrappers (ternaries like ``X(...) if p else None``)."""
    child: ast.AST = node
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.IfExp) and child is not ancestor.test:
            child = ancestor
            continue
        if isinstance(ancestor, ast.Assign) and len(ancestor.targets) == 1:
            return ancestor.targets[0]
        if isinstance(ancestor, ast.AnnAssign):
            return ancestor.target
        return None
    return None


def _closes_name(body: ast.AST, name: str) -> bool:
    """Whether ``body`` contains ``<name>.close()`` (or shutdown)."""
    for node in ast.walk(body):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("close", "shutdown")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
    return False


def _closed_in_finally(func: ast.AST, name: str) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                if _closes_name(stmt, name):
                    return True
    return False


def _entered_or_returned(func: ast.AST, name: str) -> bool:
    """The local is used as a with-item or handed to the caller."""
    for node in ast.walk(func):
        if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
                if isinstance(expr, ast.Call) and any(
                    isinstance(arg, ast.Name) and arg.id == name for arg in expr.args
                ):
                    return True
        elif isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            if node.value.id == name:
                return True
    return False


def _attr_closed_in_class(ctx: FileContext, node: ast.Call, attr: str) -> bool:
    """Whether the enclosing class has ``self.<attr>.close()`` anywhere."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            for sub in ast.walk(ancestor):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("close", "shutdown")
                    and isinstance(sub.func.value, ast.Attribute)
                    and sub.func.value.attr == attr
                ):
                    return True
            return False
    return False


def check_resource_released(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """RES001: acquired resources need a with/finally/ownership release."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _is_acquire(ctx, node)
        if kind is None:
            continue
        parent = ctx.parents().get(node)
        if isinstance(parent, ast.withitem):
            continue
        if isinstance(parent, ast.Return):
            continue  # ownership transferred to the caller
        target = _assign_target(ctx, node)
        if isinstance(target, ast.Name):
            func = ctx.enclosing_function(node)
            holder: ast.AST = func if func is not None else ctx.tree
            if (
                _closed_in_finally(holder, target.id)
                or _entered_or_returned(holder, target.id)
            ):
                continue
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if _attr_closed_in_class(ctx, node, target.attr):
                continue
        yield (node.lineno, node.col_offset,
               f"{kind}(...) acquired with no visible release; use a 'with' "
               "block, close it in a 'finally', or store it where a close() "
               "path provably reaches it")


_WRITE_MODES = ("w", "x")


def _open_write_mode(node: ast.Call) -> bool:
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return False
    return any(ch in mode.value for ch in _WRITE_MODES)


def _replaces_in(func: ast.AST, ctx: FileContext) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            dotted = ctx.qualified_call_name(node.func)
            if dotted in ("os.replace", "os.rename"):
                return True
    return False


def check_atomic_replace(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """RES002: write-mode opens must go through the atomic-replace idiom."""
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
            and _open_write_mode(node)
        ):
            continue
        func = ctx.enclosing_function(node)
        holder: ast.AST = func if func is not None else ctx.tree
        if _replaces_in(holder, ctx):
            continue
        yield (node.lineno, node.col_offset,
               "write-mode open() without the atomic tempfile+os.replace "
               "idiom; use repro.analysis.atomicio.atomic_write so readers "
               "never see a torn file")


register(Rule(
    rule_id="RES001",
    name="unreleased-resource",
    description="sockets/handles/JsonlWriters must be released via with, finally, or an owning close()",
    severity=Severity.ERROR,
    scopes=_RES_SCOPES,
    check=check_resource_released,
))

register(Rule(
    rule_id="RES002",
    name="non-atomic-result-write",
    description="result/cache/trace writes must use the atomic tempfile+os.replace idiom",
    severity=Severity.ERROR,
    scopes=_RES_SCOPES,
    check=check_atomic_replace,
))
