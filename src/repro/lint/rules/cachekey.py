"""Cache-key completeness rule (CACHE001).

The result cache keys runs by content hash: every spec dataclass either
exposes an explicit ``cache_key()`` or is canonicalized field-by-field
by ``repro.analysis.cache._canonical``. The failure mode this rule
guards against is the *explicit* path drifting: someone adds a field to
``TraceSpec``/``PolicySpec`` that changes behaviour, forgets to thread
it through ``cache_key()``, and the cache silently aliases two different
runs onto one key — returning stale results that look perfectly valid.

CACHE001 therefore requires that every non-ClassVar field of a dataclass
that defines ``cache_key`` is *referenced* somewhere inside that method
(as ``self.<field>``, a bare name, or a string key) — or inside a helper
method of the same class that ``cache_key`` (transitively) calls, which
the project call graph resolves (:mod:`repro.lint.callgraph`), so
factoring key construction into ``self._key_parts()`` helpers does not
force suppressions. Fields that are deliberately excluded must be
suppressed inline with a reason, which turns an invisible omission into
a reviewed decision.

The companion CODE_VERSION guard (CACHE002) lives in
:mod:`repro.lint.guard` because it needs git history, not an AST.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

_DATACLASS_NAMES = {"dataclass", "dataclasses.dataclass"}


def _is_dataclass(ctx: FileContext, node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = ctx.qualified_call_name(target)
        if name in _DATACLASS_NAMES:
            return True
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    node = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    if isinstance(node, ast.Name):
        return node.id == "ClassVar"
    if isinstance(node, ast.Attribute):
        return node.attr == "ClassVar"
    return False


def _field_defs(node: ast.ClassDef) -> Iterator[tuple[str, ast.AnnAssign]]:
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not _is_classvar(stmt.annotation):
                yield stmt.target.id, stmt


def _referenced_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Identifiers a ``cache_key`` body can reach a field through:
    ``self.x`` attributes, bare names, and string constants (dict keys
    like ``{"trace": ...}`` count as referencing ``trace``)."""
    names: set[str] = set()
    for sub in ast.walk(func):
        if isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            names.add(sub.value)
    return names


def _reachable_key_names(
    ctx: FileContext,
    project: ProjectContext,
    node: ast.ClassDef,
    cache_key: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names ``cache_key`` can reach, closed over same-class helpers.

    The call graph resolves ``self._key_parts()``-style helper calls to
    their method definitions; every helper's referenced names count as
    reachable from ``cache_key`` itself, transitively.
    """
    reachable = _referenced_names(cache_key)
    owner = project.symbols().class_def(f"{ctx.module}.{node.name}")
    if owner is None:
        return reachable
    graph = project.call_graph()
    start = f"{owner.qualname}.{cache_key.name}"
    for qualname in graph.reachable_from([start]):
        info = graph.symbols.functions.get(qualname)
        if info is not None and f"{info.module}.{info.class_name}" == owner.qualname:
            reachable |= _referenced_names(info.node)
    return reachable


def check_cache_key_completeness(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """CACHE001: every field of a cache_key-bearing dataclass reaches it."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass(ctx, node):
            continue
        cache_key = next(
            (stmt for stmt in node.body
             if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
             and stmt.name == "cache_key"),
            None,
        )
        if cache_key is None:
            continue
        reachable = _reachable_key_names(ctx, project, node, cache_key)
        for field_name, stmt in _field_defs(node):
            if field_name not in reachable:
                yield (stmt.lineno, stmt.col_offset,
                       f"field '{field_name}' of {node.name} never reaches "
                       "cache_key(); include it or suppress with a reason — "
                       "omitted fields alias distinct runs onto one cache key")


register(Rule(
    rule_id="CACHE001",
    name="cache-key-completeness",
    description="every field of a dataclass with cache_key() must be referenced in it",
    severity=Severity.ERROR,
    scopes=(),
    check=check_cache_key_completeness,
))

#: CACHE002 (CODE_VERSION guard) is registered here so selection and
#: suppression treat it like any rule, but its findings are produced by
#: repro.lint.guard from git history rather than from file ASTs.


def _no_findings(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    return iter(())


register(Rule(
    rule_id="CACHE002",
    name="code-version-guard",
    description="CODE_VERSION must be bumped when simulator semantics change",
    severity=Severity.ERROR,
    scopes=(),
    check=_no_findings,
))
