"""Performance fast-path rules (PERF00x).

The engine's tuple fast path (:meth:`Engine.schedule_fast` /
:meth:`Engine.schedule_after_fast`) exists to skip the
:class:`EventHandle` allocation for events that are never cancelled — so
by construction it returns ``None``. A call site that *uses* the return
value (assigns it, passes it on, compares it) almost certainly wanted
the cancellable :meth:`Engine.schedule` variant and would store ``None``
where it expects a handle, turning a later ``handle.cancel()`` into an
``AttributeError`` — or worse, a silent no-op cancel guard.

PERF001 flags every use of a ``schedule_fast``/``schedule_after_fast``
call in value position. The rule matches on method name rather than
receiver type (static analysis cannot resolve the receiver), which is
exactly the strictness we want: any API named like the fast path should
honour its returns-nothing contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import bare_call_name
from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

_FAST_SCHEDULE_NAMES = ("schedule_fast", "schedule_after_fast")


def check_fast_schedule_return(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """PERF001: using the (always-``None``) result of a fast schedule."""
    statement_calls = {
        id(node.value)
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
    }
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = bare_call_name(node)
        if name not in _FAST_SCHEDULE_NAMES:
            continue
        if id(node) in statement_calls:
            continue
        yield (node.lineno, node.col_offset,
               f"{name}() always returns None (the event cannot be "
               "cancelled); use schedule()/schedule_after() when the "
               "caller needs an EventHandle")


register(Rule(
    rule_id="PERF001",
    name="fast-schedule-return-used",
    description="schedule_fast/schedule_after_fast return None; call sites must not use the value",
    severity=Severity.ERROR,
    scopes=(),  # the contract holds everywhere, CLI and tests included
    check=check_fast_schedule_return,
))
