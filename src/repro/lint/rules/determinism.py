"""Determinism rules (DET001-DET004).

The repo's load-bearing guarantee is that a simulation result is a pure
function of its spec: ``jobs=2`` must be byte-identical to ``jobs=1``
and the content-hash cache must never alias two behaviours onto one key.
These rules keep the two classic leaks out of result-producing code:

* **hidden entropy** — an unseeded RNG, the stdlib global RNG, or the
  wall clock feeding a result;
* **hash-order iteration** — iterating a ``set`` in result-producing
  code, where Python's iteration order is an implementation detail.

Scope: the result-producing packages ``repro.core``, ``repro.sim``,
``repro.disks``, ``repro.policies``, ``repro.traces`` and
``repro.faults``. The analysis
and CLI layers may read the clock (progress reporting); the simulator
may not, except through an explicit suppression that documents why
(see ``runtime_*`` wall-clock instrumentation in the runner).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

_RESULT_SCOPES = (
    "repro.core",
    "repro.sim",
    "repro.disks",
    "repro.policies",
    "repro.traces",
    "repro.faults",
    "repro.fleet",
)

#: Stdlib ``random`` module-level functions draw from one hidden global
#: generator; any use in result code is nondeterministic across runs
#: unless globally seeded (which parallel workers would still share
#: incorrectly). ``random.Random(seed)`` instances are fine.
_STDLIB_RANDOM_OK = {"random.Random", "random.SystemRandom"}

#: Wall-clock sources; none may influence a simulation result.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Builtins whose consumption of an iterable is order-insensitive (or
#: order-restoring), so feeding them a set is deterministic.
_ORDER_SAFE_CALLS = {"sorted", "len", "min", "max", "any", "all", "frozenset", "set"}

#: RNG constructors that are deterministic when handed an explicit seed
#: (and hidden entropy when not): ``default_rng`` plus the BitGenerator
#: classes, mirroring the ``random.Random(seed)`` carve-out in DET002.
_NUMPY_SEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}


def _calls(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[ast.Call, str]]:
    """Every call in the file with its canonical dotted name.

    Resolution goes through :meth:`ProjectContext.resolve_call` so names
    imported via package ``__init__`` re-exports are judged by the module
    that actually defines them, not the alias they were imported under.
    """
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = project.resolve_call(ctx, node.func)
            if name is not None:
                yield node, name


def check_unseeded_rng(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """DET001: numpy RNG construction/use without an explicit seed."""
    for call, name in _calls(ctx, project):
        if name in _NUMPY_SEEDED_CONSTRUCTORS:
            if not call.args and not call.keywords:
                yield (call.lineno, call.col_offset,
                       f"{name}() without a seed; pass a seed or "
                       "SeedSequence derived from the spec")
        elif name.startswith("numpy.random.") and name not in (
            "numpy.random.SeedSequence",
            "numpy.random.Generator",
        ):
            yield (call.lineno, call.col_offset,
                   f"{name}() uses numpy's hidden global RNG; construct a "
                   "seeded Generator (np.random.default_rng(seed)) instead")


def check_stdlib_random(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """DET002: stdlib ``random`` global-state RNG in result code."""
    for call, name in _calls(ctx, project):
        if not (name == "random" or name.startswith("random.")):
            continue
        if name in _STDLIB_RANDOM_OK and (call.args or call.keywords):
            continue
        yield (call.lineno, call.col_offset,
               f"{name}() draws from the stdlib global RNG; use a seeded "
               "np.random.default_rng(seed) (or random.Random(seed)) instead")


def check_wall_clock(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """DET003: wall-clock reads in result-producing code."""
    for call, name in _calls(ctx, project):
        if name in _WALL_CLOCK or name.endswith((".datetime.now", ".datetime.utcnow")):
            yield (call.lineno, call.col_offset,
                   f"{name}() reads the wall clock; simulated time lives on "
                   "engine.now — results must not depend on real time")


class _SetTracker(ast.NodeVisitor):
    """Collects identifiers (bare or attribute names) annotated or
    assigned as sets anywhere in the file."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    @staticmethod
    def _target_name(node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @staticmethod
    def _is_set_annotation(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
        if isinstance(node, ast.Subscript):
            return _SetTracker._is_set_annotation(node.value)
        if isinstance(node, ast.Attribute):
            return node.attr in ("Set", "FrozenSet", "AbstractSet")
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value.lstrip()
            return text.startswith(("set[", "set(", "frozenset[", "Set[", "FrozenSet["))
        return False

    @staticmethod
    def _is_set_value(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = self._target_name(node.target)
        if name is not None and self._is_set_annotation(node.annotation):
            self.set_names.add(name)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_value(node.value):
            for target in node.targets:
                name = self._target_name(target)
                if name is not None:
                    self.set_names.add(name)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.annotation is not None and self._is_set_annotation(node.annotation):
            self.set_names.add(node.arg)
        self.generic_visit(node)


def check_set_iteration(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """DET004: iteration over a bare set in result-producing code."""
    tracker = _SetTracker()
    tracker.visit(ctx.tree)

    def is_bare_set(node: ast.expr) -> bool:
        if _SetTracker._is_set_value(node):
            return True
        name = _SetTracker._target_name(node)
        return name is not None and name in tracker.set_names

    def flag(node: ast.expr) -> Iterator[tuple[int, int, str]]:
        if is_bare_set(node):
            yield (node.lineno, node.col_offset,
                   "iterating a set: Python set order is an implementation "
                   "detail; iterate sorted(...) for a deterministic order")

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from flag(node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            for gen in node.generators:
                # A set comprehension *over* a set produces another
                # unordered set; the order leak happens when the set is
                # consumed, which the other branches catch.
                if not isinstance(node, ast.SetComp):
                    yield from flag(gen.iter)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple", "enumerate") and node.args:
                yield from flag(node.args[0])


register(Rule(
    rule_id="DET001",
    name="unseeded-numpy-rng",
    description="numpy RNGs in result-producing code must be explicitly seeded",
    severity=Severity.ERROR,
    scopes=_RESULT_SCOPES,
    check=check_unseeded_rng,
))

register(Rule(
    rule_id="DET002",
    name="stdlib-global-rng",
    description="stdlib random (global-state RNG) is banned in result-producing code",
    severity=Severity.ERROR,
    scopes=_RESULT_SCOPES,
    check=check_stdlib_random,
))

register(Rule(
    rule_id="DET003",
    name="wall-clock-read",
    description="wall-clock reads must not influence simulation results",
    severity=Severity.ERROR,
    scopes=_RESULT_SCOPES,
    check=check_wall_clock,
))

register(Rule(
    rule_id="DET004",
    name="set-iteration-order",
    description="no iteration over bare sets in result-producing modules",
    severity=Severity.ERROR,
    scopes=_RESULT_SCOPES,
    check=check_set_iteration,
))
