"""Built-in rule modules; importing this package registers every rule.

Rule id namespaces:

* ``DET00x`` — determinism (:mod:`repro.lint.rules.determinism`)
* ``UNIT00x`` — unit consistency (:mod:`repro.lint.rules.units`)
* ``CACHE00x`` — cache-key completeness (:mod:`repro.lint.rules.cachekey`)
* ``OBS00x`` — observability pairing (:mod:`repro.lint.rules.obspairing`)
* ``PERF00x`` — engine fast-path contracts (:mod:`repro.lint.rules.perf`)
* ``PROTO00x`` — serve-protocol consistency (:mod:`repro.lint.rules.protocol`)
* ``RES00x`` — resource lifecycle (:mod:`repro.lint.rules.resources`)
* ``CONC00x`` — concurrency safety (:mod:`repro.lint.rules.concurrency`)
* ``LINT00x/9xx`` — engine pseudo-rules (:mod:`repro.lint.engine`)
"""

from repro.lint.rules import (
    cachekey,
    concurrency,
    determinism,
    obspairing,
    perf,
    protocol,
    resources,
    units,
)

__all__ = [
    "cachekey",
    "concurrency",
    "determinism",
    "obspairing",
    "perf",
    "protocol",
    "resources",
    "units",
]
