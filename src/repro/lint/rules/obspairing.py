"""Observability-pairing rules (OBS001-OBS002).

The observability layer's contract (DESIGN.md) is two-sided:

* a *disabled* run pays nothing and stays byte-identical — hence every
  ``emit(...)`` call site must be dominated by an ``is not None`` guard
  on the hook (**OBS002**);
* an *enabled* run tells a complete story — a metrics counter that
  increments with no corresponding trace event produces aggregate
  numbers nobody can drill into, so every counter-increment site must
  sit in a function that emits (or calls into a function that emits) a
  trace event for the same program point (**OBS001**).

OBS001 is a cross-file analysis: ``PDCPolicy._period_boundary`` bumps
``pdc_periods`` and emits nothing directly, but it calls
``MigrationExecutor.start``/``cancel`` which carry the guarded emits.
The rule asks the project call graph (:mod:`repro.lint.callgraph`) for
the fixpoint of *emitting functions* — a function is emitting if its
body contains an ``.emit(...)`` call, or it calls (resolved edge or
shared bare name) a function already in the set — and accepts an
increment site whose enclosing function is emitting. Membership is
tested by bare name, which is deliberately permissive: the rule's job
is to catch counters with *no plausible* paired event, not to prove the
pairing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import FunctionInfo
from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

_OBS_SCOPES = (
    "repro.core",
    "repro.sim",
    "repro.disks",
    "repro.policies",
    "repro.faults",
    "repro.fleet",
    "repro.serve",
)

_EMITTING_CACHE_KEY = "obspairing.emitting_functions"


def _is_emit_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "emit"
    )


def _called_names(func: ast.AST) -> set[str]:
    """Bare names of everything a function body calls."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                names.add(node.func.attr)
            elif isinstance(node.func, ast.Name):
                names.add(node.func.id)
    return names


def _emits_directly(info: FunctionInfo) -> bool:
    return any(_is_emit_call(sub) for sub in ast.walk(info.node))


def _emitting_functions(project: ProjectContext) -> frozenset[str]:
    """Fixpoint of function names that (transitively) emit trace events."""
    cached = project.cache.get(_EMITTING_CACHE_KEY)
    if cached is not None:
        return cached

    emitting = project.call_graph().fixpoint(_emits_directly).names
    project.cache[_EMITTING_CACHE_KEY] = emitting
    return emitting


def check_counter_pairing(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """OBS001: counter increments must pair with a trace emit."""
    emitting = _emitting_functions(project)
    for node in ast.walk(ctx.tree):
        # Matches ``<metrics>.counter("name").inc(...)``.
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "inc"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Attribute)
            and node.func.value.func.attr == "counter"
        ):
            continue
        func = ctx.enclosing_function(node)
        if func is not None and (
            func.name in emitting
            or any(_is_emit_call(sub) for sub in ast.walk(func))
            or _called_names(func) & emitting
        ):
            continue
        yield (node.lineno, node.col_offset,
               "counter increment with no paired trace emit on this code "
               "path; emit a trace event here (or from a callee) so enabled "
               "runs can attribute the count")


def _guard_covers(test: ast.expr, targets: tuple[str, ...]) -> bool:
    """Whether an If test contains ``<target> is not None`` for one of
    the dumped target expressions (BoolOp conjunctions are walked)."""
    if isinstance(test, ast.BoolOp):
        return any(_guard_covers(value, targets) for value in test.values)
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return ast.dump(test.left) in targets
    return False


def check_guarded_emit(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """OBS002: every emit call dominated by an ``is not None`` guard."""
    for node in ast.walk(ctx.tree):
        if not _is_emit_call(node):
            continue
        assert isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
        # The guard may test the hook itself (``self.emit is not None``)
        # or the object holding it (``sim is not None``).
        targets = (ast.dump(node.func), ast.dump(node.func.value))
        guarded = any(
            isinstance(ancestor, ast.If) and _guard_covers(ancestor.test, targets)
            for ancestor in ctx.ancestors(node)
        )
        if not guarded:
            yield (node.lineno, node.col_offset,
                   "emit call without an 'is not None' guard on the hook; "
                   "disabled runs must skip event construction entirely")


register(Rule(
    rule_id="OBS001",
    name="counter-without-trace",
    description="counter increments must pair with a trace emit on the same path",
    severity=Severity.ERROR,
    scopes=_OBS_SCOPES,
    check=check_counter_pairing,
))

register(Rule(
    rule_id="OBS002",
    name="unguarded-emit",
    description="every emit call must be guarded by 'hook is not None'",
    severity=Severity.ERROR,
    scopes=_OBS_SCOPES,
    check=check_guarded_emit,
))
