"""Concurrency-safety rules (CONC001-CONC003).

The determinism guarantee survives parallelism only because three
boundaries hold, and each has a way of eroding silently:

* **CONC001** — the online mutators (``set_goal``, ``inject_request``,
  ``force_boost``, ``inject_faults``) change simulation state between
  engine steps. Called from inside the step loop — an engine callback,
  a policy hook — they would make results depend on event interleaving.
  The only legitimate callers are the daemon's command dispatch
  (``_cmd_*`` handlers, the ``_ingest*`` path) and other mutators
  (delegation); anything else needs an explicit, reasoned suppression.
* **CONC002** — arguments reaching a process fan-out
  (``analysis/parallel.execute``/``map_parallel``) or stored on a
  ``FleetSpec`` cross a pickle boundary. Lambdas and function-local
  ``def``s are unpicklable, and the error surfaces only at fan-out
  time on a worker; this rule catches them at the call/construction
  site statically.
* **CONC003** — module-level mutable state (dicts/lists/sets) in
  result-producing packages is shared by every run in the process and
  invisible to the cache key. Registries are fine when named as
  constants (UPPER_CASE, populated at import and never mutated);
  lowercase module globals are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import bare_call_name
from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

#: Online mutators: state changes that must enter between engine steps.
_MUTATORS = ("set_goal", "inject_request", "force_boost", "inject_faults")

#: Enclosing-function name prefixes allowed to invoke a mutator: the
#: daemon's command dispatch and socket-ingest paths.
_DISPATCH_PREFIXES = ("_cmd", "_ingest")

_CONC001_SCOPES = (
    "repro.core",
    "repro.sim",
    "repro.disks",
    "repro.policies",
    "repro.faults",
    "repro.fleet",
    "repro.serve",
)

_MUTABLE_STATE_SCOPES = (
    "repro.core",
    "repro.sim",
    "repro.disks",
    "repro.policies",
    "repro.traces",
    "repro.faults",
    "repro.fleet",
)


def check_mutator_call_site(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """CONC001: online mutators only from command dispatch (or peers)."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = bare_call_name(node)
        if name not in _MUTATORS:
            continue
        func = ctx.enclosing_function(node)
        if func is not None and (
            func.name.startswith(_DISPATCH_PREFIXES) or func.name in _MUTATORS
        ):
            continue
        yield (node.lineno, node.col_offset,
               f"online mutator {name}() called outside the daemon command "
               "dispatch; mid-step mutation makes results depend on event "
               "interleaving — route it through a _cmd_* handler")


def _local_defs(func: ast.AST) -> set[str]:
    """Names of functions defined *inside* ``func`` (unpicklable)."""
    names: set[str] = set()
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


def _unpicklable_exprs(
    value: ast.expr, local_defs: set[str]
) -> Iterator[tuple[ast.expr, str]]:
    """Sub-expressions of ``value`` no pickle can serialize."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Lambda):
            yield sub, "a lambda"
        elif isinstance(sub, ast.Name) and sub.id in local_defs:
            yield sub, f"function-local def {sub.id!r}"


def check_picklable_fanout(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """CONC002: no lambdas/local defs into process fan-outs or FleetSpec."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = bare_call_name(node)
        if name in ("execute", "map_parallel"):
            boundary = f"{name}() fans out to worker processes"
        elif name is not None and (name == "FleetSpec" or name.endswith("FleetSpec")):
            boundary = f"{name} fields cross the process-pool pickle boundary"
        else:
            continue
        func = ctx.enclosing_function(node)
        locals_ = _local_defs(func) if func is not None else set()
        for value in [*node.args, *(kw.value for kw in node.keywords)]:
            for sub, what in _unpicklable_exprs(value, locals_):
                yield (sub.lineno, sub.col_offset,
                       f"{what} passed where {boundary}; pickle cannot "
                       "serialize it — use a module-level function or a "
                       "spec-named registry entry")


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in ("dict", "list", "set", "defaultdict", "deque")
    return False


def _is_constant_name(name: str) -> bool:
    """UPPER_CASE (optionally underscore-prefixed) or dunder names are
    registries/constants by this repo's convention, not mutable state."""
    if name.startswith("__") and name.endswith("__"):
        return True
    bare = name.lstrip("_")
    return bool(bare) and bare == bare.upper()


def check_module_mutable_state(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """CONC003: no lowercase module-level mutable containers."""
    for stmt in ctx.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not _is_constant_name(target.id):
                yield (stmt.lineno, stmt.col_offset,
                       f"module-level mutable state {target.id!r} is shared "
                       "across every run in the process and invisible to the "
                       "cache key; move it into the spec/run state or name "
                       "it as an UPPER_CASE import-time registry")


register(Rule(
    rule_id="CONC001",
    name="mutator-outside-dispatch",
    description="online mutators may only be invoked from the daemon command dispatch",
    severity=Severity.ERROR,
    scopes=_CONC001_SCOPES,
    check=check_mutator_call_site,
))

register(Rule(
    rule_id="CONC002",
    name="unpicklable-fanout-argument",
    description="no lambdas or local defs into parallel execute()/FleetSpec fields",
    severity=Severity.ERROR,
    scopes=(),
    check=check_picklable_fanout,
))

register(Rule(
    rule_id="CONC003",
    name="module-level-mutable-state",
    description="no lowercase module-level mutable containers in result-producing packages",
    severity=Severity.ERROR,
    scopes=_MUTABLE_STATE_SCOPES,
    check=check_module_mutable_state,
))
