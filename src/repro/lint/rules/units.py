"""Unit-consistency rules (UNIT001-UNIT002).

The repo's convention (DESIGN.md) is that every quantity-bearing name
carries its unit as a suffix: ``energy_joules``, ``power_watts``,
``timeout_s``, ``latency_ms``, ``speed_rpm``. The classic reproduction
bug these rules target is silent unit mixing — adding seconds to
milliseconds, or comparing watts to joules — which produces plausible
but wrong energy numbers rather than a crash.

* **UNIT001** flags additive arithmetic (``+``, ``-``) and comparisons
  between operands whose name suffixes resolve to *different* units.
  Multiplication and division are exempt (watts x seconds = joules is
  the whole point of the simulator).
* **UNIT002** flags numeric-literal defaults on parameters and class
  fields whose name clearly denotes a power/time quantity but carries no
  unit suffix anywhere in the name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import bare_call_name
from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

#: Name suffix -> canonical unit. Only the *last* underscore-separated
#: token of a name is consulted, so ``write_cache_latency_s`` is seconds
#: and ``num_disks`` has no unit.
_SUFFIX_UNITS = {
    "joules": "J",
    "j": "J",
    "watts": "W",
    "w": "W",
    "seconds": "s",
    "secs": "s",
    "s": "s",
    "ms": "ms",
    "rpm": "rpm",
    "bytes": "B",
    "bps": "B/s",
}

#: Quantity words that demand a unit suffix when given a numeric default.
_QUANTITY_WORDS = {
    "timeout", "latency", "interval", "period", "delay",
    "idle", "power", "energy", "duration",
}

#: Unit tokens anywhere in a name that satisfy UNIT002.
_UNIT_TOKENS = set(_SUFFIX_UNITS) | {"fraction", "ratio", "frac", "pct", "percent"}


def _name_of(node: ast.expr) -> str | None:
    """The identifier a unit suffix would hang off, if the expression
    is a plain name, attribute access, or a call to one (``f.read_s()``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return bare_call_name(node)
    return None


def _unit_of(node: ast.expr) -> str | None:
    """Unit an expression carries, or None when unknown/unitless.

    Same-unit additive BinOps propagate their unit, so
    ``a_s + b_s < c_ms`` is caught at the comparison.
    """
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left, right = _unit_of(node.left), _unit_of(node.right)
        if left is not None and left == right:
            return left
        return None
    name = _name_of(node)
    if name is None or "_" not in name:
        return None
    return _SUFFIX_UNITS.get(name.rsplit("_", 1)[1].lower())


def check_mixed_units(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """UNIT001: additive arithmetic or comparison across unit suffixes."""
    for node in ast.walk(ctx.tree):
        pairs: list[tuple[ast.expr, ast.expr]] = []
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            pairs.append((node.left, node.right))
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            pairs.extend(zip(operands, operands[1:]))
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, (ast.Add, ast.Sub)):
            pairs.append((node.target, node.value))
        for left, right in pairs:
            lu, ru = _unit_of(left), _unit_of(right)
            if lu is not None and ru is not None and lu != ru:
                yield (node.lineno, node.col_offset,
                       f"mixing units: left operand is {lu}, right is {ru}; "
                       "convert explicitly before combining")


def _has_unit_token(name: str) -> bool:
    return any(tok in _UNIT_TOKENS for tok in name.lower().split("_"))


def _is_quantity(name: str) -> bool:
    tokens = name.lower().split("_")
    # ``moves_per_period`` is a count/rate, not a bare quantity.
    if "per" in tokens:
        return False
    return bool(tokens) and tokens[-1] in _QUANTITY_WORDS


def _numeric_literal(node: ast.expr | None) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _numeric_literal(node.operand)
    if isinstance(node, ast.BinOp):
        # ``4 * 3600.0`` is still a bare numeric default.
        return _numeric_literal(node.left) and _numeric_literal(node.right)
    return False


def check_suffixless_quantities(
    ctx: FileContext, project: ProjectContext
) -> Iterator[tuple[int, int, str]]:
    """UNIT002: power/time quantity names defaulted to bare numbers."""

    def flag(name: str, value: ast.expr | None, node: ast.AST) -> Iterator[tuple[int, int, str]]:
        if _is_quantity(name) and not _has_unit_token(name) and _numeric_literal(value):
            yield (node.lineno, node.col_offset,
                   f"'{name}' holds a physical quantity but names no unit; "
                   "suffix it (_s, _ms, _watts, _joules, ...)")

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spec = node.args
            positional = [*spec.posonlyargs, *spec.args]
            defaults = spec.defaults
            for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
                yield from flag(arg.arg, default, arg)
            for arg, default in zip(spec.kwonlyargs, spec.kw_defaults):
                yield from flag(arg.arg, default, arg)
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    yield from flag(stmt.target.id, stmt.value, stmt)
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                        and isinstance(stmt.targets[0], ast.Name):
                    yield from flag(stmt.targets[0].id, stmt.value, stmt)


register(Rule(
    rule_id="UNIT001",
    name="mixed-unit-arithmetic",
    description="no additive arithmetic or comparison across different unit suffixes",
    severity=Severity.ERROR,
    scopes=(),
    check=check_mixed_units,
))

register(Rule(
    rule_id="UNIT002",
    name="suffixless-quantity",
    description="power/time quantities with numeric defaults must name their unit",
    severity=Severity.WARNING,
    scopes=(),
    check=check_suffixless_quantities,
))
