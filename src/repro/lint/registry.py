"""The rule registry.

A rule is a pure function from (file, project) context to raw findings
plus the metadata the engine needs to scope, filter and report it. Rules
self-register at import time via :func:`register`; importing
:mod:`repro.lint.rules` pulls in every built-in rule module, so the
registry is fully populated by the time the engine runs.

Raw findings are ``(line, col, message)`` triples — the engine stamps
rule id, severity and path, applies scope/suppression/selection, and
wraps them into :class:`~repro.lint.findings.Finding` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Severity

#: A rule callback: yields (line, col, message) for each violation.
RuleCheck = Callable[[FileContext, ProjectContext], Iterable[tuple[int, int, str]]]


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule.

    Attributes:
        rule_id: stable identifier used in reports and suppressions
            (``DET001``, ``UNIT001``, ...).
        name: short kebab-case label for catalogs.
        description: one-line statement of the invariant the rule
            protects.
        severity: default severity of its findings.
        scopes: dotted module prefixes the rule applies to inside the
            ``repro`` package; empty = every module. Files that resolve
            outside the package (fixtures) are always in scope.
        check: the callback producing raw findings.
    """

    rule_id: str
    name: str
    description: str
    severity: Severity
    scopes: tuple[str, ...]
    check: RuleCheck

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` (module-scope filtering)."""
        if not self.scopes or not ctx.in_repro:
            return True
        return any(
            ctx.module == scope or ctx.module.startswith(scope + ".")
            for scope in self.scopes
        )


_RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the registry; duplicate ids are a programming bug."""
    if rule.rule_id in _RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _RULES[rule.rule_id] = rule
    return rule


def all_rules() -> dict[str, Rule]:
    """Registered rules by id, with the built-in set loaded."""
    # Importing the rules package triggers registration of every
    # built-in rule module exactly once.
    import repro.lint.rules  # noqa: F401  (import-for-side-effect)

    return dict(_RULES)
