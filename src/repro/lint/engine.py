"""The lint engine: discovery, suppression, rule dispatch.

The engine walks the requested paths, parses every Python file once,
builds the cross-file :class:`~repro.lint.context.ProjectContext`, runs
each registered rule over the files it is scoped to, and folds inline
suppressions into the result.

Suppression syntax (checked, not free-form)::

    x = time.time()  # repro: lint-ok[DET003] wall clock feeds runtime_* only

A suppression comment applies to findings on its own line, or — when the
comment stands alone on a line — to the line directly below it. The rule
id inside ``[...]`` is mandatory: a bare ``lint-ok`` suppresses nothing
and is itself reported as :data:`LINT000`, so every suppression in the
tree documents exactly which invariant it waives.

Two engine-level pseudo-rules participate in selection and reporting
like any other rule:

* ``LINT000`` — malformed suppression (missing/empty rule id list);
* ``LINT999`` — file failed to parse (syntax error).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.context import FileContext, ProjectContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, register

#: Matches one suppression comment; the ids group is None for a bare
#: ``lint-ok`` (which is malformed — ids are mandatory).
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok(?:\[(?P<ids>[^\]]*)\])?")

_SKIP_DIR_PARTS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def _no_findings(
    ctx: FileContext, project: ProjectContext
) -> Iterable[tuple[int, int, str]]:
    """Placeholder check for engine-emitted pseudo-rules."""
    return ()


LINT000 = register(Rule(
    rule_id="LINT000",
    name="bare-suppression",
    description="every lint-ok suppression must name the rule id(s) it waives",
    severity=Severity.ERROR,
    scopes=(),
    check=_no_findings,
))

LINT999 = register(Rule(
    rule_id="LINT999",
    name="parse-error",
    description="file could not be parsed as Python",
    severity=Severity.ERROR,
    scopes=(),
    check=_no_findings,
))


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Python files under ``paths`` (files kept as-is, dirs walked).

    Hidden directories, caches and ``*.egg-info`` trees are skipped; the
    result is sorted and de-duplicated so runs are order-independent.
    """
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for path in candidates:
            parts = set(path.parts)
            if parts & _SKIP_DIR_PARTS:
                continue
            if any(part.endswith(".egg-info") for part in path.parts):
                continue
            key = path.resolve()
            if key in seen:
                continue
            seen.add(key)
            out.append(path)
    return out


def _package_root(path: Path) -> Path | None:
    """Topmost package dir named ``repro`` containing ``path``, if any."""
    best: Path | None = None
    current = path.resolve().parent
    while (current / "__init__.py").is_file():
        if current.name == "repro":
            best = current
        current = current.parent
    return best


def _load_file(path: Path) -> tuple[FileContext | None, Finding | None]:
    """Parse one file into a context, or a LINT999 finding on failure."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return None, Finding(
            path=str(path),
            line=int(line),
            col=0,
            rule_id=LINT999.rule_id,
            severity=LINT999.severity,
            message=f"cannot parse file: {exc}",
        )
    return FileContext(path, source, tree), None


def _suppressions(ctx: FileContext) -> tuple[dict[int, set[str]], list[Finding]]:
    """Per-line suppressed rule ids, plus LINT000 findings for bad ones."""
    by_line: dict[int, set[str]] = {}
    malformed: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(ctx.source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - ast parsed already
        return by_line, malformed
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        line, col = tok.start
        ids_raw = match.group("ids")
        ids = [part.strip() for part in ids_raw.split(",")] if ids_raw else []
        ids = [part for part in ids if part]
        if not ids:
            malformed.append(Finding(
                path=str(ctx.path),
                line=line,
                col=col,
                rule_id=LINT000.rule_id,
                severity=LINT000.severity,
                message="suppression without a rule id; use "
                        "'# repro: lint-ok[RULE001] reason'",
            ))
            continue
        targets = [line]
        # A comment standing alone on its line covers the next line.
        prefix = ctx.source.splitlines()[line - 1][:col]
        if not prefix.strip():
            targets.append(line + 1)
        for target in targets:
            by_line.setdefault(target, set()).update(ids)
    return by_line, malformed


def lint(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    extra_findings: Iterable[Finding] = (),
) -> LintResult:
    """Lint every Python file under ``paths``.

    Args:
        paths: files and/or directories to lint.
        select: if given, only these rule ids run/report.
        ignore: rule ids to drop (wins over ``select``).
        extra_findings: pre-computed findings (the CODE_VERSION guard)
            folded through the same selection and sorting as rule output.

    Cross-file rules see the whole ``repro`` package of any linted file
    as analysis context, so linting a single changed file (pre-commit)
    reaches the same verdicts as linting the full tree.
    """
    selected = set(select) if select is not None else None
    ignored = set(ignore) if ignore is not None else set()

    def wanted(rule_id: str) -> bool:
        if rule_id in ignored:
            return False
        return selected is None or rule_id in selected

    rules = all_rules()
    unknown = (set(selected or ()) | ignored) - set(rules)
    if unknown:
        import difflib

        hints = []
        for rule_id in sorted(unknown):
            close = difflib.get_close_matches(rule_id.upper(), list(rules), n=1)
            if close:
                hints.append(f"{rule_id} (did you mean {close[0]}?)")
            else:
                hints.append(rule_id)
        raise ValueError(f"unknown rule id(s): {', '.join(hints)}; "
                         f"known: {', '.join(sorted(rules))}")

    result = LintResult()
    contexts: list[FileContext] = []
    for path in discover_files(paths):
        ctx, parse_error = _load_file(path)
        result.files_checked += 1
        if parse_error is not None:
            if wanted(parse_error.rule_id):
                result.findings.append(parse_error)
            continue
        assert ctx is not None
        contexts.append(ctx)

    # Pull in package siblings as cross-file analysis context.
    linted_paths = {ctx.path.resolve() for ctx in contexts}
    context_files: list[FileContext] = []
    roots_seen: set[Path] = set()
    for ctx in contexts:
        root = _package_root(ctx.path)
        if root is None or root in roots_seen:
            continue
        roots_seen.add(root)
        for sibling in sorted(root.rglob("*.py")):
            if sibling.resolve() in linted_paths:
                continue
            sib_ctx, _ = _load_file(sibling)
            if sib_ctx is not None:
                context_files.append(sib_ctx)
    project = ProjectContext(contexts, context_files)

    raw: list[Finding] = [f for f in extra_findings if wanted(f.rule_id)]
    for ctx in contexts:
        suppress_map, malformed = _suppressions(ctx)
        raw.extend(f for f in malformed if wanted(f.rule_id))
        for rule in rules.values():
            if not wanted(rule.rule_id) or not rule.applies_to(ctx):
                continue
            for line, col, message in rule.check(ctx, project):
                finding = Finding(
                    path=str(ctx.path),
                    line=line,
                    col=col,
                    rule_id=rule.rule_id,
                    severity=rule.severity,
                    message=message,
                )
                if rule.rule_id in suppress_map.get(line, ()):
                    result.suppressed.append(finding)
                else:
                    raw.append(finding)
    result.findings.extend(raw)
    result.findings.sort()
    result.suppressed.sort()
    return result
