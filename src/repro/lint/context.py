"""Per-file and per-project analysis context handed to rules.

A :class:`FileContext` owns one parsed module: source text, AST, the
dotted module name derived from the path, and lazily-built helpers
(parent links) that several rules share. A :class:`ProjectContext` owns
every file the engine loaded — the files being linted plus, when those
files belong to an installed ``repro`` package tree, the *rest* of that
tree as analysis context. Cross-file rules (the observability pairing
rule builds a project-wide set of emitting functions) read the project;
findings are only ever reported against the files actually selected for
linting.
"""

from __future__ import annotations

import ast
import typing
from pathlib import Path
from typing import Any, Iterator

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.callgraph import CallGraph, SymbolTable


def module_name_for_path(path: Path) -> str:
    """Dotted module name of ``path``, anchored at the ``repro`` package.

    ``src/repro/sim/runner.py`` maps to ``repro.sim.runner``. Files that
    do not live under a ``repro`` directory (rule fixtures, scratch
    files) map to their bare stem — the engine treats such modules as
    in-scope for every rule, which is what makes fixture files exercise
    scoped rules without faking a package layout.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


class FileContext:
    """One parsed source file plus shared per-file analysis helpers."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_for_path(path)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._imports: dict[str, str] | None = None

    @property
    def in_repro(self) -> bool:
        """Whether this file resolved to a module under the repro package."""
        return self.module == "repro" or self.module.startswith("repro.")

    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent links over the whole tree (built once)."""
        if self._parents is None:
            links: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    links[child] = parent
            self._parents = links
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node``, nearest first."""
        links = self.parents()
        current = links.get(node)
        while current is not None:
            yield current
            current = links.get(current)

    def imports(self) -> dict[str, str]:
        """Local alias -> fully-qualified imported name.

        ``import numpy as np`` maps ``np -> numpy``; ``from time import
        time as now`` maps ``now -> time.time``. Used by rules to resolve
        call sites back to the module they actually reach.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname is not None:
                            table[alias.asname] = alias.name
                        else:
                            # ``import a.b.c`` binds the name ``a`` to
                            # the top-level module ``a``.
                            top = alias.name.split(".")[0]
                            table[top] = top
                elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    def qualified_call_name(self, func: ast.expr) -> str | None:
        """Fully-qualified dotted name a call expression resolves to.

        Follows the file's import table one step: ``np.random.default_rng``
        resolves to ``numpy.random.default_rng`` under ``import numpy as
        np``. Returns None for calls on computed expressions.
        """
        parts: list[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.imports().get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """Nearest function definition containing ``node``, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None


class ProjectContext:
    """Every file loaded for this lint run.

    ``files`` holds the files selected for linting; ``context_files``
    additionally holds package siblings loaded purely as analysis
    context. ``cache`` is a scratch dict rules use to memoize expensive
    whole-project passes (keyed by rule-chosen strings) so the analysis
    runs once per lint invocation, not once per file.
    """

    def __init__(
        self,
        files: list[FileContext],
        context_files: list[FileContext] | None = None,
    ) -> None:
        self.files = files
        self.context_files = context_files if context_files is not None else []
        self.cache: dict[str, Any] = {}

    def all_files(self) -> list[FileContext]:
        """Linted files plus context-only files, linted files first."""
        return [*self.files, *self.context_files]

    # -- whole-program analysis ---------------------------------------------

    def symbols(self) -> "SymbolTable":
        """The project-wide symbol table (built once per lint run).

        Indexes every function/method/class across all loaded files and
        the re-export alias map, so rules resolve ``repro.*`` names to
        their defining module (see :mod:`repro.lint.callgraph`).
        """
        from repro.lint.callgraph import SymbolTable

        cached = self.cache.get("project.symbols")
        if cached is None:
            cached = SymbolTable.build(self.all_files())
            self.cache["project.symbols"] = cached
        return cached

    def call_graph(self) -> "CallGraph":
        """The project-wide call graph (built once per lint run)."""
        from repro.lint.callgraph import CallGraph

        cached = self.cache.get("project.call_graph")
        if cached is None:
            cached = CallGraph(self.symbols())
            self.cache["project.call_graph"] = cached
        return cached

    def resolve_call(self, ctx: FileContext, func: ast.expr) -> str | None:
        """Canonical dotted name a call resolves to, project-wide.

        One step past :meth:`FileContext.qualified_call_name`: the
        import-table resolution is chased through the symbol table's
        re-export aliases, so ``from repro.obs import JsonlWriter``
        call sites resolve to ``repro.obs.tracelog.JsonlWriter``.
        """
        dotted = ctx.qualified_call_name(func)
        if dotted is None:
            return None
        return self.symbols().resolve(dotted)
