"""Finding and severity types shared by the whole lint subsystem.

A :class:`Finding` is one rule violation anchored to a ``path:line:col``
span. Findings are frozen and ordered so reports are deterministic:
two lint runs over the same tree produce byte-identical output, which is
itself one of the invariants this subsystem exists to defend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Severity(enum.Enum):
    """How strongly a rule's finding gates the exit code."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one program point.

    Ordering is (path, line, col, rule_id) so reporter output is stable
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def location(self) -> str:
        """``path:line:col`` prefix used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-safe form (the JSON reporter's stable schema)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
