"""repro.lint: simulator-aware whole-program static analysis.

A linter that enforces the invariants this repo's reproduction
guarantees rest on — determinism of result-producing code, unit-suffix
consistency, cache-key completeness, observability pairing,
serve-protocol sync, resource lifecycles, and concurrency safety.
Cross-file rules build on a project-wide symbol table and call graph
(:mod:`repro.lint.callgraph`). See ``docs/linting.md`` for the rule
catalog and suppression syntax, and run it via ``repro lint``.
"""

from repro.lint.callgraph import CallGraph, SymbolTable
from repro.lint.engine import LintResult, discover_files, lint
from repro.lint.findings import Finding, Severity
from repro.lint.guard import (
    check_code_version_bump,
    check_protocol_version_bump,
    resolve_repo_root,
)
from repro.lint.registry import Rule, all_rules, register
from repro.lint.reporters import render_json, render_rule_list, render_text

__all__ = [
    "CallGraph",
    "Finding",
    "LintResult",
    "Rule",
    "Severity",
    "SymbolTable",
    "all_rules",
    "check_code_version_bump",
    "check_protocol_version_bump",
    "discover_files",
    "lint",
    "register",
    "render_json",
    "render_rule_list",
    "render_text",
    "resolve_repo_root",
]
