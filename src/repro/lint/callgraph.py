"""Cross-module symbol table and call graph for whole-program rules.

Per-file AST scans catch local mistakes; the failure modes that arrived
with the serve and fleet layers are *interprocedural* — a simulation
mutator invoked from the wrong side of the step loop, an unpicklable
object smuggled into a process fan-out two calls away from the
``execute()`` site. This module gives rules the project-wide view those
checks need, built once per lint run and memoized on
:class:`~repro.lint.context.ProjectContext`:

* a :class:`SymbolTable` — every function, method and class in the
  loaded files keyed by dotted qualname, plus the re-export alias map
  (``repro.obs.JsonlWriter`` → ``repro.obs.tracelog.JsonlWriter``) so
  def/use resolution follows ``repro.*`` imports through package
  ``__init__`` re-exports;
* a :class:`CallGraph` — resolved call edges (import-table + symbol
  table + ``self.``-method resolution on known classes) with a
  name-level fallback edge set for calls static analysis cannot pin
  down, and the fixpoint/reachability API cross-file rules build on
  (the OBS001 emitting-function fixpoint, PROTO dispatch resolution).

Resolution is deliberately *sound for the repo's idioms, permissive
beyond them*: an edge the builder cannot resolve degrades to a bare-name
edge rather than disappearing, so property fixpoints err toward
accepting code (fewer false positives) while lookups err toward finding
the definition.
"""

from __future__ import annotations

import ast
import typing
from dataclasses import dataclass, field
from typing import Callable, Iterable

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.context import FileContext, ProjectContext


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, anchored to its file."""

    qualname: str  # "repro.serve.daemon.ServeDaemon._cmd_ping"
    name: str  # bare name: "_cmd_ping"
    module: str  # "repro.serve.daemon"
    class_name: str | None  # "ServeDaemon" for methods, None for functions
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False, compare=False)
    ctx: "FileContext" = field(repr=False, compare=False)


@dataclass(frozen=True)
class ClassInfo:
    """One class definition plus its directly defined methods."""

    qualname: str
    name: str
    module: str
    node: ast.ClassDef = field(repr=False, compare=False)
    ctx: "FileContext" = field(repr=False, compare=False)
    methods: dict[str, FunctionInfo] = field(repr=False, compare=False, default_factory=dict)


def bare_call_name(node: ast.Call) -> str | None:
    """The rightmost identifier a call dispatches on (``x.y.z()`` → ``z``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def receiver_name(node: ast.Call) -> str | None:
    """Bare name of a call's receiver (``sim.step()`` → ``sim``), if any."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


class SymbolTable:
    """Project-wide definition index with re-export alias resolution.

    Attributes:
        functions: dotted qualname -> :class:`FunctionInfo` for every
            function and method (methods under ``module.Class.method``).
        classes: dotted qualname -> :class:`ClassInfo`.
        aliases: re-export map: ``from X import Y as Z`` inside module
            ``M`` records ``M.Z -> X.Y``, so names imported through
            package ``__init__`` hops resolve to their defining module.
    """

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.aliases: dict[str, str] = {}
        self._functions_by_name: dict[str, list[FunctionInfo]] = {}
        self._classes_by_name: dict[str, list[ClassInfo]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, files: Iterable["FileContext"]) -> "SymbolTable":
        table = cls()
        for ctx in files:
            table._index_file(ctx)
        return table

    def _index_file(self, ctx: "FileContext") -> None:
        module = ctx.module
        for alias, target in ctx.imports().items():
            if "." in target:
                self.aliases.setdefault(f"{module}.{alias}", target)
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(
                    qualname=f"{module}.{stmt.name}",
                    name=stmt.name,
                    module=module,
                    node=stmt,
                    ctx=ctx,
                )
                self.classes[info.qualname] = info
                self._classes_by_name.setdefault(stmt.name, []).append(info)
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = self._add_function(ctx, member, class_name=stmt.name)
                        info.methods[member.name] = method

    def _add_function(
        self,
        ctx: "FileContext",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> FunctionInfo:
        owner = f"{ctx.module}.{class_name}" if class_name else ctx.module
        info = FunctionInfo(
            qualname=f"{owner}.{node.name}",
            name=node.name,
            module=ctx.module,
            class_name=class_name,
            node=node,
            ctx=ctx,
        )
        self.functions[info.qualname] = info
        self._functions_by_name.setdefault(node.name, []).append(info)
        return info

    # -- lookup --------------------------------------------------------------

    def resolve(self, dotted: str) -> str:
        """Canonical qualname of ``dotted``, following re-export chains.

        ``repro.obs.JsonlWriter.write`` resolves through the package
        ``__init__`` alias to ``repro.obs.tracelog.JsonlWriter.write``.
        Unknown names come back unchanged; alias cycles terminate.
        """
        seen: set[str] = set()
        while dotted not in seen:
            seen.add(dotted)
            if dotted in self.aliases:
                dotted = self.aliases[dotted]
                continue
            parts = dotted.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                if prefix in self.aliases:
                    dotted = ".".join([self.aliases[prefix], *parts[cut:]])
                    break
            else:
                break
        return dotted

    def function(self, dotted: str) -> FunctionInfo | None:
        """Definition a dotted name refers to, through aliases, if known."""
        return self.functions.get(self.resolve(dotted))

    def class_def(self, dotted: str) -> ClassInfo | None:
        """Class a dotted name refers to, through aliases, if known."""
        return self.classes.get(self.resolve(dotted))

    def classes_named(self, name: str) -> list[ClassInfo]:
        """Every class in the project with this bare name."""
        return list(self._classes_by_name.get(name, ()))

    def functions_named(self, name: str) -> list[FunctionInfo]:
        """Every function/method in the project with this bare name."""
        return list(self._functions_by_name.get(name, ()))


@dataclass(frozen=True)
class Fixpoint:
    """Result of a property fixpoint over the call graph.

    ``qualnames`` holds the functions proven to satisfy the property
    through resolved edges or name matching; ``names`` is the bare-name
    projection rules use for deliberately permissive membership tests
    (a site is accepted if *any* plausible callee satisfies).
    """

    qualnames: frozenset[str]
    names: frozenset[str]

    def covers(self, func: ast.FunctionDef | ast.AsyncFunctionDef | None) -> bool:
        """Whether an enclosing function (by bare name) satisfies."""
        return func is not None and func.name in self.names


class CallGraph:
    """Caller → callee edges over every function the project loaded.

    Two edge sets per function: ``calls`` holds edges resolved to a
    definition's qualname (import table, symbol table, ``self.`` method
    resolution); ``called_names`` holds the bare names of *every* call
    in the body, resolved or not — the permissive fallback that keeps
    fixpoints from under-approximating on dynamic dispatch.
    """

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.calls: dict[str, set[str]] = {}
        self.called_names: dict[str, set[str]] = {}
        for info in symbols.functions.values():
            resolved, names = self._edges(info)
            self.calls[info.qualname] = resolved
            self.called_names[info.qualname] = names

    def _edges(self, info: FunctionInfo) -> tuple[set[str], set[str]]:
        resolved: set[str] = set()
        names: set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            bare = bare_call_name(node)
            if bare is not None:
                names.add(bare)
            target = self._resolve_call(info, node)
            if target is not None:
                resolved.add(target)
        return resolved, names

    def _resolve_call(self, info: FunctionInfo, node: ast.Call) -> str | None:
        func = node.func
        # self.method() / cls.method(): resolve on the enclosing class.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and info.class_name is not None
        ):
            owner = self.symbols.class_def(f"{info.module}.{info.class_name}")
            if owner is not None and func.attr in owner.methods:
                return owner.methods[func.attr].qualname
            return None
        dotted = info.ctx.qualified_call_name(func)
        if dotted is None:
            return None
        hit = self.symbols.function(dotted)
        if hit is not None:
            return hit.qualname
        # module-local bare call: f() inside module M is M.f.
        if isinstance(func, ast.Name):
            local = self.symbols.functions.get(f"{info.module}.{func.id}")
            if local is not None:
                return local.qualname
        return None

    # -- analysis API --------------------------------------------------------

    def fixpoint(self, base: Callable[[FunctionInfo], bool]) -> Fixpoint:
        """Functions satisfying ``base`` closed under "calls one that does".

        Propagation follows resolved edges *and* bare-name edges (a
        caller satisfies if any function sharing a called name does), so
        the result is an over-approximation suited to acceptance tests:
        "this counter site plausibly pairs with an emit" — never to
        proofs of absence.
        """
        infos = self.symbols.functions
        qualnames = {q for q, fi in infos.items() if base(fi)}
        names = {infos[q].name for q in qualnames}
        changed = True
        while changed:
            changed = False
            for q, fi in infos.items():
                if q in qualnames:
                    continue
                if self.calls[q] & qualnames or self.called_names[q] & names:
                    qualnames.add(q)
                    names.add(fi.name)
                    changed = True
        return Fixpoint(qualnames=frozenset(qualnames), names=frozenset(names))

    def reachable_from(self, seeds: Iterable[str]) -> set[str]:
        """Forward closure over resolved edges from seed qualnames."""
        out: set[str] = set()
        stack = [self.symbols.resolve(s) for s in seeds]
        while stack:
            current = stack.pop()
            if current in out or current not in self.calls:
                continue
            out.add(current)
            stack.extend(self.calls[current])
        return out

    def callers_of(self, target: str) -> set[str]:
        """Qualnames whose bodies call ``target`` (resolved or by name)."""
        canonical = self.symbols.resolve(target)
        bare = canonical.rsplit(".", 1)[-1]
        return {
            q
            for q in self.calls
            if canonical in self.calls[q] or bare in self.called_names[q]
        }
