"""Typed trace events.

Every event is a frozen dataclass with a ``time`` field (simulated
seconds) and a class-level ``kind`` tag. Events are:

* **picklable** — parallel workers return them inside
  :class:`~repro.sim.runner.SimulationResult` and the result cache
  stores them;
* **deterministic** — emitted from the event loop in callback order, so
  two runs of the same spec produce identical event sequences;
* **JSON-round-trippable** — :func:`event_to_dict` /
  :func:`event_from_dict` convert to and from the flat dicts used by the
  JSONL trace files (tuples become lists on the way out and are restored
  on the way in).

The schema is intentionally flat: scalars, strings and tuples of ints
only, so a trace file stays greppable and diffs cleanly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar


@dataclass(frozen=True)
class TraceEvent:
    """Base event: a timestamped, typed record of one decision/action."""

    #: Simulated time (seconds) at which the event happened.
    time: float

    #: Stable tag identifying the event type in serialized form.
    kind: ClassVar[str] = "event"


#: kind tag -> event class, populated by :func:`_register`.
EVENT_TYPES: dict[str, type[TraceEvent]] = {}


def _register(cls: type[TraceEvent]) -> type[TraceEvent]:
    if cls.kind in EVENT_TYPES:
        raise ValueError(f"duplicate event kind {cls.kind!r}")
    EVENT_TYPES[cls.kind] = cls
    return cls


@_register
@dataclass(frozen=True)
class RunStart(TraceEvent):
    """First event of every observed run: identifies the experiment."""

    trace_name: str
    policy_name: str
    policy_params: str
    goal_s: float | None
    num_disks: int
    num_extents: int
    #: Spindle speed of each disk when the run opened.
    initial_rpm: tuple[int, ...]

    kind: ClassVar[str] = "run_start"


@_register
@dataclass(frozen=True)
class RunEnd(TraceEvent):
    """Last event of every observed run: the counters the result reports.

    Carried in the trace so a JSONL file is self-contained — the
    reconciliation in :func:`repro.obs.summary.reconcile` checks the
    event stream against these figures without needing the result object.
    """

    num_requests: int
    failed_requests: int
    energy_joules: float
    #: Lump-sum transition energy (see ``EnergyMeter.impulse_joules``).
    impulse_joules: float
    boost_seconds: float
    spinups: int
    speed_changes: int
    migration_extents: int
    migration_bytes: int

    kind: ClassVar[str] = "run_end"


@_register
@dataclass(frozen=True)
class EpochBoundary(TraceEvent):
    """One epoch-boundary decision of an epoch-based policy."""

    epoch_index: int
    #: Human-readable configuration, e.g. ``"2@15000+6@6000"``.
    configuration: str
    #: Supported speeds, fastest first (the tier order).
    tier_speeds: tuple[int, ...]
    #: Disks per tier, parallel to ``tier_speeds``.
    tier_counts: tuple[int, ...]
    #: Total observed heat (weighted request rate) folded at the boundary.
    heat_total: float
    predicted_response_s: float
    predicted_energy_joules: float
    #: False when the optimizer fell back to all-full-speed.
    feasible: bool
    planned_moves: int
    #: Whether the boost was active when the boundary fired.
    boosted: bool
    #: Length of the epoch that starts at this boundary.
    epoch_seconds: float

    kind: ClassVar[str] = "epoch"


@_register
@dataclass(frozen=True)
class BoostEnter(TraceEvent):
    """The guarantee kicked in: all disks to full speed."""

    #: Deficit (latency-seconds above goal) that triggered the boost.
    deficit_s: float

    kind: ClassVar[str] = "boost_enter"


@_register
@dataclass(frozen=True)
class BoostExit(TraceEvent):
    """Enough credit rebuilt: the boost released."""

    deficit_s: float
    #: Cumulative boosted time including the interval just closed.
    boost_seconds_total: float

    kind: ClassVar[str] = "boost_exit"


@_register
@dataclass(frozen=True)
class SpeedTransition(TraceEvent):
    """One spindle began a speed transition (including spin-up/-down)."""

    disk: int
    from_rpm: int
    to_rpm: int

    kind: ClassVar[str] = "speed_transition"

    @property
    def is_spinup(self) -> bool:
        return self.from_rpm == 0 and self.to_rpm > 0

    @property
    def is_spindown(self) -> bool:
        return self.from_rpm > 0 and self.to_rpm == 0

    @property
    def is_speed_change(self) -> bool:
        """Spinning-to-spinning change (the ``speed_changes`` counter)."""
        return self.from_rpm > 0 and self.to_rpm > 0


@_register
@dataclass(frozen=True)
class MigrationPlanned(TraceEvent):
    """A migration plan started executing."""

    moves: int

    kind: ClassVar[str] = "migration_planned"


@_register
@dataclass(frozen=True)
class MigrationMove(TraceEvent):
    """One extent finished moving (counts toward ``migration_extents``)."""

    extent: int
    from_disk: int
    to_disk: int

    kind: ClassVar[str] = "migration_move"


@_register
@dataclass(frozen=True)
class MigrationCancelled(TraceEvent):
    """Remaining moves were dropped (boost preemption or no free slots)."""

    unplaced: int

    kind: ClassVar[str] = "migration_cancelled"


@_register
@dataclass(frozen=True)
class RequestFailed(TraceEvent):
    """A foreground request could not be served (degraded mode)."""

    req_id: int
    extent: int
    op_kind: str

    kind: ClassVar[str] = "request_failed"


@_register
@dataclass(frozen=True)
class DiskFailed(TraceEvent):
    """A whole-disk failure was injected (or observed by the policy)."""

    disk: int
    #: Extents resident on the disk at failure time — the data exposed
    #: until the rebuild re-protects it.
    extents_exposed: int

    kind: ClassVar[str] = "disk_failed"


@_register
@dataclass(frozen=True)
class OpRetried(TraceEvent):
    """A physical disk op hit an injected transient error and will retry."""

    disk: int
    #: Attempt number that just failed (1 = first service attempt).
    attempt: int
    op_kind: str
    #: Backoff before the op re-queues, in seconds.
    backoff_s: float

    kind: ClassVar[str] = "op_retried"


@_register
@dataclass(frozen=True)
class RebuildProgress(TraceEvent):
    """Rebuild advanced: one extent re-protected, re-queued or stalled."""

    #: Extents re-protected so far (across all failures).
    rebuilt: int
    #: Extents waiting for a healthy disk with a free slot.
    unplaced: int
    #: Extents queued behind the concurrency bound.
    pending: int
    #: Total extents ever scheduled for rebuild.
    total: int

    kind: ClassVar[str] = "rebuild_progress"


@_register
@dataclass(frozen=True)
class FleetRunStart(TraceEvent):
    """First event of an observed fleet run: identifies the fleet."""

    num_arrays: int
    trace_name: str
    policy_name: str
    partitioner: str
    goal_s: float | None

    kind: ClassVar[str] = "fleet_run_start"


@_register
@dataclass(frozen=True)
class FleetArrayDone(TraceEvent):
    """One array's shard finished (time = that array's sim end)."""

    array: int
    num_requests: int
    failed_requests: int
    energy_joules: float
    mean_response_s: float

    kind: ClassVar[str] = "fleet_array_done"


@_register
@dataclass(frozen=True)
class FleetRunEnd(TraceEvent):
    """Last event of an observed fleet run: the merged totals."""

    num_arrays: int
    num_requests: int
    failed_requests: int
    energy_joules: float
    spinups: int
    speed_changes: int

    kind: ClassVar[str] = "fleet_run_end"


@_register
@dataclass(frozen=True)
class ServeGoalChanged(TraceEvent):
    """A ``set-goal`` control command changed the goal mid-run."""

    old_goal_s: float | None
    new_goal_s: float | None

    kind: ClassVar[str] = "serve_goal_changed"


@_register
@dataclass(frozen=True)
class ServeFaultInjected(TraceEvent):
    """An ``inject-fault`` control command installed a plan mid-run."""

    disk_failures: int
    transient_faults: int
    slow_disk_faults: int

    kind: ClassVar[str] = "serve_fault_injected"


@_register
@dataclass(frozen=True)
class ServeBoostForced(TraceEvent):
    """A ``force-boost`` control command entered the boost by hand."""

    #: False when the policy refused (no boost mechanism / already boosted).
    entered: bool

    kind: ClassVar[str] = "serve_boost_forced"


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """Flatten an event into a JSON-safe dict (``event`` key = kind tag)."""
    out: dict[str, Any] = {"event": event.kind}
    for f in dataclasses.fields(event):
        value = getattr(event, f.name)
        if isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def event_from_dict(data: dict[str, Any]) -> TraceEvent:
    """Inverse of :func:`event_to_dict`; rejects unknown kinds."""
    try:
        kind = data["event"]
    except KeyError:
        raise ValueError(f"not an event record (no 'event' key): {data!r}") from None
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}; known: {sorted(EVENT_TYPES)}")
    kwargs: dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        value = data[f.name]
        if isinstance(value, list):
            value = tuple(value)
        elif value is None and f.type == "float":
            # Strict-JSON traces store non-finite floats as null
            # (repro.obs.tracelog); a required-float field can only be
            # null because it held NaN, so restore it. Optional floats
            # ("float | None") keep None — their null means absent.
            value = float("nan")
        kwargs[f.name] = value
    return cls(**kwargs)
