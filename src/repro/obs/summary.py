"""Trace rendering and event-vs-result reconciliation.

``repro trace t.jsonl`` turns a raw event log back into the story of the
run: a per-epoch decision table, an ASCII speed/boost timeline (built on
:mod:`repro.analysis.ascii_plot`) and a reconciliation block proving the
event stream accounts for every reported counter.

:func:`reconcile` is the load-bearing piece: it recomputes
``boost_seconds``, ``spinups``, ``speed_changes``, ``migration_extents``
and ``failed_requests`` purely from the events and compares them against
the ``run_end`` record. A mismatch means an emit site is missing or an
accounting bug crept in — exactly the class of error this layer exists
to localize.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.ascii_plot import sparkline
from repro.analysis.report import format_kv, format_table
from repro.obs.events import (
    BoostEnter,
    BoostExit,
    EpochBoundary,
    MigrationMove,
    RequestFailed,
    RunEnd,
    RunStart,
    SpeedTransition,
    TraceEvent,
)


def reconcile(events: Sequence[TraceEvent]) -> dict[str, float]:
    """Recompute run counters from the event stream alone.

    Returns ``spinups``, ``speed_changes``, ``migration_extents``,
    ``failed_requests``, ``boosts`` and ``boost_seconds`` (an open boost
    is closed at the ``run_end`` time, or at the last event's time when
    the trace was truncated), plus ``epochs``.
    """
    spinups = 0
    speed_changes = 0
    migration_extents = 0
    failed = 0
    epochs = 0
    boosts = 0
    boost_seconds = 0.0
    boost_open: float | None = None
    end_time = events[-1].time if events else 0.0
    for event in events:
        if isinstance(event, SpeedTransition):
            if event.is_spinup:
                spinups += 1
            elif event.is_speed_change:
                speed_changes += 1
        elif isinstance(event, MigrationMove):
            migration_extents += 1
        elif isinstance(event, RequestFailed):
            failed += 1
        elif isinstance(event, EpochBoundary):
            epochs += 1
        elif isinstance(event, BoostEnter):
            boosts += 1
            boost_open = event.time
        elif isinstance(event, BoostExit):
            if boost_open is not None:
                boost_seconds += event.time - boost_open
                boost_open = None
        elif isinstance(event, RunEnd):
            end_time = event.time
    if boost_open is not None:
        boost_seconds += end_time - boost_open
    return {
        "spinups": float(spinups),
        "speed_changes": float(speed_changes),
        "migration_extents": float(migration_extents),
        "failed_requests": float(failed),
        "epochs": float(epochs),
        "boosts": float(boosts),
        "boost_seconds": boost_seconds,
    }


def _first(events: Sequence[TraceEvent], cls: type) -> TraceEvent | None:
    for event in events:
        if isinstance(event, cls):
            return event
    return None


def _epoch_table(events: Sequence[TraceEvent]) -> str:
    epochs = [e for e in events if isinstance(e, EpochBoundary)]
    if not epochs:
        return "(no epoch events in this run)"
    rows = []
    for e in epochs:
        rows.append([
            str(e.epoch_index),
            f"{e.time:.0f}",
            e.configuration,
            f"{e.predicted_response_s * 1e3:.2f}",
            f"{e.predicted_energy_joules / 1e3:.1f}",
            "yes" if e.feasible else "NO",
            str(e.planned_moves),
            "boost" if e.boosted else "-",
            f"{e.epoch_seconds:g}",
        ])
    return format_table(
        ["#", "t (s)", "configuration", "pred RT ms", "pred kJ",
         "feasible", "moves", "state", "next epoch s"],
        rows,
        title="epoch decisions",
    )


def _timeline(events: Sequence[TraceEvent], width: int) -> str:
    """Sparkline of mean RPM + spinning count + a boost occupancy bar.

    Speeds are reconstructed from the ``run_start`` snapshot plus the
    ``speed_transition`` stream (a transition is charged at its start
    time — close enough for a character-cell timeline).
    """
    start = _first(events, RunStart)
    if start is None or not events:
        return "(no run_start event; timeline unavailable)"
    end_time = max(e.time for e in events)
    if end_time <= 0:
        return "(zero-length run; timeline unavailable)"
    speeds = list(start.initial_rpm)  # type: ignore[attr-defined]
    transitions = sorted(
        (e for e in events if isinstance(e, SpeedTransition)),
        key=lambda e: e.time,
    )
    boost_spans: list[tuple[float, float]] = []
    open_boost: float | None = None
    for event in events:
        if isinstance(event, BoostEnter):
            open_boost = event.time
        elif isinstance(event, BoostExit) and open_boost is not None:
            boost_spans.append((open_boost, event.time))
            open_boost = None
    if open_boost is not None:
        boost_spans.append((open_boost, end_time))

    mean_rpm: list[float] = []
    spinning: list[float] = []
    boost_row: list[str] = []
    t_index = 0
    for col in range(width):
        bucket_end = end_time * (col + 1) / width
        while t_index < len(transitions) and transitions[t_index].time <= bucket_end:
            tr = transitions[t_index]
            speeds[tr.disk] = tr.to_rpm
            t_index += 1
        mean_rpm.append(sum(speeds) / len(speeds))
        spinning.append(float(sum(1 for s in speeds if s > 0)))
        bucket_start = end_time * col / width
        boosted = any(b0 < bucket_end and b1 > bucket_start for b0, b1 in boost_spans)
        boost_row.append("█" if boosted else "·")
    lines = [
        f"mean rpm  {sparkline(mean_rpm)}  ({min(mean_rpm):.0f}..{max(mean_rpm):.0f})",
        f"spinning  {sparkline(spinning)}  ({min(spinning):.0f}..{max(spinning):.0f} disks)",
        f"boost     {''.join(boost_row)}",
        f"          0{'s':<{max(width - 10, 1)}}{end_time:>8.0f}s",
    ]
    return "\n".join(lines)


def _reconciliation_block(events: Sequence[TraceEvent]) -> str:
    computed = reconcile(events)
    end = _first(events, RunEnd)
    if end is None:
        return format_kv("reconciliation (no run_end event)", [
            (key, f"{value:g}") for key, value in computed.items()
        ])
    pairs = []
    for key in ("spinups", "speed_changes", "migration_extents",
                "failed_requests", "boost_seconds"):
        reported = float(getattr(end, key))
        derived = computed[key]
        ok = abs(reported - derived) <= 1e-9 * max(1.0, abs(reported))
        pairs.append((key, f"{derived:g} from events vs {reported:g} reported "
                           f"[{'ok' if ok else 'MISMATCH'}]"))
    return format_kv("reconciliation", pairs)


def render_run(events: Sequence[TraceEvent], width: int = 64) -> str:
    """Render one run's events: header, epoch table, timeline, checks."""
    parts: list[str] = []
    start = _first(events, RunStart)
    if start is not None:
        goal = (f"{start.goal_s * 1e3:.2f} ms"  # type: ignore[attr-defined]
                if start.goal_s is not None else "none")  # type: ignore[attr-defined]
        parts.append(
            f"== {start.policy_name} on {start.trace_name} "  # type: ignore[attr-defined]
            f"(goal {goal}, {start.num_disks} disks) =="  # type: ignore[attr-defined]
        )
    else:
        parts.append("== (run without run_start header) ==")
    parts.append(f"{len(events)} events")
    parts.append("")
    parts.append(_epoch_table(events))
    parts.append("")
    parts.append(_timeline(events, width))
    parts.append("")
    parts.append(_reconciliation_block(events))
    return "\n".join(parts)


def render_runs(runs: Sequence[Sequence[TraceEvent]], width: int = 64) -> str:
    """Render every run in a multi-run trace file, separated by blanks."""
    if not runs:
        return "(empty trace)"
    return "\n\n".join(render_run(run, width=width) for run in runs)
