"""Structured observability: typed trace events + a metrics registry.

A simulation run is a sequence of *decisions* — epoch configurations
chosen, boosts entered, spindles transitioned, extents migrated — and
debugging a policy means replaying those decisions, not re-deriving them
from aggregate counters. This package records them:

* :mod:`repro.obs.events` — typed, timestamped, picklable event records;
* :mod:`repro.obs.tracelog` — the in-run event sink plus JSONL I/O;
* :mod:`repro.obs.metrics` — named counters/gauges/timers that policies
  and the engine register into (flattened into ``SimulationResult.extras``);
* :mod:`repro.obs.summary` — per-epoch tables, ASCII timelines and the
  event-vs-result reconciliation used by ``repro trace``.

Observability is **disabled by default and free when disabled**: every
emit site is guarded by an ``is None`` check on the hook, so a run
without a :class:`TraceLog` constructs no event objects and produces
results byte-identical to an uninstrumented build.
"""

from repro.obs.events import (
    BoostEnter,
    BoostExit,
    EpochBoundary,
    MigrationCancelled,
    MigrationMove,
    MigrationPlanned,
    RequestFailed,
    RunEnd,
    RunStart,
    ServeBoostForced,
    ServeFaultInjected,
    ServeGoalChanged,
    SpeedTransition,
    TraceEvent,
    event_from_dict,
    event_to_dict,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.tracelog import JsonlWriter, TraceLog, read_jsonl, split_runs, write_jsonl

# The rendering layer pulls in repro.analysis, which imports the
# instrumented runner — which imports this package. Resolve lazily so the
# emit-side modules (events/metrics/tracelog) stay import-cycle free.
_SUMMARY_EXPORTS = ("reconcile", "render_run", "render_runs")


def __getattr__(name: str):
    if name in _SUMMARY_EXPORTS:
        from repro.obs import summary

        return getattr(summary, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BoostEnter",
    "BoostExit",
    "Counter",
    "EpochBoundary",
    "Gauge",
    "JsonlWriter",
    "MetricsRegistry",
    "MigrationCancelled",
    "MigrationMove",
    "MigrationPlanned",
    "RequestFailed",
    "RunEnd",
    "RunStart",
    "ServeBoostForced",
    "ServeFaultInjected",
    "ServeGoalChanged",
    "SpeedTransition",
    "Timer",
    "TraceEvent",
    "TraceLog",
    "event_from_dict",
    "event_to_dict",
    "read_jsonl",
    "reconcile",
    "render_run",
    "render_runs",
    "split_runs",
    "write_jsonl",
]
