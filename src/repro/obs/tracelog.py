"""The event sink plus JSONL import/export.

A :class:`TraceLog` is a plain append-only list with an :meth:`emit`
bound method that components call through the narrow
``emit(event)`` hook threaded from :class:`~repro.sim.runner.ArraySimulation`.
When observability is disabled the hook is ``None`` and nothing here is
ever touched.

On disk a trace is JSON Lines: one event dict per line (see
:func:`repro.obs.events.event_to_dict`). A file may hold several runs
back to back (``repro compare --trace-out`` writes one per scheme); each
run opens with a ``run_start`` line, which is what :func:`split_runs`
keys on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, Sequence

from repro.obs.events import TraceEvent, event_from_dict, event_to_dict


class TraceLog:
    """Append-only, in-order record of one run's events."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        """Record one event (the hook handed to instrumented components)."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str | type[TraceEvent]) -> list[TraceEvent]:
        """Events of one kind, by tag string or event class."""
        tag = kind if isinstance(kind, str) else kind.kind
        return [e for e in self.events if e.kind == tag]


def write_jsonl(events: Iterable[TraceEvent], path: str | Path | IO[str]) -> int:
    """Write events as JSON Lines; returns the number of lines written."""
    def _write(fh: IO[str]) -> int:
        n = 0
        for event in events:
            fh.write(json.dumps(event_to_dict(event), sort_keys=True))
            fh.write("\n")
            n += 1
        return n

    if hasattr(path, "write"):
        return _write(path)  # type: ignore[arg-type]
    with open(path, "w", encoding="utf-8") as fh:
        return _write(fh)


def read_jsonl(path: str | Path | IO[str]) -> list[TraceEvent]:
    """Read a JSONL trace file back into event objects.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the 1-based line number.
    """
    def _read(fh: IO[str]) -> list[TraceEvent]:
        out: list[TraceEvent] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(event_from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"bad trace line {lineno}: {exc}") from exc
        return out

    if hasattr(path, "read"):
        return _read(path)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as fh:
        return _read(fh)


def split_runs(events: Sequence[TraceEvent]) -> list[list[TraceEvent]]:
    """Partition a multi-run event stream on ``run_start`` boundaries.

    Events before the first ``run_start`` (if any) form their own leading
    group so nothing is silently dropped.
    """
    runs: list[list[TraceEvent]] = []
    current: list[TraceEvent] = []
    for event in events:
        if event.kind == "run_start" and current:
            runs.append(current)
            current = []
        current.append(event)
    if current:
        runs.append(current)
    return runs
