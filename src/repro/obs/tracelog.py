"""The event sink plus JSONL import/export.

A :class:`TraceLog` is a plain append-only list with an :meth:`emit`
bound method that components call through the narrow
``emit(event)`` hook threaded from :class:`~repro.sim.runner.ArraySimulation`.
When observability is disabled the hook is ``None`` and nothing here is
ever touched.

On disk a trace is JSON Lines: one event dict per line (see
:func:`repro.obs.events.event_to_dict`). A file may hold several runs
back to back (``repro compare --trace-out`` writes one per scheme); each
run opens with a ``run_start`` line, which is what :func:`split_runs`
keys on.

Every line is **strict JSON**: non-finite floats (the deliberate
``WindowAverage`` empty-window NaN, say) are normalized to ``null`` on
the way out — Python's default ``json.dumps`` would emit a bare ``NaN``
literal that ``jq`` and every strict parser reject — and ``null`` is
restored to NaN on the way back in for float-typed event fields (see
:func:`repro.obs.events.event_from_dict`).
"""

from __future__ import annotations

import json
import math
import os
import warnings
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Sequence

from repro.obs.events import TraceEvent, event_from_dict, event_to_dict


class TraceLog:
    """Append-only, in-order record of one run's events."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        """Record one event (the hook handed to instrumented components)."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str | type[TraceEvent]) -> list[TraceEvent]:
        """Events of one kind, by tag string or event class."""
        tag = kind if isinstance(kind, str) else kind.kind
        return [e for e in self.events if e.kind == tag]


def _strict_safe(value: Any) -> Any:
    """Replace non-finite floats with None, recursively through lists.

    The same convention as :func:`repro.analysis.export._json_safe`:
    NaN/Infinity have no strict-JSON representation, and ``null`` is the
    honest rendering of "no value" (empty-window averages, unavailable
    percentiles).
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, list):
        return [_strict_safe(v) for v in value]
    return value


def event_line(event: TraceEvent) -> str:
    """One event as a strict-JSON line (no trailing newline).

    ``allow_nan=False`` is a belt-and-braces assertion: after
    :func:`_strict_safe` no non-finite value can remain, so a ValueError
    here means a new event type smuggled one in through a container the
    sanitizer does not know.
    """
    record = {k: _strict_safe(v) for k, v in event_to_dict(event).items()}
    return json.dumps(record, sort_keys=True, allow_nan=False)


def write_jsonl(events: Iterable[TraceEvent], path: str | Path | IO[str]) -> int:
    """Write events as JSON Lines; returns the number of lines written."""
    def _write(fh: IO[str]) -> int:
        n = 0
        for event in events:
            fh.write(event_line(event))
            fh.write("\n")
            n += 1
        return n

    if hasattr(path, "write"):
        return _write(path)  # type: ignore[arg-type]
    with open(path, "w", encoding="utf-8") as fh:
        return _write(fh)


class JsonlWriter:
    """Incremental JSONL event sink for long-lived runs (``repro serve``).

    :func:`write_jsonl` needs the full event list up front; a daemon has
    events trickling in over hours. This writer appends one complete
    line per event and exposes :meth:`flush` (line buffer + fsync) so a
    signal handler can make everything written so far durable before
    exiting — the only torn line a crash can leave is the one being
    written at that instant, which :func:`read_jsonl` skips with a
    warning. :meth:`close` is idempotent.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = open(self.path, "w", encoding="utf-8")
        self.lines = 0

    def write(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError("writer is closed")
        self._fh.write(event_line(event))
        self._fh.write("\n")
        self.lines += 1

    def flush(self) -> None:
        """Push buffered lines to the OS and the OS to the platter."""
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is None:
            return
        self.flush()
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | Path | IO[str]) -> list[TraceEvent]:
    """Read a JSONL trace file back into event objects.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the 1-based line number — except a final line that is not valid JSON
    at all, which is the signature of a write torn mid-line (daemon
    killed, disk full) and is skipped with a warning so a trace cut off
    by a crash stays readable. A *semantically* bad final line (valid
    JSON, unknown event kind) still raises: that is schema drift, not a
    torn write.
    """
    def _read(fh: IO[str]) -> list[TraceEvent]:
        lines = fh.read().split("\n")
        last_payload = -1
        for i, line in enumerate(lines):
            if line.strip():
                last_payload = i
        out: list[TraceEvent] = []
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if index == last_payload:
                    warnings.warn(
                        f"skipping torn final trace line {index + 1} "
                        f"(interrupted write?): {exc}",
                        stacklevel=3,
                    )
                    continue
                raise ValueError(f"bad trace line {index + 1}: {exc}") from exc
            try:
                out.append(event_from_dict(record))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"bad trace line {index + 1}: {exc}") from exc
        return out

    if hasattr(path, "read"):
        return _read(path)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as fh:
        return _read(fh)


def split_runs(events: Sequence[TraceEvent]) -> list[list[TraceEvent]]:
    """Partition a multi-run event stream on ``run_start`` boundaries.

    Events before the first ``run_start`` (if any) form their own leading
    group so nothing is silently dropped.
    """
    runs: list[list[TraceEvent]] = []
    current: list[TraceEvent] = []
    for event in events:
        if event.kind == "run_start" and current:
            runs.append(current)
            current = []
        current.append(event)
    if current:
        runs.append(current)
    return runs
