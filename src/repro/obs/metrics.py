"""Named counters, gauges and timers for run metrics.

The registry replaces the ad-hoc ``extras`` dict plumbing: instead of
every policy assembling its own dict at the end of a run, components
register named instruments on the simulation's
:class:`MetricsRegistry` during ``attach`` and update them as events
happen. The runner flattens the registry into
``SimulationResult.extras`` at the end, so downstream consumers (tables,
CSV/JSON export, benchmarks) are unchanged.

Instrument types:

* :class:`Counter` — monotonically increasing count (epochs seen,
  boosts entered);
* :class:`Gauge` — last-write-wins value (final deficit, final epoch
  length);
* :class:`Timer` — accumulated duration plus an observation count
  (wall-clock spent simulating). Flattens to its total seconds only, so
  a timer and a gauge with the same name are interchangeable in the
  exported extras.

Names must be unique across instrument types; asking for an existing
name with a different type is a bug and raises.
"""

from __future__ import annotations

import math
from typing import TypeVar


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Timer:
    """Accumulated duration; flattens to total seconds."""

    __slots__ = ("name", "total", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"timer {self.name!r} observed negative duration {seconds}")
        self.total += seconds
        self.count += 1

    @property
    def value(self) -> float:
        return self.total


#: Constrained so ``_get`` returns exactly the instrument type asked for.
_InstrumentT = TypeVar("_InstrumentT", Counter, Gauge, Timer)


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    One registry lives on each :class:`~repro.sim.runner.ArraySimulation`
    (fresh per run, so policies reused across runs cannot leak state) and
    is flattened into ``SimulationResult.extras`` when the run ends.
    """

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Timer] = {}

    def _get(self, name: str, cls: type[_InstrumentT]) -> _InstrumentT:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        instrument = cls(name)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def as_dict(self) -> dict[str, float]:
        """Flatten every instrument to ``{name: value}``, sorted by name."""
        return {name: self._instruments[name].value for name in sorted(self._instruments)}

    def snapshot(self) -> dict[str, dict[str, float | int | str | None]]:
        """Typed view of every instrument, sorted by name.

        The serve daemon's ``status`` payload: unlike :meth:`as_dict`
        this keeps the instrument type (and a timer's observation count)
        so a dashboard can render counters and gauges differently.
        Values are JSON-strict: non-finite floats become None.
        """
        out: dict[str, dict[str, float | int | str | None]] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            value = instrument.value
            entry: dict[str, float | int | str | None] = {
                "type": type(instrument).__name__.lower(),
                "value": value if math.isfinite(value) else None,
            }
            if isinstance(instrument, Timer):
                entry["count"] = instrument.count
            out[name] = entry
        return out
