#!/usr/bin/env python3
"""Failure drill: a disk dies mid-run on a RAID-5 volume.

Timeline: OLTP traffic flows; at t=200 s disk 0 fails; reads of its data
reconstruct from the survivors (watch the latency step up); at t=260 s
the rebuild starts trickling the lost extents onto the survivors'
spare capacity; once it finishes, latency returns to normal and the
dead spindle stays dark.

Run:  python examples/failure_drill.py
"""

import dataclasses

from repro import AlwaysOnPolicy, OltpConfig, default_array_config, generate_oltp
from repro.analysis.ascii_plot import sparkline
from repro.analysis.report import format_table
from repro.disks.rebuild import RebuildManager
from repro.sim.runner import ArraySimulation

FAIL_AT_S = 200.0
REBUILD_AT_S = 260.0


def main() -> None:
    trace = generate_oltp(OltpConfig(duration=900.0, rate=150.0,
                                     num_extents=800, seed=8))
    config = dataclasses.replace(
        default_array_config(num_disks=8, num_extents=800),
        raid5=True,
    )
    sim = ArraySimulation(trace, config, AlwaysOnPolicy(), window_s=30.0)
    manager = RebuildManager(sim.array, max_inflight=2)

    sim.engine.schedule(FAIL_AT_S, sim.array.fail_disk, 0)
    sim.engine.schedule(REBUILD_AT_S, manager.start, 0)
    result = sim.run()

    rows = []
    for t, rt, n in result.latency_windows:
        phase = "healthy"
        if t >= FAIL_AT_S:
            phase = "DEGRADED"
        if manager.finished_at is not None and t >= manager.finished_at:
            phase = "rebuilt"
        rows.append([f"{t:.0f}", f"{rt * 1e3:.2f}" if n else "-", phase])
    print(format_table(["t (s)", "window RT ms", "phase"], rows,
                       title="response time through the failure"))
    print()
    print("RT sparkline:",
          sparkline([rt for _, rt, n in result.latency_windows if n]))
    print()
    print(f"requests lost: {result.failed_requests} (RAID-5 survived the failure)")
    print(f"degraded reads served by reconstruction: {sim.array.degraded_reads}")
    print(f"extents rebuilt: {manager.rebuilt} "
          f"in {manager.duration_s:.1f} s" if manager.duration_s else "rebuild incomplete")
    occupancy = [int(x) for x in sim.array.extent_map.occupancy()]
    print(f"post-rebuild occupancy: {occupancy} (disk 0 is dark)")


if __name__ == "__main__":
    main()
