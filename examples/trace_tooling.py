#!/usr/bin/env python3
"""Trace tooling tour: generate, characterize, transform, save, reload.

Builds a composite workload — an OLTP morning, a quiet gap, then a
bursty afternoon — out of generator output and the transform toolkit,
characterizes each phase, and round-trips the result through the trace
file format.

Run:  python examples/trace_tooling.py
"""

import tempfile
from pathlib import Path

from repro import OltpConfig, SyntheticConfig, generate_oltp, generate_synthetic
from repro.analysis.ascii_plot import sparkline
from repro.analysis.report import format_kv
from repro.traces.io import load_trace, save_trace
from repro.traces.tracestats import compute_trace_stats
from repro.traces.transforms import concat, sample_fraction


def main() -> None:
    morning = generate_oltp(OltpConfig(duration=600.0, rate=150.0,
                                       num_extents=800, seed=10))
    afternoon = generate_synthetic(SyntheticConfig(
        name="afternoon", duration=600.0, rate=260.0, num_extents=800,
        zipf_theta=1.2, read_fraction=0.5, seed=11,
    ))
    # Thin the afternoon to 70% (Poisson thinning keeps the structure).
    afternoon = sample_fraction(afternoon, 0.7, seed=12)
    day = concat([morning, afternoon], gap_s=300.0, name="composite-day")

    for phase in (morning, afternoon, day):
        stats = compute_trace_stats(phase, window_s=120.0)
        print(format_kv(f"== {phase.name} ==", stats.rows()))
        print()

    # Arrival-rate sparkline over 30 windows.
    import numpy as np

    counts, _ = np.histogram(day.times, bins=30, range=(0.0, day.duration))
    print("arrival rate:", sparkline(counts.tolist()))
    print()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "day.csv.gz"
        save_trace(day, path)
        size_kib = path.stat().st_size / 1024
        reloaded = load_trace(path)
        print(f"saved {len(day)} requests to {path.name} ({size_kib:.0f} KiB gz), "
              f"reloaded {len(reloaded)} — "
              f"{'identical' if len(reloaded) == len(day) else 'MISMATCH'}")


if __name__ == "__main__":
    main()
