#!/usr/bin/env python3
"""Design-space sweep: slack x speed levels.

For a storage architect deciding (a) how tight a response-time contract
to sell and (b) how many RPM levels the disks need: sweeps both axes on
an OLTP-like workload and prints the savings matrix.

Run:  python examples/design_space_sweep.py
"""

from repro import (
    AlwaysOnPolicy,
    HibernatorConfig,
    HibernatorPolicy,
    OltpConfig,
    default_array_config,
    generate_oltp,
    run_single,
)
from repro.analysis.report import format_table
from repro.traces.tracestats import per_extent_rates

SLACKS = [1.5, 2.0, 3.0]
LEVELS = [1, 2, 3, 5]


def main() -> None:
    trace = generate_oltp(OltpConfig(duration=600.0, rate=160.0,
                                     num_extents=800, seed=6))
    prime = per_extent_rates(trace)

    rows = []
    for levels in LEVELS:
        config = default_array_config(num_disks=8, num_extents=800,
                                      num_speed_levels=levels)
        base = run_single(trace, config, AlwaysOnPolicy())
        row = [f"{levels}"]
        for slack in SLACKS:
            goal = slack * base.mean_response_s
            policy = HibernatorPolicy(HibernatorConfig(
                epoch_seconds=300.0, prime_rates=prime,
            ))
            result = run_single(trace, config, policy, goal_s=goal)
            savings = 100.0 * result.energy_savings_vs(base)
            met = result.mean_response_s <= goal
            row.append(f"{savings:5.1f} %{'' if met else ' (!)'}")
        rows.append(row)

    print(format_table(
        ["speed levels"] + [f"slack {s}x" for s in SLACKS], rows,
        title="Hibernator energy savings: speed levels x response-time slack",
    ))
    print("\n(!) marks configurations that missed the goal")
    print("Reading the matrix: 1 level = conventional disks (nothing to")
    print("exploit); 2 levels capture most of the benefit; tighter goals")
    print("shrink savings at every level count.")


if __name__ == "__main__":
    main()
