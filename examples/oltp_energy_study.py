#!/usr/bin/env python3
"""OLTP energy study: the paper's headline comparison, scaled down.

Runs all six schemes (Base, TPM, DRPM, PDC, MAID, Hibernator) on the
same OLTP-like trace and array, prints the energy/response-time table
and a per-scheme energy breakdown (idle vs active vs transitions vs
standby).

Run:  python examples/oltp_energy_study.py
"""

from repro import (
    ComparisonResult,
    HibernatorConfig,
    OltpConfig,
    default_array_config,
    generate_oltp,
    run_comparison,
)
from repro.analysis.report import format_table


def main() -> None:
    trace = generate_oltp(OltpConfig(duration=900.0, rate=200.0,
                                     num_extents=800, seed=2))
    config = default_array_config(num_disks=8, num_extents=800)
    comparison = run_comparison(
        trace, config, slack=2.0,
        hibernator_config=HibernatorConfig(epoch_seconds=300.0),
    )

    print(format_table(ComparisonResult.HEADERS, comparison.rows(),
                       title="OLTP: scheme comparison"))
    print()

    # Where did the joules go?
    categories = ["idle", "active", "standby", "transition"]
    rows = []
    for name, result in comparison.results.items():
        breakdown = result.breakdown
        rows.append([name] + [
            f"{breakdown.joules.get(cat, 0.0) / 1e3:.1f}" for cat in categories
        ])
    print(format_table(["scheme"] + [f"{c} kJ" for c in categories], rows,
                       title="energy breakdown by category"))
    print()

    hib = comparison.results["Hibernator"]
    print(f"Hibernator detail: {hib.policy_params}")
    print(f"  migration: {hib.migration_extents} extents "
          f"({hib.migration_bytes >> 20} MiB) moved")
    for key, value in hib.extras.items():
        print(f"  {key}: {value:g}")


if __name__ == "__main__":
    main()
