#!/usr/bin/env python3
"""Quickstart: save disk-array energy under a response-time goal.

Generates a small OLTP-like workload, runs the always-on baseline to
define the response-time goal, then runs Hibernator and reports the
energy saved and whether the goal held.

Run:  python examples/quickstart.py
"""

from repro import (
    AlwaysOnPolicy,
    HibernatorConfig,
    HibernatorPolicy,
    OltpConfig,
    default_array_config,
    generate_oltp,
    run_single,
)
from repro.traces.tracestats import per_extent_rates


def main() -> None:
    # A 10-minute OLTP-like trace: steady small random I/O, skewed
    # popularity, on an 8-disk multi-speed array.
    trace = generate_oltp(OltpConfig(duration=600.0, rate=160.0,
                                     num_extents=800, seed=1))
    config = default_array_config(num_disks=8, num_extents=800)

    # 1. Baseline: every disk at full speed. Its mean response time
    #    defines the performance contract.
    base = run_single(trace, config, AlwaysOnPolicy())
    goal = 2.0 * base.mean_response_s
    print(f"baseline: {base.energy_joules / 1e3:.1f} kJ, "
          f"mean response {base.mean_response_s * 1e3:.2f} ms")
    print(f"goal: {goal * 1e3:.2f} ms (2x baseline)")

    # 2. Hibernator: coarse-grained speed tiers + migration + boost.
    #    Priming with the trace's access rates starts it in steady state
    #    (as if it had been running before the measurement window).
    policy = HibernatorPolicy(HibernatorConfig(
        epoch_seconds=300.0,
        prime_rates=per_extent_rates(trace),
    ))
    result = run_single(trace, config, policy, goal_s=goal)

    savings = result.energy_savings_vs(base)
    print(f"hibernator: {result.energy_joules / 1e3:.1f} kJ, "
          f"mean response {result.mean_response_s * 1e3:.2f} ms")
    print(f"energy saved: {100 * savings:.1f} %")
    print(f"goal met: {'yes' if result.mean_response_s <= goal else 'NO'}")
    print(f"tier configuration: {policy.epochs[-1].configuration}"
          f" (epochs: {len(policy.epochs)})")


if __name__ == "__main__":
    main()
