#!/usr/bin/env python3
"""The response-time guarantee in action.

Builds a workload whose hot set moves mid-epoch, stranding the hot data
on a slow tier — the planning mistake the boost exists to absorb. Shows
the deficit climbing, the boost firing, the recovery, and the re-tiered
epoch afterwards; then repeats the run with the guarantee disabled to
show the violation it prevented.

Run:  python examples/rt_guarantee_demo.py
"""

import numpy as np

from repro import (
    GuaranteeConfig,
    HibernatorConfig,
    HibernatorPolicy,
    default_array_config,
)
from repro.analysis.report import format_table
from repro.sim.runner import ArraySimulation
from repro.traces.model import trace_from_columns
from repro.traces.synthetic import interleave_traces

GOAL_S = 9.0e-3
NUM_EXTENTS = 800


def drift_trace():
    def phase(start, dur, hot_lo, seed):
        rng = np.random.default_rng(seed)
        n_hot, n_cold = int(120.0 * dur), int(12.0 * dur)
        t = np.sort(rng.uniform(start, start + dur, n_hot + n_cold))
        ext = np.concatenate([
            rng.integers(hot_lo, hot_lo + 100, n_hot),
            rng.integers(0, NUM_EXTENTS, n_cold),
        ])
        rng.shuffle(ext)
        return trace_from_columns("ph", NUM_EXTENTS, t, np.ones(len(t), bool),
                                  ext[: len(t)], np.full(len(t), 4096))

    return interleave_traces("drift", [phase(0, 300, 0, 4),
                                       phase(300, 900, 600, 5)])


def run(enabled: bool):
    config = default_array_config(num_disks=8, num_extents=NUM_EXTENTS)
    prime = np.full(NUM_EXTENTS, 12.0 / NUM_EXTENTS)
    prime[:100] += 1.2
    policy = HibernatorPolicy(HibernatorConfig(
        epoch_seconds=400.0,
        prime_rates=prime,
        guarantee=GuaranteeConfig(enabled=enabled, enter_threshold_requests=25.0),
    ))
    sim = ArraySimulation(drift_trace(), config, policy, goal_s=GOAL_S,
                          window_s=60.0)
    return policy, sim.run()


def main() -> None:
    print(f"goal: {GOAL_S * 1e3:.1f} ms; hot set moves at t=300s\n")
    policy, result = run(enabled=True)
    speeds = {round(t): rpm for t, rpm, _ in result.speed_samples}
    rows = [
        [f"{t:.0f}", f"{rt * 1e3:7.2f}" if n else "-",
         f"{speeds.get(round(t), 0):.0f}"]
        for t, rt, n in result.latency_windows
    ]
    print(format_table(["t (s)", "window RT ms", "mean rpm"], rows,
                       title="with guarantee"))
    print(f"\nboosts entered: {policy.boost.boosts_entered}, "
          f"boosted for {policy.boost.boost_seconds:.0f} s")
    print(f"cumulative mean RT: {result.mean_response_s * 1e3:.2f} ms "
          f"({'within goal' if result.mean_response_s <= GOAL_S * 1.1 else 'VIOLATED'})")

    _, without = run(enabled=False)
    print("\nwithout guarantee (A1 ablation):")
    print(f"cumulative mean RT: {without.mean_response_s * 1e3:.2f} ms "
          f"({without.mean_response_s / GOAL_S:.1f}x the goal)")
    print(f"energy: {without.energy_joules / 1e3:.1f} kJ vs "
          f"{result.energy_joules / 1e3:.1f} kJ with the boost")


if __name__ == "__main__":
    main()
