#!/usr/bin/env python3
"""File-server day: watching Hibernator follow the diurnal rhythm.

Simulates a (time-compressed) file-server day with a deep overnight
valley and shows, hour by hour, the load, the array's mean spindle speed
and the windowed response time: the array slows down through the valley
and speeds back up for the daytime peak, epoch by epoch.

Run:  python examples/fileserver_diurnal.py
"""

from repro import (
    AlwaysOnPolicy,
    CelloConfig,
    HibernatorConfig,
    HibernatorPolicy,
    default_array_config,
    generate_cello,
    run_single,
)
from repro.analysis.report import format_table
from repro.sim.runner import ArraySimulation
from repro.traces.tracestats import per_extent_rates

DAY_S = 4 * 3600.0  # one diurnal period compressed into 4 simulated hours


def main() -> None:
    trace = generate_cello(CelloConfig(
        days=1.0, day_length_s=DAY_S,
        day_rate=60.0, night_rate=3.0,
        burst_period_s=300.0, num_extents=800, seed=3,
    ))
    config = default_array_config(num_disks=8, num_extents=800)

    base = run_single(trace, config, AlwaysOnPolicy())
    goal = 2.0 * base.mean_response_s

    policy = HibernatorPolicy(HibernatorConfig(
        epoch_seconds=DAY_S / 12.0,
        prime_rates=per_extent_rates(trace),
    ))
    sim = ArraySimulation(trace, config, policy, goal_s=goal,
                          window_s=DAY_S / 24.0)
    result = sim.run()

    speeds = {round(t): (rpm, spinning) for t, rpm, spinning in result.speed_samples}
    rows = []
    for t, rt, n in result.latency_windows:
        rpm, spinning = speeds.get(round(t), (float("nan"), 0))
        hour = 24.0 * t / DAY_S
        rows.append([
            f"{hour:04.1f}", f"{n / (DAY_S / 24.0):.1f}",
            f"{rpm:.0f}", f"{rt * 1e3:.2f}" if n else "-",
        ])
    print(format_table(
        ["hour", "req/s", "mean rpm", "window RT ms"], rows,
        title="file-server day, hour by hour",
    ))
    print()
    print(f"baseline energy: {base.energy_joules / 1e3:.1f} kJ")
    print(f"hibernator energy: {result.energy_joules / 1e3:.1f} kJ "
          f"({100 * result.energy_savings_vs(base):.1f} % saved)")
    print(f"mean response: {result.mean_response_s * 1e3:.2f} ms "
          f"(goal {goal * 1e3:.2f} ms, "
          f"{'met' if result.mean_response_s <= goal else 'VIOLATED'})")
    print()
    print("epoch decisions:")
    for record in policy.epochs:
        print(f"  t={record.time:7.0f}s  {record.configuration:<28} "
              f"predicted RT {record.predicted_response_s * 1e3:5.2f} ms  "
              f"moves {record.planned_moves}")


if __name__ == "__main__":
    main()
