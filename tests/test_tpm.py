"""Unit tests for TPM and the idle spin-down machinery."""

from __future__ import annotations

import pytest

from repro.disks.disk import DiskState, MultiSpeedDisk
from repro.disks.specs import ultrastar_36z15
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.tpm import IdleSpindownManager, TpmConfig, TpmPolicy, breakeven_seconds
from repro.sim.request import DiskOp, IoKind
from repro.sim.runner import ArraySimulation
from tests.conftest import make_trace


def test_breakeven_formula():
    spec = ultrastar_36z15()
    t = breakeven_seconds(spec)
    saved = (spec.idle_watts(15000) - spec.standby_watts) * t
    assert saved == pytest.approx(spec.spinup_joules + spec.spindown_joules)


def test_breakeven_at_low_speed_longer():
    spec = ultrastar_36z15()
    assert breakeven_seconds(spec, 3000) > breakeven_seconds(spec, 15000)


def test_breakeven_rejects_pointless_standby():
    spec = ultrastar_36z15()
    cheap = type(spec)(**{**spec.__dict__, "standby_watts": 20.0})
    with pytest.raises(ValueError):
        breakeven_seconds(cheap)


class TestIdleSpindownManager:
    def make_disk(self, engine):
        return MultiSpeedDisk(engine, ultrastar_36z15(), total_blocks=100, rng=None)

    def test_spins_down_after_threshold(self, engine):
        disk = self.make_disk(engine)
        manager = IdleSpindownManager(engine, threshold_s=5.0)
        manager.manage(disk)  # idle now -> timer armed immediately
        engine.run()
        assert disk.state is DiskState.STANDBY
        assert engine.now >= 5.0

    def test_activity_cancels_timer(self, engine):
        disk = self.make_disk(engine)
        manager = IdleSpindownManager(engine, threshold_s=5.0)
        manager.manage(disk)
        op = DiskOp(request=None, kind=IoKind.READ, disk_index=0, block=1, size=4096)
        engine.schedule(4.0, disk.submit, op)
        engine.run(until=4.5)
        assert disk.state is not DiskState.STANDBY
        engine.run()
        # Timer re-armed after the op drained; eventually spins down.
        assert disk.state is DiskState.STANDBY

    def test_unmanage_stops_spindown(self, engine):
        disk = self.make_disk(engine)
        manager = IdleSpindownManager(engine, threshold_s=5.0)
        manager.manage(disk)
        manager.unmanage(disk)
        engine.run()
        assert disk.state is DiskState.IDLE

    def test_threshold_validation(self, engine):
        with pytest.raises(ValueError):
            IdleSpindownManager(engine, threshold_s=0.0)


class TestTpmPolicy:
    def test_no_savings_on_dense_load(self, small_config):
        trace = make_trace([i * 0.05 for i in range(400)])  # 20s dense
        base = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
        tpm = ArraySimulation(trace, small_config, TpmPolicy()).run()
        assert tpm.energy_joules == pytest.approx(base.energy_joules, rel=0.01)
        assert tpm.spinups == 0

    def test_saves_across_long_gap(self, small_config):
        """One burst, a gap far beyond break-even, another burst: TPM must
        park the disks during the gap and save real energy."""
        threshold = 10.0
        gap_trace = make_trace(
            [0.0, 0.1, 0.2, 0.3] + [500.0, 500.1, 500.2, 500.3],
            extents=[0, 1, 2, 3, 0, 1, 2, 3],
        )
        base = ArraySimulation(gap_trace, small_config, AlwaysOnPolicy()).run()
        tpm = ArraySimulation(
            gap_trace, small_config, TpmPolicy(TpmConfig(threshold_s=threshold))
        ).run()
        assert tpm.spinups == 4
        assert tpm.energy_joules < 0.55 * base.energy_joules

    def test_wakeup_pays_latency(self, small_config):
        gap_trace = make_trace([0.0, 500.0], extents=[0, 0])
        tpm = ArraySimulation(
            gap_trace, small_config, TpmPolicy(TpmConfig(threshold_s=10.0))
        ).run()
        spinup_s, _ = small_config.spec.transition_cost(0, 15000)
        assert tpm.max_response_s >= spinup_s

    def test_default_threshold_is_breakeven(self, small_config):
        trace = make_trace([0.0])
        policy = TpmPolicy()
        ArraySimulation(trace, small_config, policy).run()
        assert policy.threshold_s == pytest.approx(breakeven_seconds(small_config.spec))

    def test_threshold_multiple(self, small_config):
        trace = make_trace([0.0])
        policy = TpmPolicy(TpmConfig(threshold_multiple=2.0))
        ArraySimulation(trace, small_config, policy).run()
        assert policy.threshold_s == pytest.approx(2 * breakeven_seconds(small_config.spec))

    def test_describe(self, small_config):
        policy = TpmPolicy(TpmConfig(threshold_s=30.0))
        ArraySimulation(make_trace([0.0]), small_config, policy).run()
        assert "30.0" in policy.describe()
