"""Unit tests for the utilization-based setter and adaptive epochs."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.core.response_model import MG1ResponseModel
from repro.core.speed_setting import solve_utilization_assignment
from repro.disks.mechanics import DiskMechanics
from repro.disks.specs import ultrastar_36z15
from repro.sim.runner import ArraySimulation
from repro.traces.tracestats import per_extent_rates
from tests.conftest import poisson_trace


@pytest.fixture
def model():
    return MG1ResponseModel(DiskMechanics(ultrastar_36z15()), mean_request_bytes=4096)


class TestUtilizationSetter:
    def solve(self, total_rate, model, target=0.6, num_disks=4):
        spec = ultrastar_36z15()
        heat = np.full(80, total_rate / 80)
        return solve_utilization_assignment(
            heat, num_disks, model, spec, 3600.0, util_target=target
        )

    def test_light_load_slowest_speed(self, model):
        a = self.solve(4.0, model)
        assert a.counts[-1] == 4  # all at 3000 rpm
        assert a.feasible

    def test_heavy_load_full_speed(self, model):
        # Per-disk rate high enough that only full speed meets the target.
        heavy = 0.59 * 4 / model.moments(15000).mean
        a = self.solve(heavy, model)
        assert a.counts[0] == 4

    def test_single_uniform_tier_always(self, model):
        for rate in (1.0, 40.0, 200.0):
            a = self.solve(rate, model)
            assert sum(1 for c in a.counts if c > 0) == 1

    def test_target_controls_choice(self, model):
        lax = self.solve(100.0, model, target=0.9)
        strict = self.solve(100.0, model, target=0.2)
        lax_rpm = [r for r, c in zip(lax.speeds_desc, lax.counts) if c][0]
        strict_rpm = [r for r, c in zip(strict.speeds_desc, strict.counts) if c][0]
        assert strict_rpm >= lax_rpm

    def test_overload_falls_back_to_fastest(self, model):
        saturating = 2.0 * 4 / model.moments(15000).mean
        a = self.solve(saturating, model)
        assert a.counts[0] == 4
        assert not a.feasible

    def test_validation(self, model):
        spec = ultrastar_36z15()
        with pytest.raises(ValueError):
            solve_utilization_assignment(np.ones(4), 4, model, spec, 3600.0, util_target=1.5)
        with pytest.raises(ValueError):
            solve_utilization_assignment(np.array([]), 4, model, spec, 3600.0)
        with pytest.raises(ValueError):
            solve_utilization_assignment(np.ones(4), 0, model, spec, 3600.0)

    def test_hibernator_with_utilization_setter_runs(self, small_config):
        trace = poisson_trace(rate=30.0, duration=300.0, seed=63)
        config = HibernatorConfig(
            epoch_seconds=100.0,
            speed_setter="utilization",
            prime_rates=per_extent_rates(trace),
        )
        policy = HibernatorPolicy(config)
        result = ArraySimulation(trace, small_config, policy, goal_s=0.05).run()
        assert result.num_requests == len(trace)
        # Uniform configurations only.
        for record in policy.epochs:
            assert "+" not in record.configuration

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HibernatorConfig(speed_setter="psychic")
        with pytest.raises(ValueError):
            HibernatorConfig(util_target=0.0)


class TestAdaptiveEpochs:
    def test_epoch_grows_when_stable(self, small_config):
        trace = poisson_trace(rate=30.0, duration=1600.0, seed=64)
        config = HibernatorConfig(
            epoch_seconds=100.0,
            adaptive_epochs=True,
            max_epoch_multiple=8.0,
            prime_rates=per_extent_rates(trace),
        )
        policy = HibernatorPolicy(config)
        result = ArraySimulation(trace, small_config, policy, goal_s=0.05).run()
        # On a steady workload the configuration stabilizes and the
        # epoch stretches.
        assert result.extras["final_epoch_s"] > 100.0
        assert result.extras["final_epoch_s"] <= 800.0
        # Fewer boundaries than the fixed-epoch run would have had.
        assert result.extras["epochs"] < 1600.0 / 100.0

    def test_epoch_cap_respected(self, small_config):
        trace = poisson_trace(rate=30.0, duration=3200.0, seed=65)
        config = HibernatorConfig(
            epoch_seconds=50.0,
            adaptive_epochs=True,
            max_epoch_multiple=4.0,
            prime_rates=per_extent_rates(trace),
        )
        policy = HibernatorPolicy(config)
        result = ArraySimulation(trace, small_config, policy, goal_s=0.05).run()
        assert result.extras["final_epoch_s"] <= 200.0

    def test_fixed_epochs_by_default(self, small_config):
        trace = poisson_trace(rate=30.0, duration=500.0, seed=66)
        config = HibernatorConfig(epoch_seconds=100.0,
                                  prime_rates=per_extent_rates(trace))
        policy = HibernatorPolicy(config)
        result = ArraySimulation(trace, small_config, policy, goal_s=0.05).run()
        assert result.extras["final_epoch_s"] == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HibernatorConfig(max_epoch_multiple=0.5)
