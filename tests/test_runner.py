"""Unit tests for the simulation runner."""

from __future__ import annotations

import json
import math

import pytest

from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.runner import ArraySimulation
from tests.conftest import make_trace, poisson_trace


def test_all_requests_complete(small_config):
    trace = poisson_trace(rate=20.0, duration=30.0, seed=30)
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert result.num_requests == len(trace)


def test_single_shot(small_config):
    sim = ArraySimulation(make_trace([0.0]), small_config, AlwaysOnPolicy())
    sim.run()
    with pytest.raises(RuntimeError):
        sim.run()


def test_energy_window_covers_trace_duration(small_config):
    """A lone early request must not shrink the accounting window below
    the trace's nominal duration."""
    trace = make_trace([0.0, 100.0], extents=[0, 0])
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert result.sim_end >= 100.0
    idle_watts = small_config.spec.idle_watts(15000)
    assert result.energy_joules == pytest.approx(
        4 * idle_watts * result.sim_end, rel=0.01
    )


def test_lingering_timers_do_not_stretch_the_window(small_config):
    """Policies may have periodic events scheduled past the last
    completion; the run must end at drain, not at the last timer."""

    class NoisyPolicy(AlwaysOnPolicy):
        def attach(self, sim):
            super().attach(sim)
            def tick():
                sim.engine.schedule_after(50.0, tick)
            sim.engine.schedule_after(50.0, tick)

    trace = make_trace([0.0, 10.0], extents=[0, 1])
    result = ArraySimulation(trace, small_config, NoisyPolicy()).run()
    assert result.sim_end == pytest.approx(10.0, abs=1.0)


def test_goal_recorded(small_config):
    trace = make_trace([0.0])
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy(), goal_s=0.02).run()
    assert result.goal_s == 0.02
    assert result.cumulative_avg_vs_goal is not None
    assert result.meets_goal


def test_no_goal(small_config):
    result = ArraySimulation(make_trace([0.0]), small_config, AlwaysOnPolicy()).run()
    assert result.goal_s is None
    assert result.cumulative_avg_vs_goal is None
    assert result.meets_goal


def test_latency_windows_collected(small_config):
    trace = poisson_trace(rate=20.0, duration=50.0, seed=31)
    result = ArraySimulation(
        trace, small_config, AlwaysOnPolicy(), window_s=10.0
    ).run()
    assert len(result.latency_windows) >= 5
    total = sum(n for _, _, n in result.latency_windows)
    assert total == result.num_requests


def test_speed_samples_collected(small_config):
    trace = poisson_trace(rate=20.0, duration=50.0, seed=31)
    result = ArraySimulation(
        trace, small_config, AlwaysOnPolicy(), window_s=10.0
    ).run()
    assert len(result.speed_samples) >= 5
    for _, mean_rpm, spinning in result.speed_samples:
        assert mean_rpm == 15000.0
        assert spinning == 4


def test_time_series_cover_the_accounting_window(small_config):
    """Regression: the sampler stops rescheduling at drain, so a final
    sample at ``sim_end`` must be emitted explicitly or the speed/power
    timelines end one window before the energy accounting does."""
    trace = poisson_trace(rate=20.0, duration=50.0, seed=31)
    result = ArraySimulation(
        trace, small_config, AlwaysOnPolicy(), window_s=10.0
    ).run()
    assert result.speed_samples[-1][0] == result.sim_end
    assert result.power_samples[-1][0] == result.sim_end
    assert len(result.speed_samples) == len(result.power_samples)
    # Samples stay time-ordered and within the window.
    times = [t for t, _, _ in result.speed_samples]
    assert times == sorted(times)
    assert times[-1] <= result.sim_end


def test_terminal_sample_not_duplicated_on_empty_trace(small_config):
    from repro.traces.model import TraceBuilder

    trace = TraceBuilder("empty", small_config.num_extents).build()
    result = ArraySimulation(
        trace, small_config, AlwaysOnPolicy(), window_s=10.0
    ).run()
    # One sample at t=0 from the initial sampler tick; sim_end is 0.0 so
    # no extra terminal sample may be appended on top of it.
    assert result.sim_end == 0.0
    assert len(result.speed_samples) == 1


def test_keep_latency_samples_false(small_config):
    trace = poisson_trace(rate=20.0, duration=20.0, seed=32)
    result = ArraySimulation(
        trace, small_config, AlwaysOnPolicy(), keep_latency_samples=False
    ).run()
    assert result.mean_response_s > 0
    # Percentiles are unavailable without retained samples; they must be
    # NaN, not a 0.0 that reads like a real (impossibly good) percentile.
    assert math.isnan(result.p95_response_s)
    assert math.isnan(result.p99_response_s)


def test_unavailable_percentiles_export_as_null(small_config):
    from repro.analysis.export import result_to_dict

    trace = poisson_trace(rate=20.0, duration=10.0, seed=32)
    result = ArraySimulation(
        trace, small_config, AlwaysOnPolicy(), keep_latency_samples=False
    ).run()
    exported = result_to_dict(result)
    assert exported["p95_response_s"] is None
    assert exported["p99_response_s"] is None
    # The whole payload must stay strictly JSON-encodable.
    json.dumps(exported, allow_nan=False)


def test_percentiles_ordered(small_config):
    trace = poisson_trace(rate=40.0, duration=60.0, seed=33)
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert (result.mean_response_s
            <= result.p95_response_s
            <= result.p99_response_s
            <= result.max_response_s)


def test_energy_savings_vs(small_config):
    trace = poisson_trace(rate=20.0, duration=30.0, seed=34)
    a = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    b = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert a.energy_savings_vs(b) == pytest.approx(0.0, abs=1e-9)


def test_mean_power(small_config):
    trace = make_trace([0.0, 100.0], extents=[0, 0])
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    expected = 4 * small_config.spec.idle_watts(15000)
    assert result.mean_power_watts == pytest.approx(expected, rel=0.01)


def test_empty_trace_runs(small_config):
    from repro.traces.model import TraceBuilder

    trace = TraceBuilder("empty", small_config.num_extents).build()
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert result.num_requests == 0
    assert result.mean_response_s == 0.0


class _CountingPolicy(AlwaysOnPolicy):
    """Tracks outstanding requests the way goal-aware policies do."""

    def attach(self, sim):
        super().attach(sim)
        self.arrived = 0
        self.completed = 0
        self.failed_seen = 0

    def on_request_arrival(self, request):
        self.arrived += 1

    def on_request_complete(self, request):
        self.completed += 1
        if request.failed:
            self.failed_seen += 1


def test_failed_requests_still_notify_policy(small_config):
    """Regression: failed (degraded-mode) requests must reach
    on_request_complete or outstanding-request accounting leaks."""
    trace = poisson_trace(rate=20.0, duration=20.0, seed=35)
    policy = _CountingPolicy()
    sim = ArraySimulation(trace, small_config, policy)
    sim.array.fail_disk(0)  # no RAID: requests on disk 0 fail
    result = sim.run()
    assert result.failed_requests > 0
    assert policy.failed_seen == result.failed_requests
    assert policy.completed == policy.arrived  # nothing leaks
    # Failed requests carry no latency and stay out of the statistics.
    assert result.num_requests == policy.completed - result.failed_requests


def test_runtime_instrumentation_in_extras(small_config):
    trace = poisson_trace(rate=20.0, duration=10.0, seed=36)
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert result.extras["runtime_events"] > 0
    assert result.extras["runtime_wall_s"] > 0
    assert result.extras["runtime_events_per_s"] > 0


def test_zero_disk_config_rejected_at_construction(spec):
    from repro.disks.array import ArrayConfig

    with pytest.raises(ValueError, match="num_disks must be >= 1"):
        ArrayConfig(num_disks=0, spec=spec, num_extents=80)
    with pytest.raises(ValueError, match="num_extents must be >= 1"):
        ArrayConfig(num_disks=4, spec=spec, num_extents=0)
