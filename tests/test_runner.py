"""Unit tests for the simulation runner."""

from __future__ import annotations

import pytest

from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.runner import ArraySimulation
from tests.conftest import make_trace, poisson_trace


def test_all_requests_complete(small_config):
    trace = poisson_trace(rate=20.0, duration=30.0, seed=30)
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert result.num_requests == len(trace)


def test_single_shot(small_config):
    sim = ArraySimulation(make_trace([0.0]), small_config, AlwaysOnPolicy())
    sim.run()
    with pytest.raises(RuntimeError):
        sim.run()


def test_energy_window_covers_trace_duration(small_config):
    """A lone early request must not shrink the accounting window below
    the trace's nominal duration."""
    trace = make_trace([0.0, 100.0], extents=[0, 0])
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert result.sim_end >= 100.0
    idle_watts = small_config.spec.idle_watts(15000)
    assert result.energy_joules == pytest.approx(
        4 * idle_watts * result.sim_end, rel=0.01
    )


def test_lingering_timers_do_not_stretch_the_window(small_config):
    """Policies may have periodic events scheduled past the last
    completion; the run must end at drain, not at the last timer."""

    class NoisyPolicy(AlwaysOnPolicy):
        def attach(self, sim):
            super().attach(sim)
            def tick():
                sim.engine.schedule_after(50.0, tick)
            sim.engine.schedule_after(50.0, tick)

    trace = make_trace([0.0, 10.0], extents=[0, 1])
    result = ArraySimulation(trace, small_config, NoisyPolicy()).run()
    assert result.sim_end == pytest.approx(10.0, abs=1.0)


def test_goal_recorded(small_config):
    trace = make_trace([0.0])
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy(), goal_s=0.02).run()
    assert result.goal_s == 0.02
    assert result.cumulative_avg_vs_goal is not None
    assert result.meets_goal


def test_no_goal(small_config):
    result = ArraySimulation(make_trace([0.0]), small_config, AlwaysOnPolicy()).run()
    assert result.goal_s is None
    assert result.cumulative_avg_vs_goal is None
    assert result.meets_goal


def test_latency_windows_collected(small_config):
    trace = poisson_trace(rate=20.0, duration=50.0, seed=31)
    result = ArraySimulation(
        trace, small_config, AlwaysOnPolicy(), window_s=10.0
    ).run()
    assert len(result.latency_windows) >= 5
    total = sum(n for _, _, n in result.latency_windows)
    assert total == result.num_requests


def test_speed_samples_collected(small_config):
    trace = poisson_trace(rate=20.0, duration=50.0, seed=31)
    result = ArraySimulation(
        trace, small_config, AlwaysOnPolicy(), window_s=10.0
    ).run()
    assert len(result.speed_samples) >= 5
    for _, mean_rpm, spinning in result.speed_samples:
        assert mean_rpm == 15000.0
        assert spinning == 4


def test_keep_latency_samples_false(small_config):
    trace = poisson_trace(rate=20.0, duration=20.0, seed=32)
    result = ArraySimulation(
        trace, small_config, AlwaysOnPolicy(), keep_latency_samples=False
    ).run()
    assert result.mean_response_s > 0
    assert result.p95_response_s == 0.0  # percentiles unavailable


def test_percentiles_ordered(small_config):
    trace = poisson_trace(rate=40.0, duration=60.0, seed=33)
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert (result.mean_response_s
            <= result.p95_response_s
            <= result.p99_response_s
            <= result.max_response_s)


def test_energy_savings_vs(small_config):
    trace = poisson_trace(rate=20.0, duration=30.0, seed=34)
    a = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    b = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert a.energy_savings_vs(b) == pytest.approx(0.0, abs=1e-9)


def test_mean_power(small_config):
    trace = make_trace([0.0, 100.0], extents=[0, 0])
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    expected = 4 * small_config.spec.idle_watts(15000)
    assert result.mean_power_watts == pytest.approx(expected, rel=0.01)


def test_empty_trace_runs(small_config):
    from repro.traces.model import TraceBuilder

    trace = TraceBuilder("empty", small_config.num_extents).build()
    result = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    assert result.num_requests == 0
    assert result.mean_response_s == 0.0
