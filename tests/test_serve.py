"""Tests for the serve layer (repro.serve) and the incremental runner API.

The contracts pinned here:

1. **replay identity** — a quiet ``--accel 0`` replay through the daemon
   executes the exact event sequence of the batch runner and produces a
   byte-identical result digest (the acceptance bar in docs/serve.md);
2. **online control** — mid-run ``set-goal`` / ``inject-fault`` /
   ``force-boost`` over the control socket actually change the running
   simulation, and each emits its paired audit event;
3. **graceful shutdown** — ``shutdown`` drains in-flight requests and
   finalizes the accounting; the streamed JSONL trace is strict JSON and
   line-complete;
4. **incremental stepping** — ``begin()/step()/finalize()`` compose to
   exactly ``run()``, with single-shot guards and working
   ``inject_request`` / ``set_goal`` / ``inject_faults`` hooks.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis.experiments import run_single
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.faults.plan import FaultPlan, TransientFault, fault_plan_from_dict, shift_fault_plan
from repro.perf.digest import result_digest
from repro.policies.always_on import AlwaysOnPolicy
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon, run_replay_quiet
from repro.sim.request import IoKind
from repro.sim.runner import ArraySimulation
from repro.traces.model import TraceBuilder
from tests.conftest import poisson_trace


def hibernator_policy(epoch_s: float = 30.0) -> HibernatorPolicy:
    return HibernatorPolicy(HibernatorConfig(epoch_seconds=epoch_s))


def build_sim(small_config, *, goal_s=0.2, observe=False, live=False,
              trace=None, policy=None):
    if trace is None:
        trace = (TraceBuilder("live", num_extents=80).build() if live
                 else poisson_trace(rate=30.0, duration=90.0, seed=11))
    if policy is None:
        policy = hibernator_policy()
    return ArraySimulation(trace, small_config, policy, goal_s=goal_s,
                           observe=observe, live=live)


class ServeThread:
    """Run a daemon on a background thread; join on exit."""

    def __init__(self, daemon: ServeDaemon) -> None:
        self.daemon = daemon
        self.result = None
        self.error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            self.result = self.daemon.serve()
        except BaseException as exc:  # surfaced in join()
            self.error = exc

    def __enter__(self) -> "ServeThread":
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        # Fail-safe: a test assertion that fires before the shutdown
        # command would otherwise leave the daemon looping forever.
        self.daemon._shutdown = True
        self._thread.join(timeout=30.0)
        if self._thread.is_alive():
            raise RuntimeError("serve daemon did not exit")
        if self.error is not None and exc == (None, None, None):
            raise self.error


def serving(small_config, tmp_path, *, accel=200.0, goal_s=0.2,
            observe=False, live=False, trace_out=None):
    """Daemon on a thread + connected client, as a context-manager pair."""
    sim = build_sim(small_config, goal_s=goal_s, observe=observe, live=live)
    daemon = ServeDaemon(
        sim, tmp_path / "ctl.sock",
        accel=accel,
        ingest_path=(tmp_path / "feed.sock") if live else None,
        trace_out=trace_out,
        install_signal_handlers=False,
    )
    return sim, daemon


class TestReplayIdentity:
    def test_quiet_replay_matches_batch_digest(self, small_config, tmp_path):
        trace = poisson_trace(rate=30.0, duration=120.0, seed=11)
        batch = run_single(trace, small_config, hibernator_policy(),
                           goal_s=0.2, observe=True)
        sim = ArraySimulation(trace, small_config, hibernator_policy(),
                              goal_s=0.2, observe=True)
        served = run_replay_quiet(sim, tmp_path / "ctl.sock")
        assert result_digest(served) == result_digest(batch)
        assert served.events == batch.events

    def test_quiet_replay_matches_batch_without_goal(self, small_config, tmp_path):
        trace = poisson_trace(rate=40.0, duration=60.0, seed=5)
        batch = run_single(trace, small_config, AlwaysOnPolicy())
        sim = ArraySimulation(trace, small_config, AlwaysOnPolicy())
        served = run_replay_quiet(sim, tmp_path / "ctl.sock")
        assert result_digest(served) == result_digest(batch)

    def test_streamed_trace_is_strict_json(self, small_config, tmp_path):
        out = tmp_path / "events.jsonl"
        sim = build_sim(small_config, observe=True)
        run_replay_quiet(sim, tmp_path / "ctl.sock", trace_out=out)

        def reject(const):
            raise ValueError(f"non-strict literal {const!r}")

        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line, parse_constant=reject)
        assert json.loads(lines[0])["event"] == "run_start"
        assert json.loads(lines[-1])["event"] == "run_end"


class TestControlProtocol:
    def test_ping_status_round_trip(self, small_config, tmp_path):
        sim, daemon = serving(small_config, tmp_path)
        with ServeThread(daemon):
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                assert client.ping() == {"pong": True,
                                         "version": protocol.PROTOCOL_VERSION}
                status = client.status()
                assert status["mode"] == "replay"
                assert status["policy"] == "Hibernator"
                assert status["goal_s"] == 0.2
                assert status["trace_remaining"] >= 0
                assert "sim" in status["metrics"] and "policy" in status["metrics"]
                client.shutdown()

    def test_unknown_and_malformed_commands_rejected(self, small_config, tmp_path):
        sim, daemon = serving(small_config, tmp_path)
        with ServeThread(daemon):
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                bad = client.request({"cmd": "explode"})
                assert bad["ok"] is False and "unknown command" in bad["error"]
                with pytest.raises(protocol.ProtocolError):
                    client.command("set-goal")  # missing goal_s
                # The daemon survives garbage and keeps serving.
                assert client.ping()["pong"] is True
                client.shutdown()

    def test_set_goal_mid_run_changes_deficit_tracking(self, small_config, tmp_path):
        sim, daemon = serving(small_config, tmp_path, observe=True)
        with ServeThread(daemon) as st:
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                changed = client.set_goal(0.05)
                assert changed == {"old_goal_s": 0.2, "goal_s": 0.05}
                assert client.status()["goal_s"] == 0.05
                cleared = client.set_goal(None)
                assert cleared == {"old_goal_s": 0.05, "goal_s": None}
                client.shutdown()
        kinds = [e.kind for e in st.result.events]
        assert kinds.count("serve_goal_changed") == 2
        assert st.result.goal_s is None

    def test_set_goal_creates_boost_machinery_from_none(self, small_config, tmp_path):
        sim, daemon = serving(small_config, tmp_path, goal_s=None)
        with ServeThread(daemon):
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                assert sim.policy.boost is None
                client.set_goal(0.1)
                assert sim.deficit is not None
                assert sim.policy.boost is not None
                client.shutdown()

    def test_force_boost(self, small_config, tmp_path):
        sim, daemon = serving(small_config, tmp_path, observe=True)
        with ServeThread(daemon) as st:
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                first = client.force_boost()
                assert first == {"entered": True}
                # Already boosted: a second force is a no-op, not an error.
                assert client.force_boost() == {"entered": False}
                client.shutdown()
        assert "serve_boost_forced" in [e.kind for e in st.result.events]
        assert st.result.extras.get("boosts", 0) >= 1

    def test_inject_fault_mid_run(self, small_config, tmp_path):
        sim, daemon = serving(small_config, tmp_path, observe=True)
        plan = {"seed": 5, "retry": {"max_attempts": 4, "backoff_s": 0.002},
                "transient_faults": [
                    {"start_s": 0.0, "end_s": 30.0, "probability": 0.5,
                     "disks": [0, 1]}]}
        with ServeThread(daemon) as st:
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                injected = client.inject_fault(plan)
                assert injected["transient_faults"] == 1
                client.shutdown()
        kinds = [e.kind for e in st.result.events]
        assert "serve_fault_injected" in kinds
        # The fault-run extras only appear when an injector was installed.
        assert "fault_op_errors" in st.result.extras

    def test_empty_plan_rejected(self, small_config, tmp_path):
        sim, daemon = serving(small_config, tmp_path)
        with ServeThread(daemon):
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                with pytest.raises(protocol.ProtocolError, match="injects nothing"):
                    client.inject_fault({"seed": 1})
                client.shutdown()


class TestShutdownDrains:
    def test_shutdown_drains_in_flight_and_finalizes(self, small_config, tmp_path):
        # A tiny accel keeps nearly the whole trace unserved at shutdown
        # time, so the drain path has real in-flight work to finish.
        sim, daemon = serving(small_config, tmp_path, accel=5.0)
        with ServeThread(daemon) as st:
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                client.shutdown()
        result = st.result
        assert result is not None
        assert sim.outstanding == 0
        assert result.num_requests == sim.latency.n
        # run_end bookkeeping happened: energy covers the full window.
        assert result.sim_end > 0 and result.energy_joules > 0

    def test_trace_file_line_complete_after_shutdown(self, small_config, tmp_path):
        out = tmp_path / "events.jsonl"
        sim, daemon = serving(small_config, tmp_path, accel=50.0,
                              observe=True, trace_out=out)
        with ServeThread(daemon) as st:
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                client.set_goal(0.1)
                client.shutdown()
        payload = [json.loads(line) for line in out.read_text().splitlines()]
        assert payload[0]["event"] == "run_start"
        assert payload[-1]["event"] == "run_end"
        assert any(p["event"] == "serve_goal_changed" for p in payload)
        assert len(payload) == len(st.result.events)


class TestLiveMode:
    def test_ingest_and_graceful_end(self, small_config, tmp_path):
        sim, daemon = serving(small_config, tmp_path, accel=500.0, live=True)
        with ServeThread(daemon) as st:
            with ServeClient.connect(tmp_path / "feed.sock") as feed:
                for i in range(10):
                    reply = feed.request({"kind": "read", "extent": i, "size": 4096})
                    assert reply["ok"] is True, reply
                    assert reply["data"]["req_id"] == i
                bad = feed.request({"kind": "read", "extent": 10_000})
                assert bad["ok"] is False and "extent" in bad["error"]
            with ServeClient.connect(tmp_path / "ctl.sock") as client:
                status = client.status()
                assert status["mode"] == "live" and status["ingested"] == 10
                client.shutdown()
        assert st.result.num_requests == 10
        assert daemon.ingest_errors == 1

    def test_live_mode_validation(self, small_config, tmp_path):
        live_sim = build_sim(small_config, live=True)
        with pytest.raises(ValueError, match="accel > 0"):
            ServeDaemon(live_sim, tmp_path / "c.sock", accel=0.0,
                        ingest_path=tmp_path / "f.sock")
        with pytest.raises(ValueError, match="ingest"):
            ServeDaemon(live_sim, tmp_path / "c.sock", accel=10.0)
        with pytest.raises(ValueError, match=">= 0"):
            ServeDaemon(build_sim(small_config), tmp_path / "c.sock", accel=-1.0)


class TestIncrementalRunner:
    def test_begin_step_finalize_equals_run(self, small_config):
        trace = poisson_trace(rate=30.0, duration=60.0, seed=9)
        batch = run_single(trace, small_config, hibernator_policy(), goal_s=0.2)
        sim = ArraySimulation(trace, small_config, hibernator_policy(), goal_s=0.2)
        sim.begin()
        while sim.step(max_events=512):
            pass
        stepped = sim.finalize()
        assert result_digest(stepped) == result_digest(batch)

    def test_single_shot_guards(self, small_config):
        sim = build_sim(small_config)
        sim.begin()
        with pytest.raises(RuntimeError, match="single-shot"):
            sim.begin()
        while sim.step(max_events=4096):
            pass
        sim.finalize()
        with pytest.raises(RuntimeError, match="single-shot"):
            sim.finalize()
        fresh = build_sim(small_config)
        with pytest.raises(RuntimeError, match="before begin"):
            fresh.finalize()

    def test_step_after_drain_is_noop(self, small_config):
        sim = build_sim(small_config)
        sim.begin()
        while sim.step(max_events=4096):
            pass
        assert sim.drain_complete
        assert sim.step(max_events=128) == 0

    def test_inject_request_validation(self, small_config):
        sim = build_sim(small_config, live=True)
        sim.begin()
        req = sim.inject_request(kind=IoKind.READ, extent=3)
        assert req == 0
        with pytest.raises(ValueError):
            sim.inject_request(kind=IoKind.READ, extent=99999)
        with pytest.raises(ValueError):
            sim.inject_request(kind=IoKind.READ, extent=0, size=0)
        sim.halt_arrivals()
        with pytest.raises(RuntimeError, match="halted"):
            sim.inject_request(kind=IoKind.READ, extent=0)

    def test_set_goal_validation(self, small_config):
        sim = build_sim(small_config)
        sim.begin()
        with pytest.raises(ValueError):
            sim.set_goal(-1.0)
        sim.set_goal(0.5)
        assert sim.goal_s == 0.5 and sim.deficit is not None
        sim.set_goal(None)
        assert sim.goal_s is None and sim.deficit is None


class TestFaultPlanShifting:
    def test_shift_rebases_all_times(self):
        plan = fault_plan_from_dict({
            "seed": 3,
            "disk_failures": [{"time_s": 5.0, "disk": 0}],
            "transient_faults": [
                {"start_s": 1.0, "end_s": 4.0, "probability": 0.2}],
            "slow_disk_faults": [
                {"start_s": 2.0, "end_s": 6.0, "factor": 3.0}],
        })
        shifted = shift_fault_plan(plan, 100.0)
        assert shifted.disk_failures[0].time_s == 105.0
        assert (shifted.transient_faults[0].start_s,
                shifted.transient_faults[0].end_s) == (101.0, 104.0)
        assert (shifted.slow_disk_faults[0].start_s,
                shifted.slow_disk_faults[0].end_s) == (102.0, 106.0)
        # Zero offset and empty plans pass through untouched.
        assert shift_fault_plan(plan, 0.0) is plan
        empty = FaultPlan()
        assert shift_fault_plan(empty, 50.0) is empty
        with pytest.raises(ValueError):
            shift_fault_plan(plan, -1.0)

    def test_runtime_injection_rejects_past_times(self, small_config):
        sim = build_sim(small_config)
        sim.begin()
        sim.step(max_events=2000)
        now = sim.engine.now
        assert now > 0
        past = fault_plan_from_dict(
            {"disk_failures": [{"time_s": now / 2, "disk": 0}]})
        with pytest.raises(ValueError, match="past"):
            sim.inject_faults(past)
        # Transient windows already partly elapsed are fine: the injector
        # only consults them per-op against the current clock.
        stale = FaultPlan(transient_faults=(
            TransientFault(start_s=0.0, end_s=now / 2, probability=0.1),))
        sim.inject_faults(stale)
