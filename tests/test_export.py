"""Tests for result export (JSON/CSV) and the CLI output flags."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.analysis.experiments import run_comparison, run_single
from repro.analysis.export import (
    comparison_to_dict,
    result_to_dict,
    write_comparison_csv,
    write_json,
)
from repro.cli import main
from repro.core.hibernator import HibernatorConfig
from repro.policies.always_on import AlwaysOnPolicy
from tests.conftest import poisson_trace


@pytest.fixture(scope="module")
def result():
    from repro.disks.array import ArrayConfig
    from repro.disks.specs import make_multispeed_spec

    config = ArrayConfig(num_disks=4, spec=make_multispeed_spec(5),
                         num_extents=80, deterministic_latency=True, seed=7)
    trace = poisson_trace(rate=20.0, duration=30.0, seed=70)
    return run_single(trace, config, AlwaysOnPolicy(), goal_s=0.02, window_s=10.0)


def test_result_to_dict_is_json_safe(result):
    data = result_to_dict(result)
    text = json.dumps(data)  # raises on non-serializable content
    round_tripped = json.loads(text)
    assert round_tripped["policy"] == "Base"
    assert round_tripped["num_requests"] == result.num_requests
    assert round_tripped["meets_goal"] is True
    assert "latency_windows" not in round_tripped


def test_result_to_dict_series(result):
    data = result_to_dict(result, include_series=True)
    assert data["latency_windows"]
    assert data["speed_samples"]
    assert data["power_samples"]
    json.dumps(data)


def test_write_json_to_path(result, tmp_path):
    path = tmp_path / "out.json"
    write_json(result_to_dict(result), path)
    assert json.loads(path.read_text())["policy"] == "Base"


def test_write_json_to_stream(result):
    buf = io.StringIO()
    write_json(result_to_dict(result), buf)
    assert json.loads(buf.getvalue())["policy"] == "Base"


def test_write_json_sanitizes_nested_nan():
    # extras gauges (and anything else result_to_dict passes through
    # whole) can carry NaN/inf; the writer must emit null, never a bare
    # NaN literal that strict parsers reject.
    data = {
        "extras": {"window_mean": float("nan"), "peak": float("inf")},
        "series": [1.0, float("nan"), [float("-inf")]],
        "fine": 2.5,
    }
    buf = io.StringIO()
    write_json(data, buf)
    text = buf.getvalue()
    assert "NaN" not in text and "Infinity" not in text

    def reject(const):
        raise ValueError(f"non-strict literal {const!r}")

    back = json.loads(text, parse_constant=reject)
    assert back["extras"] == {"window_mean": None, "peak": None}
    assert back["series"] == [1.0, None, [None]]
    assert back["fine"] == 2.5


class TestComparisonExport:
    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.analysis.experiments import default_array_config

        trace = poisson_trace(rate=20.0, duration=60.0, seed=71)
        config = default_array_config(num_disks=4, num_extents=80, seed=7)
        return run_comparison(trace, config, slack=2.0,
                              hibernator_config=HibernatorConfig(epoch_seconds=30.0))

    def test_comparison_to_dict(self, comparison):
        data = comparison_to_dict(comparison)
        json.dumps(data)
        assert set(data["schemes"]) == {"Base", "TPM", "DRPM", "PDC", "MAID", "Hibernator"}
        assert data["schemes"]["Base"]["energy_savings_vs_base"] == pytest.approx(0.0)

    def test_write_csv(self, comparison, tmp_path):
        path = tmp_path / "cmp.csv"
        write_comparison_csv(comparison, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 6
        assert {r["policy"] for r in rows} == {"Base", "TPM", "DRPM", "PDC",
                                               "MAID", "Hibernator"}
        for row in rows:
            float(row["energy_joules"])  # numeric


class TestCliOutputs:
    def test_run_json(self, capsys):
        assert main(["run", "--kind", "synthetic", "--duration", "20",
                     "--rate", "20", "--extents", "40", "--policy", "base",
                     "--disks", "4", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["policy"] == "Base"

    def test_compare_csv(self, tmp_path, capsys):
        out = tmp_path / "cmp.csv"
        assert main(["compare", "--kind", "synthetic", "--duration", "30",
                     "--rate", "20", "--extents", "40", "--disks", "4",
                     "--epoch", "15", "--csv", str(out)]) == 0
        assert out.exists()
        with open(out) as fh:
            assert len(list(csv.DictReader(fh))) == 6

    def test_compare_json(self, capsys):
        assert main(["compare", "--kind", "synthetic", "--duration", "30",
                     "--rate", "20", "--extents", "40", "--disks", "4",
                     "--epoch", "15", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "schemes" in data
