"""Unit tests for the multi-speed disk state machine."""

from __future__ import annotations

import pytest

from repro.disks.disk import DiskState, MultiSpeedDisk
from repro.disks.specs import ultrastar_36z15
from repro.sim.engine import Engine
from repro.sim.request import DiskOp, IoKind


def make_disk(engine: Engine, initial_rpm: int | None = None, **kwargs) -> MultiSpeedDisk:
    return MultiSpeedDisk(
        engine=engine,
        spec=ultrastar_36z15(),
        index=0,
        total_blocks=100,
        rng=None,  # deterministic latency
        initial_rpm=initial_rpm,
        **kwargs,
    )


def make_op(block: int = 10, size: int = 4096, kind: IoKind = IoKind.READ, on_complete=None) -> DiskOp:
    return DiskOp(
        request=None, kind=kind, disk_index=0, block=block, size=size, on_complete=on_complete
    )


def test_initial_state_full_speed(engine):
    disk = make_disk(engine)
    assert disk.state is DiskState.IDLE
    assert disk.rpm == 15000
    assert disk.is_spinning


def test_initial_standby(engine):
    disk = make_disk(engine, initial_rpm=0)
    assert disk.state is DiskState.STANDBY
    assert not disk.is_spinning


def test_serves_op_and_completes(engine):
    disk = make_disk(engine)
    done = []
    disk.submit(make_op(on_complete=lambda op: done.append(op)))
    engine.run()
    assert len(done) == 1
    op = done[0]
    assert op.started == 0.0
    assert op.finished is not None and op.finished > 0
    assert disk.ops_completed == 1
    assert disk.state is DiskState.IDLE
    assert disk.head_block == 10


def test_service_time_matches_mechanics(engine):
    disk = make_disk(engine)
    done = []
    disk.submit(make_op(block=50, size=4096, on_complete=done.append))
    engine.run()
    expected = disk.mechanics.service_time(0, 50, 100, 4096, 15000)
    assert done[0].service_time == pytest.approx(expected)


def test_fcfs_ordering(engine):
    disk = make_disk(engine)
    finished = []
    for block in (5, 60, 20):
        disk.submit(make_op(block=block, on_complete=lambda op: finished.append(op.block)))
    engine.run()
    assert finished == [5, 60, 20]


def test_queue_length_excludes_in_service(engine):
    disk = make_disk(engine)
    disk.submit(make_op())
    disk.submit(make_op())
    disk.submit(make_op())
    # First op started service immediately; two remain queued.
    assert disk.busy
    assert disk.queue_length == 2


def test_speed_change_when_idle_takes_transition_time(engine):
    disk = make_disk(engine)
    disk.set_speed(3000)
    assert disk.state is DiskState.TRANSITION
    engine.run()
    assert disk.rpm == 3000
    assert disk.state is DiskState.IDLE
    expected_s, _ = disk.spec.transition_cost(15000, 3000)
    assert engine.now == pytest.approx(expected_s)
    assert disk.speed_changes == 1


def test_speed_change_deferred_while_active(engine):
    disk = make_disk(engine)
    disk.submit(make_op())
    disk.set_speed(3000)
    assert disk.rpm == 15000  # not yet
    engine.run()
    assert disk.rpm == 3000


def test_ops_arriving_mid_transition_wait(engine):
    disk = make_disk(engine)
    disk.set_speed(3000)
    done = []
    disk.submit(make_op(on_complete=lambda op: done.append(op)))
    engine.run()
    trans_s, _ = disk.spec.transition_cost(15000, 3000)
    assert done[0].started >= trans_s
    assert done[0].queue_delay >= trans_s


def test_spin_down_and_wake_on_arrival(engine):
    disk = make_disk(engine)
    disk.spin_down()
    engine.run()
    assert disk.state is DiskState.STANDBY
    assert disk.rpm == 0
    done = []
    disk.submit(make_op(on_complete=lambda op: done.append(op)))
    engine.run()
    assert disk.state is DiskState.IDLE
    assert disk.rpm == 15000  # resumes the last requested speed
    assert disk.spinups == 1
    spinup_s, _ = disk.spec.transition_cost(0, 15000)
    assert done[0].queue_delay >= spinup_s


def test_spin_down_ignored_with_queued_work(engine):
    disk = make_disk(engine)
    disk.submit(make_op())
    disk.spin_down()
    engine.run()
    assert disk.state is DiskState.IDLE
    assert disk.rpm == 15000


def test_arrival_during_spin_down_bounces_back(engine):
    disk = make_disk(engine)
    disk.spin_down()
    # Mid-spin-down arrival: must complete the spin-down, then spin up.
    engine.schedule(0.5, lambda: disk.submit(make_op()))
    engine.run()
    assert disk.rpm == 15000
    assert disk.ops_completed == 1
    assert disk.spinups == 1


def test_resume_speed_is_last_requested(engine):
    disk = make_disk(engine)
    disk.set_speed(6000)
    engine.run()
    disk.spin_down()
    engine.run()
    disk.submit(make_op())
    engine.run()
    assert disk.rpm == 6000


def test_speed_request_changed_mid_transition_chains(engine):
    disk = make_disk(engine)
    disk.set_speed(3000)
    disk.set_speed(9000)  # changed mind mid-transition
    engine.run()
    assert disk.rpm == 9000


def test_set_speed_invalid_rpm_raises(engine):
    disk = make_disk(engine)
    with pytest.raises(ValueError):
        disk.set_speed(5000)


def test_energy_idle_only(engine):
    disk = make_disk(engine)
    engine.schedule(100.0, lambda: None)
    engine.run()
    joules = disk.finish_accounting(engine.now)
    assert joules == pytest.approx(100.0 * disk.spec.idle_watts(15000))


def test_energy_standby_cheaper(engine):
    disk_a = make_disk(engine)
    disk_b = make_disk(engine, initial_rpm=0)
    engine.schedule(1000.0, lambda: None)
    engine.run()
    idle_j = disk_a.finish_accounting(engine.now)
    standby_j = disk_b.finish_accounting(engine.now)
    assert standby_j == pytest.approx(1000.0 * 2.5)
    assert standby_j < idle_j / 3


def test_energy_includes_active_premium(engine):
    disk = make_disk(engine)
    disk.submit(make_op(block=50))
    engine.run()
    end = engine.now
    joules = disk.finish_accounting(end)
    idle_only = end * disk.spec.idle_watts(15000)
    service = end  # the whole run was one op's service
    expected_premium = service * disk.spec.seek_watts
    assert joules == pytest.approx(idle_only + expected_premium)


def test_transition_energy_is_lump_sum(engine):
    disk = make_disk(engine)
    disk.set_speed(3000)
    engine.run()
    trans_s, trans_j = disk.spec.transition_cost(15000, 3000)
    joules = disk.finish_accounting(engine.now)
    assert engine.now == pytest.approx(trans_s)
    assert joules == pytest.approx(trans_j)
    assert disk.meter.breakdown.joules["transition"] == pytest.approx(trans_j)


def test_force_speed_instantaneous(engine):
    disk = make_disk(engine)
    disk.force_speed(3000)
    assert disk.rpm == 3000
    assert disk.state is DiskState.IDLE
    assert engine.now == 0.0
    assert disk.speed_changes == 0


def test_force_speed_to_standby(engine):
    disk = make_disk(engine)
    disk.force_speed(0)
    assert disk.state is DiskState.STANDBY


def test_force_speed_after_io_raises(engine):
    disk = make_disk(engine)
    disk.submit(make_op())
    engine.run()
    with pytest.raises(RuntimeError):
        disk.force_speed(3000)


def test_on_idle_callback_fires_after_drain(engine):
    disk = make_disk(engine)
    idles = []
    disk.on_idle = lambda d: idles.append(engine.now)
    disk.submit(make_op())
    disk.submit(make_op())
    engine.run()
    assert len(idles) == 1  # once, when the queue drained


def test_on_activity_callback_fires_on_submit(engine):
    disk = make_disk(engine)
    activity = []
    disk.on_activity = lambda d: activity.append(engine.now)
    disk.submit(make_op())
    assert activity == [0.0]


def test_low_speed_service_slower_end_to_end(engine):
    fast_engine, slow_engine = Engine(), Engine()
    fast = make_disk(fast_engine)
    slow = make_disk(slow_engine, initial_rpm=3000)
    done_f, done_s = [], []
    fast.submit(make_op(block=50, size=65536, on_complete=done_f.append))
    slow.submit(make_op(block=50, size=65536, on_complete=done_s.append))
    fast_engine.run()
    slow_engine.run()
    assert done_s[0].service_time > done_f[0].service_time
