"""Unit tests for trace transformations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.transforms import (
    concat,
    filter_extents,
    remap_extents,
    sample_fraction,
    shift_time,
)
from tests.conftest import make_trace


def test_shift_time():
    trace = make_trace([0.0, 1.0, 2.0])
    shifted = shift_time(trace, 10.0)
    assert list(shifted.times) == [10.0, 11.0, 12.0]
    assert len(shifted) == 3


def test_shift_before_zero_rejected():
    with pytest.raises(ValueError):
        shift_time(make_trace([1.0]), -2.0)


def test_concat_orders_phases():
    a = make_trace([0.0, 5.0], extents=[1, 2])
    b = make_trace([0.0, 3.0], extents=[3, 4])
    merged = concat([a, b], gap_s=2.0)
    assert list(merged.times) == [0.0, 5.0, 7.0, 10.0]
    assert list(merged.extents) == [1, 2, 3, 4]


def test_concat_empty_rejected():
    with pytest.raises(ValueError):
        concat([])


def test_concat_leading_idle_stays_in_component_span():
    """A component whose requests start at t>0 keeps that lead-in inside
    its span: the next component starts at cursor + duration + gap."""
    a = make_trace([0.0, 4.0])
    b = make_trace([3.0, 5.0])  # 3 s of leading idle
    merged = concat([a, b], gap_s=1.0)
    # b's span starts at 4 + 1 = 5, so its requests land at 8 and 10,
    # and a trailing component would start at 5 + 5 + 1 = 11.
    assert list(merged.times) == [0.0, 4.0, 8.0, 10.0]
    c = make_trace([0.0])
    assert list(concat([a, b, c], gap_s=1.0).times)[-1] == 11.0


def test_concat_skips_empty_components():
    """Empty components contribute no span and no gap (identity)."""
    a = make_trace([0.0, 2.0])
    b = make_trace([])
    c = make_trace([0.0, 1.0])
    with_empty = concat([a, b, c], gap_s=5.0)
    without = concat([a, c], gap_s=5.0)
    assert list(with_empty.times) == list(without.times) == [0.0, 2.0, 7.0, 8.0]
    # Leading and trailing empties are identities too.
    assert list(concat([b, a], gap_s=5.0).times) == [0.0, 2.0]
    assert list(concat([a, b], gap_s=5.0).times) == [0.0, 2.0]


def test_concat_all_empty_returns_empty_trace():
    merged = concat([make_trace([]), make_trace([])], gap_s=2.0, name="nothing")
    assert len(merged) == 0
    assert merged.name == "nothing"
    assert merged.num_extents == 80


def test_concat_negative_gap_eats_into_leading_idle():
    # A negative gap may consume a later component's lead-in, as long
    # as the combined times stay non-decreasing.
    a = make_trace([0.0, 4.0])
    b = make_trace([3.0, 5.0])
    merged = concat([a, b], gap_s=-2.0)
    assert list(merged.times) == [0.0, 4.0, 5.0, 7.0]
    # Reordering the timeline is rejected by Trace validation.
    with pytest.raises(ValueError, match="non-decreasing"):
        concat([a, make_trace([0.0, 1.0])], gap_s=-1.0)


def test_concat_takes_widest_address_space():
    a = make_trace([0.0], num_extents=10)
    b = make_trace([0.0], num_extents=40)
    assert concat([a, b]).num_extents == 40


def test_sample_fraction_thins():
    trace = make_trace([float(i) for i in range(1000)])
    thinned = sample_fraction(trace, 0.3, seed=1)
    assert 200 < len(thinned) < 400
    assert np.all(np.diff(thinned.times) >= 0)


def test_sample_fraction_full_keeps_everything():
    trace = make_trace([0.0, 1.0, 2.0])
    assert len(sample_fraction(trace, 1.0, seed=1)) == 3


def test_sample_fraction_validation():
    with pytest.raises(ValueError):
        sample_fraction(make_trace([0.0]), 0.0)


def test_sample_fraction_reproducible():
    trace = make_trace([float(i) for i in range(100)])
    a = sample_fraction(trace, 0.5, seed=7)
    b = sample_fraction(trace, 0.5, seed=7)
    assert np.array_equal(a.times, b.times)


def test_remap_extents():
    trace = make_trace([0.0, 1.0], extents=[2, 5], num_extents=10)
    mapping = np.arange(10)[::-1]  # reverse
    remapped = remap_extents(trace, mapping, num_extents=10)
    assert list(remapped.extents) == [7, 4]


def test_remap_fold_smaller_volume():
    trace = make_trace([0.0, 1.0, 2.0], extents=[0, 5, 9], num_extents=10)
    mapping = np.arange(10) % 4
    folded = remap_extents(trace, mapping, num_extents=4)
    assert folded.num_extents == 4
    assert list(folded.extents) == [0, 1, 1]


def test_remap_validation():
    trace = make_trace([0.0], extents=[0], num_extents=10)
    with pytest.raises(ValueError):
        remap_extents(trace, np.arange(5), num_extents=10)  # too short
    with pytest.raises(ValueError):
        remap_extents(trace, np.full(10, 99), num_extents=10)  # out of range


def test_filter_extents():
    trace = make_trace([0.0, 1.0, 2.0, 3.0], extents=[0, 1, 2, 1], num_extents=10)
    mask = np.zeros(10, dtype=bool)
    mask[1] = True
    filtered = filter_extents(trace, mask)
    assert list(filtered.extents) == [1, 1]
    assert list(filtered.times) == [1.0, 3.0]


def test_filter_mask_shape_validated():
    with pytest.raises(ValueError):
        filter_extents(make_trace([0.0]), np.ones(3, dtype=bool))
