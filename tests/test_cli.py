"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.traces.io import load_trace


def gen(tmp_path, extra=()):
    path = tmp_path / "t.csv"
    code = main([
        "gen-trace", "--kind", "oltp", "--duration", "60", "--rate", "40",
        "--extents", "80", "--seed", "3", "-o", str(path), *extra,
    ])
    assert code == 0
    return path


def test_gen_trace_writes_file(tmp_path, capsys):
    path = gen(tmp_path)
    out = capsys.readouterr().out
    assert "wrote" in out
    trace = load_trace(path)
    assert len(trace) > 0
    assert trace.num_extents == 80


def test_trace_stats(tmp_path, capsys):
    path = gen(tmp_path)
    capsys.readouterr()
    assert main(["trace-stats", str(path)]) == 0
    out = capsys.readouterr().out
    assert "mean rate" in out
    assert "top-10% share" in out


def test_run_base(tmp_path, capsys):
    path = gen(tmp_path)
    capsys.readouterr()
    assert main(["run", "--trace", str(path), "--policy", "base",
                 "--disks", "4"]) == 0
    out = capsys.readouterr().out
    assert "Base" in out
    assert "energy" in out


def test_run_hibernator_with_goal(tmp_path, capsys):
    path = gen(tmp_path)
    capsys.readouterr()
    assert main(["run", "--trace", str(path), "--policy", "hibernator",
                 "--disks", "4", "--slack", "2.0", "--epoch", "30"]) == 0
    out = capsys.readouterr().out
    assert "Hibernator" in out
    assert "goal" in out
    assert "savings" in out


def test_run_every_policy(tmp_path, capsys):
    path = gen(tmp_path)
    for policy in ("tpm", "drpm", "pdc", "maid", "oracle"):
        code = main(["run", "--trace", str(path), "--policy", policy,
                     "--disks", "4", "--epoch", "30"])
        assert code == 0, policy
    out = capsys.readouterr().out
    assert "TPM" in out and "Oracle" in out


def test_run_inline_generation(capsys):
    assert main(["run", "--kind", "synthetic", "--duration", "30",
                 "--rate", "20", "--extents", "40", "--policy", "base",
                 "--disks", "4"]) == 0
    assert "Base" in capsys.readouterr().out


def test_compare(tmp_path, capsys):
    path = gen(tmp_path)
    capsys.readouterr()
    assert main(["compare", "--trace", str(path), "--disks", "4",
                 "--epoch", "30", "--slack", "2.0"]) == 0
    out = capsys.readouterr().out
    for name in ("Base", "TPM", "DRPM", "PDC", "MAID", "Hibernator"):
        assert name in out


def test_sweep_slack(tmp_path, capsys):
    path = gen(tmp_path)
    capsys.readouterr()
    assert main(["sweep-slack", "--trace", str(path), "--disks", "4",
                 "--epoch", "30", "--slacks", "1.5,3.0"]) == 0
    out = capsys.readouterr().out
    assert "savings %" in out
    assert "1.5" in out and "3" in out


def test_sweep_slack_rejects_sub_one(tmp_path):
    path = gen(tmp_path)
    with pytest.raises(SystemExit):
        main(["sweep-slack", "--trace", str(path), "--disks", "4",
              "--slacks", "0.5"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_raid5_and_scheduler_flags(tmp_path, capsys):
    path = gen(tmp_path)
    capsys.readouterr()
    assert main(["run", "--trace", str(path), "--policy", "base",
                 "--disks", "4", "--raid5", "--scheduler", "sstf"]) == 0
    assert "Base" in capsys.readouterr().out


def test_compare_with_jobs_and_cache(tmp_path, capsys):
    path = gen(tmp_path)
    cache_dir = tmp_path / "cache"
    args = ["compare", "--trace", str(path), "--disks", "4", "--epoch", "30",
            "--slack", "2.0", "--jobs", "2", "--cache-dir", str(cache_dir)]
    capsys.readouterr()
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "run cost" in cold
    assert "0 hit(s)" in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "6 hit(s), 0 miss(es)" in warm
    # Identical scheme tables from the cold and warm runs.
    table = lambda out: [l for l in out.splitlines() if l.startswith(("Base", "TPM", "Hibernator"))]
    assert table(cold) == table(warm)


def test_cache_subcommand_stats_and_clear(tmp_path, capsys):
    path = gen(tmp_path)
    cache_dir = tmp_path / "cache"
    assert main(["compare", "--trace", str(path), "--disks", "4", "--epoch", "30",
                 "--cache-dir", str(cache_dir)]) == 0
    capsys.readouterr()
    assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries       6" in out
    assert main(["cache", "--cache-dir", str(cache_dir), "--clear"]) == 0
    assert "removed 6" in capsys.readouterr().out
    assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
    assert "entries       0" in capsys.readouterr().out


def test_sweep_slack_jobs_matches_sequential(tmp_path, capsys):
    path = gen(tmp_path)
    base_args = ["sweep-slack", "--trace", str(path), "--disks", "4",
                 "--epoch", "30", "--slacks", "1.5,3.0"]
    capsys.readouterr()
    assert main(base_args) == 0
    sequential = capsys.readouterr().out
    assert main(base_args + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert sequential == parallel


def test_run_trace_out_and_render(tmp_path, capsys):
    path = gen(tmp_path)
    out_path = tmp_path / "events.jsonl"
    capsys.readouterr()
    assert main(["run", "--trace", str(path), "--policy", "hibernator",
                 "--disks", "4", "--epoch", "30",
                 "--trace-out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert f"trace event(s) to {out_path}" in out
    assert out_path.is_file()

    assert main(["trace", str(out_path)]) == 0
    rendered = capsys.readouterr().out
    assert "epoch decisions" in rendered
    assert "reconciliation" in rendered
    assert "MISMATCH" not in rendered


def test_compare_trace_out_covers_all_schemes(tmp_path, capsys):
    from repro.obs.tracelog import read_jsonl, split_runs

    path = gen(tmp_path)
    out_path = tmp_path / "events.jsonl"
    capsys.readouterr()
    assert main(["compare", "--trace", str(path), "--disks", "4",
                 "--epoch", "30", "--trace-out", str(out_path)]) == 0
    runs = split_runs(read_jsonl(out_path))
    names = [run[0].policy_name for run in runs]
    assert names == ["Base", "TPM", "DRPM", "PDC", "MAID", "Hibernator"]

    capsys.readouterr()
    assert main(["trace", str(out_path)]) == 0
    rendered = capsys.readouterr().out
    for name in names:
        assert f"== {name} " in rendered
    assert "MISMATCH" not in rendered


def test_sweep_slack_trace_out(tmp_path, capsys):
    from repro.obs.tracelog import read_jsonl, split_runs

    path = gen(tmp_path)
    out_path = tmp_path / "events.jsonl"
    capsys.readouterr()
    assert main(["sweep-slack", "--trace", str(path), "--disks", "4",
                 "--epoch", "30", "--slacks", "1.5,3.0",
                 "--trace-out", str(out_path)]) == 0
    runs = split_runs(read_jsonl(out_path))
    # Base plus one Hibernator run per slack value.
    assert len(runs) == 3
    assert runs[0][0].policy_name == "Base"


def test_trace_on_empty_file(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["trace", str(empty)]) == 0
    assert "no events" in capsys.readouterr().out


def test_serve_replay_matches_run(tmp_path, capsys):
    import json

    path = gen(tmp_path)
    capsys.readouterr()
    assert main(["run", "--trace", str(path), "--policy", "hibernator",
                 "--disks", "4", "--epoch", "30", "--json"]) == 0
    batch = json.loads(capsys.readouterr().out)
    events = tmp_path / "served.jsonl"
    # `run` derives its goal from a Base pre-run; hand serve the same
    # goal so the specs are identical, then the results must be too.
    goal_ms = batch["goal_s"] * 1e3
    assert main(["serve", "--replay", str(path), "--policy", "hibernator",
                 "--disks", "4", "--epoch", "30", "--accel", "0",
                 "--goal-ms", repr(goal_ms), "--exit-on-drain",
                 "--control", str(tmp_path / "ctl.sock"),
                 "--trace-out", str(events), "--json"]) == 0
    served = json.loads(capsys.readouterr().out)

    def strip(d):
        return {**d, "extras": {k: v for k, v in d["extras"].items()
                                if not k.startswith("runtime_")}}

    assert strip(batch) == strip(served)
    # The streamed trace renders and reconciles like a batch one.
    capsys.readouterr()
    assert main(["trace", str(events)]) == 0
    assert "MISMATCH" not in capsys.readouterr().out


def test_serve_flag_validation(tmp_path, capsys):
    sock = str(tmp_path / "c.sock")
    assert main(["serve", "--live", "--control", sock]) == 2
    assert main(["serve", "--live", "--ingest", str(tmp_path / "f.sock"),
                 "--control", sock]) == 2  # accel defaults to 0
    assert main(["serve", "--live", "--replay", "x.csv", "--ingest",
                 str(tmp_path / "f.sock"), "--accel", "10",
                 "--control", sock]) == 2
    capsys.readouterr()


def test_ctl_unreachable_daemon(tmp_path, capsys):
    missing = str(tmp_path / "nowhere.sock")
    assert main(["ctl", "ping", "--control", missing, "--retry", "0.1"]) == 1
    assert "cannot reach" in capsys.readouterr().err
    assert main(["ctl", "set-goal", "--control", missing]) == 2
    assert main(["ctl", "inject-fault", "--control", missing]) == 2


# -- trace subcommands (show / import / stats) --------------------------------


MSR_ROWS = (
    "128166372003061629,host,0,Read,0,4096,100\n"
    "128166372008061629,host,0,Write,1048576,8192,100\n"
    "128166372013061629,host,0,Read,7340032,4096,100\n"
)


def test_trace_import_msr(tmp_path, capsys):
    source = tmp_path / "msr.csv"
    source.write_text(MSR_ROWS)
    out = tmp_path / "imported.csv"
    code = main(["trace", "import", str(source), "--format", "msr",
                 "-o", str(out), "--name", "web0"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "imported web0" in printed
    assert "wrote 3 requests" in printed
    trace = load_trace(out)
    assert trace.name == "web0"
    assert len(trace) == 3
    assert trace.num_extents == 8  # extent 7 + 1 at default 1 MiB extents


def test_trace_import_with_modernization_and_json(tmp_path, capsys):
    source = tmp_path / "msr.csv"
    source.write_text(MSR_ROWS)
    out = tmp_path / "imported.csv"
    code = main(["trace", "import", str(source), "--format", "msr",
                 "-o", str(out), "--target-extents", "4",
                 "--target-duration", "10", "--intensity", "2", "--json"])
    assert code == 0
    import json

    doc = json.loads(capsys.readouterr().out)
    assert doc["format"] == "msr"
    assert doc["transforms"] == ["extents->4", "duration->10s", "intensity x2"]
    assert doc["output"] == str(out)
    assert load_trace(out).num_extents == 4


def test_trace_import_generic_csv_flags(tmp_path, capsys):
    source = tmp_path / "g.csv"
    source.write_text("ts;op;lba;len\n0;R;0;8\n250;W;2048;16\n")
    out = tmp_path / "imported.csv"
    code = main(["trace", "import", str(source), "--format", "csv",
                 "-o", str(out), "--time-col", "ts", "--kind-col", "op",
                 "--offset-col", "lba", "--size-col", "len",
                 "--time-unit", "ms", "--offset-unit", "sectors",
                 "--delimiter", ";"])
    assert code == 0
    trace = load_trace(out)
    assert list(trace.times) == [0.0, 0.25]
    assert list(trace.kinds) == [0, 1]
    assert list(trace.sizes) == [4096, 8192]


def test_trace_import_bad_input_reports_line(tmp_path, capsys):
    source = tmp_path / "bad.csv"
    source.write_text("notaticks,host,0,Read,0,4096,100\n")
    code = main(["trace", "import", str(source), "--format", "msr",
                 "-o", str(tmp_path / "out.csv")])
    assert code == 2
    err = capsys.readouterr().err
    assert "repro trace import:" in err
    assert "bad.csv:1" in err
    assert not (tmp_path / "out.csv").exists()


def test_trace_stats_subcommand(tmp_path, capsys):
    path = gen(tmp_path)
    capsys.readouterr()
    assert main(["trace", "stats", str(path)]) == 0
    out = capsys.readouterr().out
    assert "mean rate" in out


def test_trace_show_backcompat(tmp_path, capsys):
    """The pre-subcommand spelling `repro trace EVENTS.jsonl` still
    renders an event log, and `trace show` is its explicit alias."""
    path = gen(tmp_path)
    events = tmp_path / "events.jsonl"
    capsys.readouterr()
    assert main(["run", "--trace", str(path), "--policy", "hibernator",
                 "--disks", "4", "--epoch", "30",
                 "--trace-out", str(events)]) == 0
    capsys.readouterr()
    assert main(["trace", str(events)]) == 0
    legacy = capsys.readouterr().out
    assert "epoch decisions" in legacy
    assert main(["trace", "show", str(events)]) == 0
    assert capsys.readouterr().out == legacy


def test_gen_trace_new_kinds(tmp_path, capsys):
    for kind in ("flashcrowd", "multitenant", "writeburst"):
        path = tmp_path / f"{kind}.csv"
        code = main(["gen-trace", "--kind", kind, "--duration", "120",
                     "--rate", "30", "--extents", "64", "--seed", "2",
                     "-o", str(path)])
        assert code == 0, kind
        trace = load_trace(path)
        assert len(trace) > 0
        assert trace.num_extents == 64
