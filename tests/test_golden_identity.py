"""Byte-identity pins for the golden scenarios.

``tests/golden/golden_results.json`` records the result digest of each
golden run at the current ``CODE_VERSION``. These tests recompute the
digests — serially and through the multiprocess executor — and require
exact equality, which is what lets performance work touch the hot path
with confidence: any change to a metric, a float operation order, an RNG
draw, or an event ordering shows up here as a digest mismatch.

Regenerating the pins (``repro perf --write-golden``) is only legitimate
when a change *intends* to alter results, in which case ``CODE_VERSION``
must be bumped too (the CACHE002 guard enforces that coupling).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cache import CODE_VERSION
from repro.analysis.parallel import execute, run_spec
from repro.fleet.executor import run_fleet
from repro.fleet.spec import FleetSpec
from repro.perf.digest import DIGEST_VERSION, fleet_result_digest, result_digest
from repro.perf.scenarios import golden_specs

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_results.json"


def _digest(spec, jobs: int = 1) -> str:
    """Digest one golden spec, single-array or fleet."""
    if isinstance(spec, FleetSpec):
        return fleet_result_digest(run_fleet(spec, jobs=jobs))
    return result_digest(run_spec(spec))


@pytest.fixture(scope="module")
def pinned():
    return json.loads(GOLDEN_PATH.read_text())


def test_pin_file_matches_current_versions(pinned):
    assert pinned["code_version"] == CODE_VERSION, (
        "CODE_VERSION changed without regenerating the golden pins; run "
        "`repro perf --write-golden tests/golden/golden_results.json`"
    )
    assert pinned["digest_version"] == DIGEST_VERSION


def test_pin_file_covers_every_golden_spec(pinned):
    assert sorted(pinned["digests"]) == sorted(golden_specs())


def test_golden_results_are_byte_identical_serial(pinned):
    specs = golden_specs()
    for name in sorted(specs):
        digest = _digest(specs[name])
        assert digest == pinned["digests"][name], (
            f"{name}: result digest drifted — the simulator's output "
            "changed. If intentional, bump CODE_VERSION and regenerate "
            "the pins; if not, this is a correctness regression."
        )


def test_golden_results_are_byte_identical_parallel(pinned):
    """jobs=2 must reproduce the same bytes as jobs=1 (and the pins)."""
    specs = golden_specs()
    names = sorted(n for n in specs if not isinstance(specs[n], FleetSpec))
    results = execute([specs[n] for n in names], jobs=2)
    for name, result in zip(names, results):
        assert result_digest(result) == pinned["digests"][name], (
            f"{name}: parallel execution produced different bytes"
        )


def test_golden_fleet_is_byte_identical_parallel(pinned):
    """The fleet pin must reproduce with sharded (jobs=2) execution."""
    specs = golden_specs()
    fleets = {n: s for n, s in specs.items() if isinstance(s, FleetSpec)}
    assert fleets, "golden set lost its fleet spec"
    for name, spec in sorted(fleets.items()):
        assert _digest(spec, jobs=2) == pinned["digests"][name], (
            f"{name}: sharded fleet execution produced different bytes"
        )
