"""Unit tests for the MAID baseline."""

from __future__ import annotations


import pytest

from repro.policies.maid import MaidConfig, MaidPolicy, maid_array_config
from repro.sim.request import IoKind
from repro.sim.runner import ArraySimulation
from tests.conftest import make_trace, poisson_trace


def config_for(small_config, cache_disks=1):
    return maid_array_config(small_config, cache_disks)


def test_config_validation():
    with pytest.raises(ValueError):
        MaidConfig(num_cache_disks=0)


def test_requires_empty_cache_disks(small_config):
    trace = make_trace([0.0])
    policy = MaidPolicy(MaidConfig(num_cache_disks=1))
    sim = ArraySimulation(trace, small_config, policy)  # cache disk holds data
    with pytest.raises(ValueError):
        sim.run()


def test_requires_passive_disks(small_config):
    trace = make_trace([0.0])
    config = config_for(small_config, cache_disks=4)
    with pytest.raises(ValueError):
        ArraySimulation(trace, config, MaidPolicy(MaidConfig(num_cache_disks=4))).run()


def test_repeated_reads_hit_cache(small_config):
    config = config_for(small_config)
    trace = make_trace([i * 0.1 for i in range(20)], extents=[5] * 20)
    policy = MaidPolicy(MaidConfig(num_cache_disks=1))
    sim = ArraySimulation(trace, config, policy)
    sim.run()
    assert policy.cache_misses == 1
    assert policy.cache_hits == 19


def test_hits_served_by_cache_disk(small_config):
    config = config_for(small_config)
    trace = make_trace([i * 0.1 for i in range(20)], extents=[5] * 20)
    policy = MaidPolicy(MaidConfig(num_cache_disks=1))
    sim = ArraySimulation(trace, config, policy)
    sim.run()
    # The home disk saw only the single miss; the cache disk the rest
    # (plus the background fill write).
    home = sim.array.extent_map.disk_of(5)
    assert sim.array.disks[home].ops_completed == 1
    assert sim.array.disks[0].ops_completed >= 19


def test_writes_are_write_back(small_config):
    config = config_for(small_config)
    trace = make_trace([0.0, 0.1, 0.2], extents=[5, 5, 5],
                       kinds=[IoKind.WRITE] * 3)
    policy = MaidPolicy(MaidConfig(num_cache_disks=1))
    sim = ArraySimulation(trace, config, policy)
    sim.run()
    home = sim.array.extent_map.disk_of(5)
    assert sim.array.disks[home].ops_completed == 0  # absorbed by cache
    assert policy.destages == 0  # never evicted


def test_eviction_destages_dirty(small_config):
    config = config_for(small_config)
    # Cache capacity is slots_per_disk; touch more extents than that with
    # writes to force dirty evictions.
    capacity = config.slots_per_disk
    n = capacity + 10
    trace = make_trace([i * 0.05 for i in range(n)],
                       extents=list(range(n)),
                       kinds=[IoKind.WRITE] * n)
    policy = MaidPolicy(MaidConfig(num_cache_disks=1))
    sim = ArraySimulation(trace, config, policy)
    sim.run()
    assert policy.destages >= 10


def test_passive_disks_spin_down_when_cold(small_config):
    config = config_for(small_config)
    # All traffic on one extent -> after the miss, passive disks idle.
    trace = make_trace([0.0] + [100.0 + i * 0.1 for i in range(10)],
                       extents=[5] * 11)
    policy = MaidPolicy(MaidConfig(num_cache_disks=1, spindown_threshold_s=20.0))
    sim = ArraySimulation(trace, config, policy)
    sim.run()
    passive_speeds = sim.array.speeds()[1:]
    assert min(passive_speeds) == 0
    # The cache disk never sleeps.
    assert sim.array.speeds()[0] == config.spec.max_rpm


def test_cache_reads_disabled(small_config):
    config = config_for(small_config)
    trace = make_trace([i * 0.1 for i in range(10)], extents=[5] * 10)
    policy = MaidPolicy(MaidConfig(num_cache_disks=1, cache_reads=False))
    sim = ArraySimulation(trace, config, policy)
    sim.run()
    assert policy.cache_hits == 0
    home = sim.array.extent_map.disk_of(5)
    assert sim.array.disks[home].ops_completed == 10


def test_extras(small_config):
    config = config_for(small_config)
    trace = poisson_trace(rate=20.0, duration=60.0, seed=13)
    policy = MaidPolicy(MaidConfig(num_cache_disks=1))
    result = ArraySimulation(trace, config, policy).run()
    assert 0.0 <= result.extras["cache_hit_rate"] <= 1.0
    assert result.extras["cache_hits"] + result.extras["cache_misses"] == len(trace)
