"""Unit tests for the PDC baseline."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.policies.pdc import PdcConfig, PdcPolicy
from repro.sim.runner import ArraySimulation
from tests.conftest import poisson_trace


def test_config_validation():
    with pytest.raises(ValueError):
        PdcConfig(period_s=0.0)
    with pytest.raises(ValueError):
        PdcConfig(fill_fraction=0.0)


def test_concentrates_popular_data(small_config):
    """After a couple of periods, the hottest extents must sit on the
    leading disks."""
    trace = poisson_trace(rate=40.0, duration=400.0, zipf_theta=1.3, seed=9)
    policy = PdcPolicy(PdcConfig(period_s=100.0, max_moves_per_period=200))
    sim = ArraySimulation(trace, small_config, policy)
    sim.run()
    assert policy.periods >= 3
    counts = np.bincount(trace.extents, minlength=80)
    hottest = np.argsort(-counts)[:10]
    leading = sum(1 for e in hottest if sim.array.extent_map.disk_of(int(e)) == 0)
    assert leading >= 7


def test_load_becomes_skewed_across_disks(small_config):
    trace = poisson_trace(rate=40.0, duration=400.0, zipf_theta=1.3, seed=9)
    policy = PdcPolicy(PdcConfig(period_s=100.0, max_moves_per_period=200))
    sim = ArraySimulation(trace, small_config, policy)
    sim.run()
    ops = [d.ops_completed for d in sim.array.disks]
    # Disk 0 absorbs far more traffic than the tail disk after
    # concentration (the PDC failure mode under load).
    assert ops[0] > 1.5 * min(ops)


def test_respects_move_cap(small_config):
    trace = poisson_trace(rate=40.0, duration=250.0, zipf_theta=1.2, seed=10)
    policy = PdcPolicy(PdcConfig(period_s=100.0, max_moves_per_period=5))
    sim = ArraySimulation(trace, small_config, policy)
    result = sim.run()
    assert result.migration_extents <= 5 * max(policy.periods, 1)


def test_migration_energy_accounted(small_config):
    trace = poisson_trace(rate=40.0, duration=250.0, zipf_theta=1.2, seed=10)
    policy = PdcPolicy(PdcConfig(period_s=100.0, max_moves_per_period=50))
    result = ArraySimulation(trace, small_config, policy).run()
    assert result.migration_extents > 0
    assert result.migration_bytes == result.migration_extents * small_config.extent_bytes


def test_spins_down_idle_tail(small_config):
    """With unbound capacity and everything concentrated, tail disks
    should be asleep by the end of the run."""
    config = dataclasses.replace(small_config, slots_override=80)
    trace = poisson_trace(rate=15.0, duration=600.0, num_extents=80,
                          zipf_theta=2.5, seed=11)
    policy = PdcPolicy(PdcConfig(period_s=100.0, max_moves_per_period=200,
                                 spindown_threshold_s=30.0))
    sim = ArraySimulation(trace, config, policy)
    sim.run()
    assert min(sim.array.speeds()) == 0
    # Concentration actually happened: the lead disk dominates.
    occupancy = sim.array.extent_map.occupancy()
    assert occupancy[0] > 40


def test_extras_and_describe(small_config):
    trace = poisson_trace(rate=10.0, duration=150.0, seed=12)
    policy = PdcPolicy(PdcConfig(period_s=100.0))
    result = ArraySimulation(trace, small_config, policy).run()
    assert result.extras["pdc_periods"] >= 1
    assert "PDC" in policy.describe()
