"""Unit tests for online statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    DeficitTracker,
    LatencyRecorder,
    OnlineStats,
    TimeWeighted,
    WindowAverage,
)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_matches_numpy(self, rng):
        xs = rng.normal(5.0, 2.0, size=500)
        s = OnlineStats()
        for x in xs:
            s.add(float(x))
        assert s.n == 500
        assert s.mean == pytest.approx(np.mean(xs))
        assert s.variance == pytest.approx(np.var(xs))
        assert s.min == pytest.approx(xs.min())
        assert s.max == pytest.approx(xs.max())
        assert s.total == pytest.approx(xs.sum())

    def test_single_observation(self):
        s = OnlineStats()
        s.add(3.5)
        assert s.mean == 3.5
        assert s.variance == 0.0
        assert s.min == s.max == 3.5

    def test_merge_matches_sequential(self, rng):
        xs = rng.exponential(1.0, size=200)
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        for x in xs[:80]:
            a.add(float(x))
        for x in xs[80:]:
            b.add(float(x))
        for x in xs:
            c.add(float(x))
        a.merge(b)
        assert a.n == c.n
        assert a.mean == pytest.approx(c.mean)
        assert a.variance == pytest.approx(c.variance)

    def test_merge_empty_sides(self):
        a = OnlineStats()
        b = OnlineStats()
        b.add(2.0)
        a.merge(b)
        assert a.n == 1 and a.mean == 2.0
        b.merge(OnlineStats())
        assert b.n == 1


class TestLatencyRecorder:
    def test_percentiles_exact(self):
        r = LatencyRecorder()
        for x in range(1, 101):
            r.add(float(x))
        assert r.percentile(50) == pytest.approx(50.5)
        assert r.percentile(95) == pytest.approx(np.percentile(range(1, 101), 95))

    def test_no_samples_raises(self):
        r = LatencyRecorder()
        with pytest.raises(ValueError):
            r.percentile(50)

    def test_keep_samples_false(self):
        r = LatencyRecorder(keep_samples=False)
        r.add(1.0)
        assert r.mean == 1.0
        with pytest.raises(ValueError):
            r.percentile(50)
        assert len(r.samples()) == 0


class TestTimeWeighted:
    def test_integral(self):
        tw = TimeWeighted(initial=2.0)
        tw.update(3.0, 5.0)   # 2.0 for 3s = 6
        tw.update(5.0, 0.0)   # 5.0 for 2s = 10
        assert tw.integral == pytest.approx(16.0)

    def test_mean(self):
        tw = TimeWeighted(initial=4.0)
        tw.update(2.0, 0.0)
        assert tw.mean(4.0) == pytest.approx(2.0)  # (4*2 + 0*2) / 4

    def test_time_backwards_raises(self):
        tw = TimeWeighted()
        tw.update(2.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(1.0, 1.0)

    def test_advance_keeps_value(self):
        tw = TimeWeighted(initial=3.0)
        tw.advance(2.0)
        assert tw.value == 3.0
        assert tw.integral == pytest.approx(6.0)


class TestDeficitTracker:
    def test_positive_goal_required(self):
        with pytest.raises(ValueError):
            DeficitTracker(0.0)

    def test_deficit_accumulates_overshoot(self):
        d = DeficitTracker(goal=0.010)
        d.add(0.015)
        assert d.deficit == pytest.approx(0.005)
        assert d.violated

    def test_credit_accumulates_undershoot(self):
        d = DeficitTracker(goal=0.010)
        d.add(0.004)
        d.add(0.004)
        assert d.deficit == pytest.approx(-0.012)
        assert not d.violated
        assert d.headroom() == pytest.approx(0.012)

    def test_cumulative_average_identity(self, rng):
        d = DeficitTracker(goal=0.010)
        xs = rng.uniform(0.0, 0.03, size=100)
        for x in xs:
            d.add(float(x))
        assert d.cumulative_average == pytest.approx(float(np.mean(xs)))

    def test_violation_iff_average_exceeds_goal(self):
        d = DeficitTracker(goal=0.010)
        d.add(0.009)
        d.add(0.012)
        # average 10.5ms > 10ms
        assert d.violated
        d.add(0.001)
        assert not d.violated

    def test_empty_average_is_zero(self):
        assert DeficitTracker(1.0).cumulative_average == 0.0


class TestWindowAverage:
    def test_windows_roll(self):
        w = WindowAverage(width=10.0)
        w.add(1.0, 4.0)
        w.add(2.0, 6.0)
        w.add(11.0, 10.0)
        points = w.finish(20.0)
        assert points[0] == (0.0, 5.0, 2)
        assert points[1] == (10.0, 10.0, 1)

    def test_empty_windows_recorded_as_nan(self):
        # An empty window has no mean; 0.0 would be indistinguishable
        # from a genuine zero-latency window.
        w = WindowAverage(width=5.0)
        w.add(12.0, 1.0)
        points = w.finish(13.0)
        assert points[0][0] == 0.0 and math.isnan(points[0][1]) and points[0][2] == 0
        assert points[1][0] == 5.0 and math.isnan(points[1][1]) and points[1][2] == 0
        assert points[2] == (10.0, 1.0, 1)

    def test_finish_is_complete(self):
        w = WindowAverage(width=5.0)
        w.add(1.0, 2.0)
        points = w.finish(4.0)
        assert points == [(0.0, 2.0, 1)]


class TestMergePropertyBased:
    """Property tests for the parallel Welford merge.

    ``merge`` becomes load-bearing once results are combined across
    worker processes (repro.analysis.parallel), so merging any partition
    of a stream must be indistinguishable from observing it sequentially.
    """

    finite = st.floats(min_value=-1e6, max_value=1e6,
                       allow_nan=False, allow_infinity=False)

    @given(xs=st.lists(finite, max_size=200), split=st.integers(min_value=0, max_value=200))
    @settings(max_examples=200, deadline=None)
    def test_two_way_merge_matches_sequential(self, xs, split):
        split = min(split, len(xs))
        left, right, sequential = OnlineStats(), OnlineStats(), OnlineStats()
        for x in xs[:split]:
            left.add(x)
        for x in xs[split:]:
            right.add(x)
        for x in xs:
            sequential.add(x)
        left.merge(right)
        assert left.n == sequential.n
        assert left.total == pytest.approx(sequential.total, rel=1e-9, abs=1e-9)
        assert left.mean == pytest.approx(sequential.mean, rel=1e-9, abs=1e-9)
        assert left.variance == pytest.approx(sequential.variance, rel=1e-6, abs=1e-9)
        if xs:
            assert left.min == sequential.min
            assert left.max == sequential.max

    @given(chunks=st.lists(st.lists(finite, max_size=50), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_chunked_merge_matches_sequential(self, chunks):
        merged, sequential = OnlineStats(), OnlineStats()
        for chunk in chunks:
            part = OnlineStats()
            for x in chunk:
                part.add(x)
                sequential.add(x)
            merged.merge(part)
        assert merged.n == sequential.n
        assert merged.mean == pytest.approx(sequential.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(sequential.variance, rel=1e-6, abs=1e-9)

    @given(xs=st.lists(finite, min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_merge_into_empty_is_copy(self, xs):
        src, dst = OnlineStats(), OnlineStats()
        for x in xs:
            src.add(x)
        dst.merge(src)
        assert (dst.n, dst.mean, dst.variance, dst.min, dst.max, dst.total) == (
            src.n, src.mean, src.variance, src.min, src.max, src.total)

    @given(xs=st.lists(finite, min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_merge_empty_is_noop(self, xs):
        s = OnlineStats()
        for x in xs:
            s.add(x)
        before = (s.n, s.mean, s.variance, s.min, s.max, s.total)
        s.merge(OnlineStats())
        assert (s.n, s.mean, s.variance, s.min, s.max, s.total) == before
