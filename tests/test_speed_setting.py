"""Unit tests for the CR speed-setting optimizer."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.core.response_model import MG1ResponseModel
from repro.core.speed_setting import (
    SpeedAssignment,
    SpeedSettingConfig,
    solve_speed_assignment,
)
from repro.disks.mechanics import DiskMechanics
from repro.disks.specs import ultrastar_36z15


@pytest.fixture
def model():
    return MG1ResponseModel(DiskMechanics(ultrastar_36z15()), mean_request_bytes=4096)


def solve(heat, num_disks=4, model=None, goal=None, prev=None, cfg=None,
          epoch=3600.0, spec=None):
    spec = spec or ultrastar_36z15()
    model = model or MG1ResponseModel(DiskMechanics(spec), mean_request_bytes=4096)
    return solve_speed_assignment(
        heat=np.asarray(heat, dtype=float),
        num_disks=num_disks,
        model=model,
        spec=spec,
        epoch_seconds=epoch,
        goal_s=goal,
        prev_boundaries=prev,
        config=cfg or SpeedSettingConfig(change_penalty_joules=0.0),
    )


def uniform_heat(num_extents=80, total_rate=40.0):
    return np.full(num_extents, total_rate / num_extents)


def test_boundaries_well_formed():
    a = solve(uniform_heat(), goal=0.05)
    assert a.boundaries[0] == 0
    assert a.boundaries[-1] == 4
    assert list(a.boundaries) == sorted(a.boundaries)
    assert sum(a.counts) == 4
    assert len(a.extent_boundaries) == len(a.boundaries)
    assert a.extent_boundaries[-1] == 80


def test_near_zero_load_all_slowest():
    a = solve(np.full(80, 1e-6), goal=1.0)
    assert a.counts[-1] == 4  # everything in the slowest tier
    assert a.feasible


def test_tight_goal_forces_full_speed():
    """A goal just above the full-speed response leaves no room for any
    slower tier: the optimizer must keep every disk at full speed, and
    feasibly so (no fallback)."""
    model = MG1ResponseModel(DiskMechanics(ultrastar_36z15()), mean_request_bytes=4096)
    rate = 100.0
    r_full = model.response_time(15000, rate / 4)
    a = solve(
        uniform_heat(total_rate=rate),
        goal=r_full * 1.01,
        model=model,
        cfg=SpeedSettingConfig(change_penalty_joules=0.0, goal_margin=0.0),
    )
    assert a.counts[0] == 4  # all disks at full speed
    assert a.feasible


def test_loose_goal_saves_energy():
    tight = solve(uniform_heat(), goal=0.007)
    loose = solve(uniform_heat(), goal=0.05)
    assert loose.predicted_energy_joules < tight.predicted_energy_joules


def test_energy_monotone_in_slack():
    energies = [
        solve(uniform_heat(total_rate=80.0), goal=g).predicted_energy_joules
        for g in (0.008, 0.012, 0.02, 0.05)
    ]
    assert energies == sorted(energies, reverse=True)


def test_predicted_response_within_planning_goal():
    goal = 0.02
    cfg = SpeedSettingConfig(change_penalty_joules=0.0, goal_margin=0.1)
    a = solve(uniform_heat(total_rate=100.0), goal=goal, cfg=cfg)
    assert a.feasible
    assert a.predicted_response_s <= goal * 0.9 + 1e-12


def test_infeasible_falls_back_to_full_speed():
    # A goal below the fastest service time is unmeetable.
    a = solve(uniform_heat(total_rate=100.0), goal=1e-4)
    assert not a.feasible
    assert a.counts[0] == 4


def test_no_goal_minimizes_energy_with_stability():
    a = solve(uniform_heat(total_rate=4.0), goal=None)
    assert a.feasible
    # With negligible load and no goal, everything crawls.
    assert a.counts[-1] == 4


def test_overload_without_goal_keeps_stability():
    """Load that saturates the slowest speed must not be assigned there."""
    spec = ultrastar_36z15()
    model = MG1ResponseModel(DiskMechanics(spec), mean_request_bytes=4096)
    slow_capacity = 1.0 / model.moments(3000).mean  # per-disk rate at rho=1
    heat = uniform_heat(total_rate=4 * slow_capacity * 0.99)
    a = solve(heat, goal=None, model=model, spec=spec)
    assert a.feasible
    for p in a.predictions:
        if p.tier_lambda > 0:
            assert p.utilization < model.max_utilization


def test_skewed_heat_uses_tiers():
    """With strong skew and moderate slack, the optimizer should split
    the array: a small fast tier for the hot extents, slow tier for the
    cold tail."""
    heat = np.zeros(80)
    heat[:8] = 10.0    # 80 req/s concentrated on 10% of extents
    heat[8:] = 0.05
    a = solve(heat, goal=0.015)
    assert a.feasible
    used_speeds = [rpm for rpm, c in zip(a.speeds_desc, a.counts) if c > 0]
    assert len(used_speeds) >= 2
    assert used_speeds[0] > used_speeds[-1]


def test_matches_brute_force_enumeration():
    """The DFS with pruning must be exactly optimal over all candidate
    partitions (verified against plain itertools enumeration)."""
    spec = ultrastar_36z15(3)
    model = MG1ResponseModel(DiskMechanics(spec), mean_request_bytes=4096)
    rng = np.random.default_rng(5)
    heat = rng.exponential(0.8, size=40)
    goal = 0.018
    num_disks = 4
    a = solve(heat, num_disks=num_disks, model=model, goal=goal, spec=spec)

    speeds_desc = tuple(sorted(spec.rpm_levels, reverse=True))
    sorted_heat = np.sort(heat)[::-1]
    prefix = np.concatenate(([0.0], np.cumsum(sorted_heat)))
    total = prefix[-1]
    share = len(heat) / num_disks

    def evaluate(bounds):
        energy, weighted = 0.0, 0.0
        for t in range(len(speeds_desc)):
            lo, hi = bounds[t], bounds[t + 1]
            if hi == lo:
                continue
            e_lo = int(round(lo * share))
            e_hi = len(heat) if hi == num_disks else int(round(hi * share))
            lam = prefix[e_hi] - prefix[e_lo]
            per = lam / (hi - lo)
            m = model.moments(speeds_desc[t])
            rho = per * m.mean
            if lam > 0 and rho >= model.max_utilization:
                return None
            r = m.mean + (per * m.second / (2 * (1 - rho)) if lam > 0 else 0.0)
            weighted += lam * r
            energy += (hi - lo) * spec.idle_watts(speeds_desc[t]) * 3600.0
            energy += lam * m.mean * spec.seek_watts * 3600.0
        if weighted > goal * (1 - 0.1) * total:
            return None
        return energy

    best = math.inf
    for bounds_mid in itertools.combinations_with_replacement(
        range(num_disks + 1), len(speeds_desc) - 1
    ):
        bounds = (0,) + bounds_mid + (num_disks,)
        if list(bounds) != sorted(bounds):
            continue
        energy = evaluate(bounds)
        if energy is not None and energy < best:
            best = energy
    assert a.feasible
    assert a.predicted_energy_joules == pytest.approx(best)


def test_change_penalty_prefers_staying_put():
    """With a huge reconfiguration penalty, the optimizer should keep
    the previous boundaries when they remain feasible."""
    heat = uniform_heat(total_rate=40.0)
    free = solve(heat, goal=0.02)
    prev = tuple(b + 1 if 0 < b < 4 else b for b in free.boundaries)
    prev = tuple(min(b, 4) for b in prev)
    pinned = solve(
        heat, goal=0.02, prev=prev,
        cfg=SpeedSettingConfig(change_penalty_joules=1e12),
    )
    assert pinned.boundaries == prev


def test_describe_format():
    a = solve(uniform_heat(), goal=0.05)
    desc = a.describe()
    assert "@" in desc
    total = sum(int(part.split("@")[0]) for part in desc.split("+"))
    assert total == 4


def test_rpm_for_position_consistent():
    a = solve(uniform_heat(total_rate=100.0), goal=0.015)
    speeds = [a.rpm_for_position(p) for p in range(4)]
    assert speeds == sorted(speeds, reverse=True)
    with pytest.raises(ValueError):
        a.rpm_for_position(4)


def test_input_validation(model):
    spec = ultrastar_36z15()
    with pytest.raises(ValueError):
        solve_speed_assignment(np.array([]), 4, model, spec, 3600.0, 0.01)
    with pytest.raises(ValueError):
        solve_speed_assignment(np.ones(4), 0, model, spec, 3600.0, 0.01)
    with pytest.raises(ValueError):
        solve_speed_assignment(np.ones(4), 4, model, spec, 0.0, 0.01)


def test_config_validation():
    with pytest.raises(ValueError):
        SpeedSettingConfig(change_penalty_joules=-1.0)
    with pytest.raises(ValueError):
        SpeedSettingConfig(goal_margin=1.0)


def test_single_speed_spec_degenerates():
    spec = ultrastar_36z15().with_levels((15000,))
    a = solve(uniform_heat(), goal=0.05, spec=spec)
    assert a.counts == (4,)
    assert a.feasible
