"""Tests for the perf harness: scenario selection, BENCH documents,
baseline discovery and the regression comparison."""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.analysis.parallel import run_spec
from repro.perf.digest import result_digest, strip_runtime
from repro.perf.harness import (
    BENCH_PREFIX,
    BENCH_SCHEMA_VERSION,
    compare_benchmarks,
    find_baseline,
    load_bench,
    run_benchmark,
    write_bench,
)
from repro.perf.scenarios import PERF_SCENARIOS, golden_specs, select_scenarios


class TestScenarios:
    def test_names_are_unique(self):
        names = [s.name for s in PERF_SCENARIOS]
        assert len(names) == len(set(names))

    def test_select_all_by_default(self):
        assert select_scenarios() == PERF_SCENARIOS

    def test_select_quick_subset(self):
        quick = select_scenarios(quick=True)
        assert quick and all(s.quick for s in quick)
        assert len(quick) < len(PERF_SCENARIOS)

    def test_select_by_name_preserves_request_order(self):
        picked = select_scenarios(["cello-base", "synth-base"])
        assert [s.name for s in picked] == ["cello-base", "synth-base"]

    def test_select_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            select_scenarios(["no-such-scenario"])

    def test_specs_are_fresh_objects(self):
        scenario = PERF_SCENARIOS[0]
        assert scenario.spec() is not scenario.spec()

    def test_golden_specs_have_stable_names(self):
        assert sorted(golden_specs()) == [
            "golden-base", "golden-faults", "golden-flashcrowd", "golden-fleet",
            "golden-hibernator", "golden-imported", "golden-nosamples",
            "golden-writeburst",
        ]

    def test_matrix_covers_ingest_and_new_generators(self):
        names = {s.name for s in PERF_SCENARIOS}
        assert len(PERF_SCENARIOS) >= 12
        assert {"imported-msr", "flashcrowd-hibernator", "writeburst-base"} <= names


class TestDigest:
    def test_strip_runtime_removes_only_runtime_keys(self):
        result = run_spec(golden_specs()["golden-nosamples"])
        stripped = strip_runtime(result)
        assert not any(k.startswith("runtime_") for k in stripped.extras)
        kept = {k for k in result.extras if not k.startswith("runtime_")}
        assert set(stripped.extras) == kept

    def test_digest_ignores_wall_clock_extras(self):
        result = run_spec(golden_specs()["golden-nosamples"])
        jittered = dataclasses.replace(
            result, extras={**result.extras, "runtime_wall_s": 123.0}
        )
        assert result_digest(jittered) == result_digest(result)

    def test_digest_sees_real_metric_changes(self):
        result = run_spec(golden_specs()["golden-nosamples"])
        changed = dataclasses.replace(result, energy_joules=result.energy_joules + 1.0)
        assert result_digest(changed) != result_digest(result)


def _bench_doc(**rates: float) -> dict:
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "generated_at": "2026-08-05T00:00:00+00:00",
        "scenarios": {
            name: {"events": 1000, "requests": 500, "wall_s": 1.0,
                   "events_per_s": rate, "requests_per_s": rate / 2.0,
                   "digest": "d"}
            for name, rate in rates.items()
        },
    }


class TestCompare:
    def test_no_regression_at_equal_rates(self):
        lines, regressions = compare_benchmarks(_bench_doc(a=100.0), _bench_doc(a=100.0))
        assert regressions == []
        assert any("1.00x" in line for line in lines)

    def test_regression_below_threshold(self):
        _, regressions = compare_benchmarks(
            _bench_doc(a=80.0), _bench_doc(a=100.0), threshold=0.9
        )
        assert regressions == ["a"]

    def test_threshold_is_configurable(self):
        _, regressions = compare_benchmarks(
            _bench_doc(a=80.0), _bench_doc(a=100.0), threshold=0.75
        )
        assert regressions == []

    def test_new_and_dropped_scenarios_are_reported_not_failed(self):
        lines, regressions = compare_benchmarks(
            _bench_doc(new=50.0), _bench_doc(old=100.0)
        )
        assert regressions == []
        text = "\n".join(lines)
        assert "new scenario" in text and "baseline only" in text
        assert "1 added, 1 removed" in text

    def test_drifted_matrix_still_gates_the_intersection(self):
        """Scenario-set drift (matrix grew a scenario, baseline has one
        the run dropped) must not KeyError — and must not mask a real
        regression in the scenarios both documents share."""
        current = _bench_doc(shared=70.0, brand_new=10.0)
        baseline = _bench_doc(shared=100.0, retired=10.0)
        lines, regressions = compare_benchmarks(current, baseline, threshold=0.9)
        assert regressions == ["shared"]
        text = "\n".join(lines)
        assert "brand_new" in text and "retired" in text
        assert "gated on 1 common" in text

    def test_identical_matrices_report_no_drift(self):
        lines, _ = compare_benchmarks(_bench_doc(a=1.0), _bench_doc(a=1.0))
        assert not any("drift" in line for line in lines)

    def test_bad_threshold_raises(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_benchmarks(_bench_doc(a=1.0), _bench_doc(a=1.0), threshold=0.0)

    def test_digest_mismatch_same_version_is_a_regression(self):
        current = _bench_doc(a=100.0)
        baseline = _bench_doc(a=100.0)
        current["code_version"] = baseline["code_version"] = "v1"
        baseline["scenarios"]["a"]["digest"] = "something-else"
        lines, regressions = compare_benchmarks(current, baseline)
        assert regressions == ["a"]
        assert "DIGEST MISMATCH" in "\n".join(lines)

    def test_digest_mismatch_across_versions_is_informational(self):
        """A baseline from older code may legitimately differ byte-wise:
        the mismatch must be reported, but must not fail the gate."""
        current = _bench_doc(a=100.0)
        baseline = _bench_doc(a=100.0)
        current["code_version"] = "v2"
        baseline["code_version"] = "v1"
        baseline["scenarios"]["a"]["digest"] = "something-else"
        lines, regressions = compare_benchmarks(current, baseline)
        assert regressions == []
        text = "\n".join(lines)
        assert "code_version drift: baseline v1 -> current v2" in text
        assert "digest drift (informational)" in text
        assert "DIGEST MISMATCH" not in text

    def test_digest_mismatch_across_engines_is_informational(self):
        current = _bench_doc(a=100.0)
        baseline = _bench_doc(a=100.0)
        current["code_version"] = baseline["code_version"] = "v1"
        current["engine"] = "batch"
        baseline["scenarios"]["a"]["digest"] = "something-else"
        lines, regressions = compare_benchmarks(current, baseline)
        assert regressions == []
        text = "\n".join(lines)
        assert "engine drift: baseline scalar -> current batch" in text
        assert "digest drift (informational)" in text

    def test_unversioned_documents_never_gate_on_digests(self):
        """Documents predating code_version made no identity promise."""
        current = _bench_doc(a=100.0)
        baseline = _bench_doc(a=100.0)
        baseline["scenarios"]["a"]["digest"] = "something-else"
        lines, regressions = compare_benchmarks(current, baseline)
        assert regressions == []
        text = "\n".join(lines)
        assert "digest drift (informational)" in text
        assert "code_version drift" not in text


class TestBenchFiles:
    def test_write_load_roundtrip(self, tmp_path):
        doc = _bench_doc(a=100.0)
        path = tmp_path / "BENCH_roundtrip.json"
        write_bench(doc, path)
        assert load_bench(path) == doc

    def test_load_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "BENCH_bogus.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not a BENCH document"):
            load_bench(path)

    def test_find_baseline_picks_newest_generated_at(self, tmp_path):
        older = _bench_doc(a=1.0)
        older["generated_at"] = "2026-08-01T00:00:00+00:00"
        newer = _bench_doc(a=2.0)
        newer["generated_at"] = "2026-08-04T00:00:00+00:00"
        write_bench(older, tmp_path / f"{BENCH_PREFIX}2026-08-01.json")
        write_bench(newer, tmp_path / f"{BENCH_PREFIX}2026-08-04.json")
        assert find_baseline(tmp_path) == tmp_path / f"{BENCH_PREFIX}2026-08-04.json"

    def test_find_baseline_excludes_output_path(self, tmp_path):
        doc = _bench_doc(a=1.0)
        out = tmp_path / f"{BENCH_PREFIX}today.json"
        write_bench(doc, out)
        assert find_baseline(tmp_path, exclude=out) is None

    def test_find_baseline_skips_corrupt_files(self, tmp_path):
        (tmp_path / f"{BENCH_PREFIX}broken.json").write_text("{not json")
        good = _bench_doc(a=1.0)
        write_bench(good, tmp_path / f"{BENCH_PREFIX}good.json")
        assert find_baseline(tmp_path) == tmp_path / f"{BENCH_PREFIX}good.json"

    def test_find_baseline_empty_dir(self, tmp_path):
        assert find_baseline(tmp_path) is None

    def test_find_baseline_tie_breaks_on_filename(self, tmp_path):
        """Equal ``generated_at`` stamps must resolve deterministically:
        the lexicographically last file name wins (documented rule)."""
        doc = _bench_doc(a=1.0)
        doc["generated_at"] = "2026-08-05T00:00:00+00:00"
        write_bench(doc, tmp_path / f"{BENCH_PREFIX}aaa.json")
        write_bench(doc, tmp_path / f"{BENCH_PREFIX}zzz.json")
        assert find_baseline(tmp_path) == tmp_path / f"{BENCH_PREFIX}zzz.json"
        # Creation order must not matter: same answer with the names
        # written the other way round in a fresh directory.
        other = tmp_path / "other"
        other.mkdir()
        write_bench(doc, other / f"{BENCH_PREFIX}zzz.json")
        write_bench(doc, other / f"{BENCH_PREFIX}aaa.json")
        assert find_baseline(other) == other / f"{BENCH_PREFIX}zzz.json"

    def test_find_baseline_filters_on_engine(self, tmp_path):
        """A batch-engine BENCH file must never become the baseline for
        a scalar run (and vice versa); documents predating the field
        count as scalar."""
        legacy = _bench_doc(a=1.0)  # no "engine" key -> scalar
        legacy["generated_at"] = "2026-08-01T00:00:00+00:00"
        batch = _bench_doc(a=9.0)
        batch["engine"] = "batch"
        batch["generated_at"] = "2026-08-04T00:00:00+00:00"
        write_bench(legacy, tmp_path / f"{BENCH_PREFIX}legacy.json")
        write_bench(batch, tmp_path / f"{BENCH_PREFIX}batch.json")
        assert (find_baseline(tmp_path, engine="scalar")
                == tmp_path / f"{BENCH_PREFIX}legacy.json")
        assert (find_baseline(tmp_path, engine="batch")
                == tmp_path / f"{BENCH_PREFIX}batch.json")
        # Unfiltered search keeps the old newest-stamp behaviour.
        assert find_baseline(tmp_path) == tmp_path / f"{BENCH_PREFIX}batch.json"

    def test_find_baseline_newer_stamp_beats_filename(self, tmp_path):
        older = _bench_doc(a=1.0)
        older["generated_at"] = "2026-08-01T00:00:00+00:00"
        newer = _bench_doc(a=2.0)
        newer["generated_at"] = "2026-08-04T00:00:00+00:00"
        # The newest stamp wins even when its file name sorts first.
        write_bench(newer, tmp_path / f"{BENCH_PREFIX}aaa.json")
        write_bench(older, tmp_path / f"{BENCH_PREFIX}zzz.json")
        assert find_baseline(tmp_path) == tmp_path / f"{BENCH_PREFIX}aaa.json"


class TestRunBenchmark:
    def test_benchmark_records_throughput_and_digest(self):
        # One tiny scenario, one repeat: this is a schema test, not a
        # performance test.
        scenario = select_scenarios(["synth-base"])[0]
        doc = run_benchmark((scenario,), repeats=1)
        assert doc["schema"] == BENCH_SCHEMA_VERSION
        assert doc["repeats"] == 1
        record = doc["scenarios"]["synth-base"]
        assert record["events"] > 0
        assert record["requests"] > 0
        assert record["wall_s"] > 0
        assert math.isclose(
            record["events_per_s"], record["events"] / record["wall_s"]
        )
        assert len(record["digest"]) == 64
        json.dumps(doc)  # must be serializable as-is

    def test_benchmark_rejects_bad_repeats(self):
        scenario = select_scenarios(["synth-base"])[0]
        with pytest.raises(ValueError, match="repeats"):
            run_benchmark((scenario,), repeats=0)

    def test_fleet_scenario_produces_a_record(self):
        scenario = select_scenarios(["fleet-small"])[0]
        assert scenario.fleet
        doc = run_benchmark((scenario,), repeats=1)
        record = doc["scenarios"]["fleet-small"]
        assert record["events"] > 0 and record["requests"] > 0
        assert len(record["digest"]) == 64

    def test_nondeterministic_scenarios_are_all_reported(self):
        """One flaky scenario must not abort the matrix: every scenario
        runs, and the error names every offender at once."""

        class _FlakySpec:
            # Distinct extras per run -> distinct digest per repeat.
            def __init__(self):
                _FlakySpec.counter += 1
                self.tick = _FlakySpec.counter

        _FlakySpec.counter = 0

        @dataclasses.dataclass(frozen=True)
        class _Stub:
            name: str
            flaky: bool

            def spec(self, engine="scalar"):
                real = golden_specs()["golden-nosamples"]
                if not self.flaky:
                    return real
                tick = _FlakySpec().tick
                return dataclasses.replace(
                    real, goal_s=0.001 * tick)  # different spec each repeat

        scenarios = (
            _Stub("flaky-a", True),
            _Stub("steady", False),
            _Stub("flaky-b", True),
        )
        with pytest.raises(RuntimeError) as err:
            run_benchmark(scenarios, repeats=2)
        message = str(err.value)
        assert "flaky-a" in message and "flaky-b" in message
        assert "steady" not in message
