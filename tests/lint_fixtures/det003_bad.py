"""Fixture: DET003 violations (wall-clock reads)."""

import time
from datetime import datetime


def stamp():
    return time.time()  # DET003


def tick():
    started = time.perf_counter()  # DET003
    return started


def today():
    return datetime.now()  # DET003
