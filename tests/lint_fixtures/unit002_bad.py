"""Fixture: UNIT002 violations (suffixless quantity defaults)."""

from dataclasses import dataclass


def wait(timeout=30):  # UNIT002: timeout in... seconds? ms?
    return timeout


@dataclass
class Knobs:
    period: float = 3600.0  # UNIT002
    spin_delay: float = 0.5  # UNIT002
