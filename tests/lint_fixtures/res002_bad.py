"""Bad: result files written in place — a mid-write crash leaves a torn
file that a later reader mistakes for data."""

import json


def save_result(doc, path):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)


def save_report(text, path):
    with open(path, mode="w", encoding="utf-8") as fh:
        fh.write(text)
