"""Fixture: OBS002 violations (unguarded emit calls)."""


class Source:
    def __init__(self, emit):
        self.emit = emit

    def fire(self, event):
        self.emit(event)  # OBS002: no None guard

    def wrong_guard(self, event, enabled):
        if enabled:
            self.emit(event)  # OBS002: guard tests the wrong thing
