"""Bad: a command dispatched but absent from COMMANDS and ServeClient.

``reset-epoch`` was wired into the daemon's dispatch table without
registering it in the protocol or giving the client a method — it works
in ad-hoc socket tests and is unreachable from ``repro ctl``.
"""

COMMANDS = ("ping",)


class ServeClient:
    def ping(self):
        return {}


class Daemon:
    def _cmd_ping(self, request):
        return {"pong": True}

    def _cmd_reset_epoch(self, request):
        return {}

    def _dispatch(self, cmd, request):
        handler = {
            "ping": self._cmd_ping,
            "reset-epoch": self._cmd_reset_epoch,
        }[cmd]
        return handler(request)
