"""Fixture: compliant quantity defaults (unit named, or not a quantity)."""

from dataclasses import dataclass


def wait(timeout_s=30.0):
    return timeout_s


@dataclass
class Knobs:
    period_s: float = 3600.0
    spin_delay_ms: float = 500.0
    max_moves_per_period: int = 500  # a count, not a quantity
    fill_fraction: float = 0.9
