"""Fixture: compliant unit arithmetic (same unit, or explicit conversion)."""


def total(delay_s: float, timeout_s: float) -> float:
    return delay_s + timeout_s


def converted(delay_s: float, timeout_ms: float) -> float:
    timeout_s = timeout_ms / 1000.0
    return delay_s + timeout_s


def energy(power_watts: float, window_s: float) -> float:
    # Multiplication across units is the point: W x s = J.
    return power_watts * window_s
