"""Bad: module-level mutable state in result-producing code.

Every run in the process shares these containers, and none of them is
part of any cache key — results come to depend on what ran before.
"""

seen_runs = {}

pending: list = []

request_cache = dict()
