"""Fixture: OBS001 violation (counter increment with no paired emit)."""


class Policy:
    def __init__(self, metrics):
        self.metrics = metrics

    def on_epoch(self):
        self.metrics.counter("epochs").inc()  # OBS001: nothing emitted
