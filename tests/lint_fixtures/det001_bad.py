"""Fixture: DET001 violations (unseeded numpy RNGs)."""

import numpy as np


def unseeded():
    rng = np.random.default_rng()  # DET001: no seed
    return rng.random()


def global_state():
    return np.random.random()  # DET001: hidden global RNG


def unseeded_bit_generator():
    return np.random.Generator(np.random.PCG64())  # DET001: no seed
