"""Fixture: compliant time handling (simulated clock + suppression)."""

import time


def simulated(engine):
    return engine.now


def instrumented():
    return time.perf_counter()  # repro: lint-ok[DET003] fixture instrumentation
