"""Bad: a dispatched command with no ``docs/serve.md`` entry.

``ping`` is documented; ``reset-epoch`` is not — operators reading the
serve docs cannot discover it.
"""


class Daemon:
    def _cmd_ping(self, request):
        return {"pong": True}

    def _cmd_reset_epoch(self, request):
        return {}

    def _dispatch(self, cmd, request):
        handler = {
            "ping": self._cmd_ping,
            "reset-epoch": self._cmd_reset_epoch,
        }[cmd]
        return handler(request)
