"""Fixture: compliant cache_key coverage (every field referenced)."""

from dataclasses import dataclass
from typing import Any, ClassVar


@dataclass
class Spec:
    name: str
    params: dict
    retries: int = 3
    SCHEMA: ClassVar[int] = 1  # ClassVar: not part of the value

    def cache_key(self) -> dict[str, Any]:
        return {"name": self.name, "params": self.params, "retries": self.retries}


@dataclass
class PlainSpec:
    # No cache_key at all: canonicalized field-by-field, nothing to check.
    name: str
    retries: int = 3
