"""Bad: unpicklable callables smuggled into process fan-outs.

Both fail only at fan-out time, on a worker, with a pickle traceback
that points nowhere near this file.
"""

from repro.analysis.parallel import execute
from repro.fleet.spec import FleetSpec


def fanout_with_lambda(specs):
    return execute(specs, key=lambda spec: spec.seed)


def fleet_with_local_def(num_arrays):
    def pick_policy(array_index):
        return "pdc"

    return FleetSpec(num_arrays=num_arrays, policy=pick_policy)
