"""Fixture: DET004 violations (iteration over bare sets)."""


def literal():
    total = 0
    for x in {3, 1, 2}:  # DET004
        total += x
    return total


def annotated(pending: set[int]):
    return [x * 2 for x in pending]  # DET004


def materialize():
    failed = set()
    failed.add(1)
    return list(failed)  # DET004
