"""Fixture: compliant stdlib randomness (seeded instance)."""

import random


def pick(items, seed: int):
    rng = random.Random(seed)
    return rng.choice(items)
