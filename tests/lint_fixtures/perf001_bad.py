"""Fixture: PERF001 violations (using a fast-schedule return value)."""


def keep_handle(engine, cb):
    handle = engine.schedule_fast(1.0, cb)  # PERF001
    return handle


def return_it(engine, cb):
    return engine.schedule_after_fast(0.5, cb)  # PERF001


def pass_it_on(engine, timers, cb):
    timers.append(engine.schedule_fast(2.0, cb))  # PERF001
