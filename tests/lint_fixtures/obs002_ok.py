"""Fixture: compliant guarded emits (hook or holder tested)."""


class Source:
    def __init__(self, emit, sink):
        self.emit = emit
        self.sink = sink

    def fire(self, event):
        if self.emit is not None:
            self.emit(event)

    def conjoined(self, event, important):
        if important and self.emit is not None:
            self.emit(event)

    def via_holder(self, event):
        if self.sink is not None:
            self.sink.emit(event)
