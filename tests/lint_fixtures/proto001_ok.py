"""Ok: every dispatched command is declared and client-drivable."""

COMMANDS = ("ping", "set-goal")


class ServeClient:
    def ping(self):
        return {}

    def set_goal(self, goal_s):
        return {}


class Daemon:
    def _cmd_ping(self, request):
        return {"pong": True}

    def _cmd_set_goal(self, request):
        return {}

    def _dispatch(self, cmd, request):
        handler = {
            "ping": self._cmd_ping,
            "set-goal": self._cmd_set_goal,
        }[cmd]
        return handler(request)
