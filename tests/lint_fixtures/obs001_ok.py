"""Fixture: compliant counter/trace pairing (direct and via a callee)."""


class Executor:
    def __init__(self, emit):
        self.emit = emit

    def start(self, plan):
        if self.emit is not None:
            self.emit(plan)


class Policy:
    def __init__(self, metrics, executor, emit):
        self.metrics = metrics
        self.executor = executor
        self.emit = emit

    def on_epoch(self):
        self.metrics.counter("epochs").inc()
        if self.emit is not None:
            self.emit("epoch")

    def on_period(self, plan):
        # No direct emit; the callee carries the guarded emit.
        self.metrics.counter("periods").inc()
        self.executor.start(plan)
