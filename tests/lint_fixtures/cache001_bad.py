"""Fixture: CACHE001 violation (field missing from cache_key)."""

from dataclasses import dataclass
from typing import Any


@dataclass
class Spec:
    name: str
    params: dict
    retries: int = 3  # CACHE001: never reaches cache_key

    def cache_key(self) -> dict[str, Any]:
        return {"name": self.name, "params": self.params}
