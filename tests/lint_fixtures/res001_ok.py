"""Ok: every acquired resource has a release path RES001 recognizes."""

import socket

from repro.obs.tracelog import JsonlWriter


def with_block(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def finally_close(address):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.connect(address)
        sock.sendall(b"ping\n")
    finally:
        sock.close()


def ownership_transfer(address):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.bind(address)
    return sock


class TraceSink:
    def __init__(self, path):
        self._writer = JsonlWriter(path)

    def close(self):
        self._writer.close()
