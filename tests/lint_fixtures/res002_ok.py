"""Ok: writes are atomic — temp file in the target directory, then
``os.replace`` — or go through the blessed helper."""

import json
import os
import tempfile

from repro.analysis.atomicio import atomic_write


def save_result(doc, path):
    with atomic_write(path) as fh:
        json.dump(doc, fh)


def save_by_hand(text, path):
    fd, tmp = tempfile.mkstemp(dir=".")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def read_result(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
