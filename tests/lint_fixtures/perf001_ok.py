"""Fixture: compliant fast-path scheduling (result discarded) and
handle-keeping via the cancellable API."""


def fire_and_forget(engine, cb, op):
    engine.schedule_fast(1.0, cb, (op,))
    engine.schedule_after_fast(0.5, cb)


def cancellable(engine, cb):
    handle = engine.schedule(1.0, cb)
    return handle
