"""Ok: import-time registries named as constants, state kept local."""

DISCIPLINES = {"fcfs": object(), "elevator": object()}

_PARTITIONERS: dict = {}

__all__ = ["DISCIPLINES"]


def fresh_state():
    pending: list = []
    return {"pending": pending}
