"""Bad: resources acquired with no visible release path.

Each function leaks: the socket stays open after the send, the file
handle is dropped once read, the writer has no owner that closes it.
"""

import socket

from repro.obs.tracelog import JsonlWriter


def leaky_probe(address):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(address)
    sock.sendall(b"ping\n")
    return True


def leaky_read(path):
    handle = open(path, encoding="utf-8")
    return handle.read()


def leaky_trace(path, events):
    writer = JsonlWriter(path)
    for event in events:
        writer.write(event)
