"""Bad: online mutators invoked from inside the step loop.

An engine callback or policy hook calling a mutator makes the result
depend on event interleaving — exactly the nondeterminism the serve
layer's dispatch boundary exists to prevent.
"""


def on_engine_step(sim, now):
    if now > 100.0:
        sim.set_goal(0.5)


class AdaptivePolicy:
    def epoch_hook(self, sim, requests):
        for request in requests:
            sim.inject_request(request)
