"""Fixture: UNIT001 violations (mixed-unit arithmetic)."""


def total(delay_s: float, timeout_ms: float) -> float:
    return delay_s + timeout_ms  # UNIT001: s + ms


def overload(power_watts: float, budget_joules: float) -> bool:
    return power_watts > budget_joules  # UNIT001: W vs J


def accumulate(idle_s: float, grace_ms: float) -> float:
    idle_s += grace_ms  # UNIT001: s += ms
    return idle_s
