"""Ok: every dispatched command has a ``docs/serve.md`` entry."""


class Daemon:
    def _cmd_ping(self, request):
        return {"pong": True}

    def _cmd_status(self, request):
        return {}

    def _dispatch(self, cmd, request):
        handler = {
            "ping": self._cmd_ping,
            "status": self._cmd_status,
        }[cmd]
        return handler(request)
