"""Fixture: compliant numpy RNG use (seeded, spawned)."""

import numpy as np


def seeded(seed: int):
    rng = np.random.default_rng(seed)
    return rng.random()


def spawned(seed: int, n: int):
    children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(child) for child in children]


def explicit_bit_generators(seed: int):
    # Seeded BitGenerator construction is deterministic, like
    # random.Random(seed) under DET002.
    return (
        np.random.Generator(np.random.PCG64(seed)),
        np.random.Generator(np.random.Philox(key=seed)),
    )
