"""Fixture: compliant numpy RNG use (seeded, spawned)."""

import numpy as np


def seeded(seed: int):
    rng = np.random.default_rng(seed)
    return rng.random()


def spawned(seed: int, n: int):
    children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(child) for child in children]
