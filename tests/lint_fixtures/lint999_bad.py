"""Bad: this file does not parse — the engine must surface it as a
LINT999 finding with a path:line, never crash the run."""


def broken(:
    pass
