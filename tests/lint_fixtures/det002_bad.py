"""Fixture: DET002 violations (stdlib global RNG)."""

import random
from random import shuffle


def pick(items):
    return random.choice(items)  # DET002


def mix(items):
    shuffle(items)  # DET002 via from-import
    return items
