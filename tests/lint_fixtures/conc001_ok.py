"""Ok: mutators only from command dispatch, ingest, or peer mutators."""


class Daemon:
    def _cmd_set_goal(self, request):
        self.sim.set_goal(request["goal_s"])
        return {}

    def _cmd_inject_fault(self, request):
        self.sim.inject_faults(request["plan"])
        return {}

    def _ingest_line(self, line):
        self.sim.inject_request(line)
        return {}


class OnlineSim:
    def set_goal(self, goal_s):
        # Delegation between mutators is the one non-dispatch caller
        # that is always safe: the outer call already crossed the
        # dispatch boundary.
        self.policy.set_goal(goal_s)
