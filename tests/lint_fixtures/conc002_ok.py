"""Ok: fan-out arguments are module-level (picklable) or plain data."""

from repro.analysis.parallel import execute
from repro.fleet.spec import FleetSpec


def spec_seed(spec):
    return spec.seed


def fanout_with_function(specs):
    return execute(specs, key=spec_seed)


def fleet_with_registry_name(num_arrays):
    return FleetSpec(num_arrays=num_arrays, policy="pdc")
