"""Fixture: compliant set consumption (sorted / order-insensitive)."""


def ordered(pending: set[int]):
    return [x * 2 for x in sorted(pending)]


def aggregate(failed: set[int]):
    return len(failed), min(failed), any(x > 3 for x in sorted(failed))
