"""Unit tests for heat tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.temperature import HeatTracker


def test_first_epoch_seeds_directly():
    h = HeatTracker(4, smoothing=0.5)
    h.record(0)
    h.record(0)
    h.record(2)
    heat = h.close_epoch(2.0)
    assert heat[0] == pytest.approx(1.0)
    assert heat[2] == pytest.approx(0.5)
    assert heat[1] == 0.0


def test_smoothing_blends_history():
    h = HeatTracker(2, smoothing=0.5)
    h.record(0)
    h.close_epoch(1.0)   # heat[0] = 1.0
    h.record(1)
    heat = h.close_epoch(1.0)
    assert heat[0] == pytest.approx(0.5)       # decayed
    assert heat[1] == pytest.approx(0.5)       # half of new rate 1.0


def test_zero_smoothing_follows_last_epoch():
    h = HeatTracker(2, smoothing=0.0)
    h.record(0)
    h.close_epoch(1.0)
    h.record(1)
    heat = h.close_epoch(1.0)
    assert heat[0] == 0.0
    assert heat[1] == 1.0


def test_write_weight():
    h = HeatTracker(2, write_weight=2.0)
    h.record(0, is_write=True)
    h.record(1, is_write=False)
    heat = h.close_epoch(1.0)
    assert heat[0] == pytest.approx(2 * heat[1])


def test_record_bulk_matches_loop():
    a = HeatTracker(8)
    b = HeatTracker(8)
    extents = np.array([1, 1, 3, 5, 5, 5])
    writes = np.array([True, False, False, True, False, False])
    for e, w in zip(extents, writes):
        a.record(int(e), is_write=bool(w))
    b.record_bulk(extents, writes)
    assert np.allclose(a.close_epoch(1.0), b.close_epoch(1.0))


def test_record_bulk_without_mask():
    h = HeatTracker(4)
    h.record_bulk(np.array([0, 0, 3]))
    heat = h.close_epoch(1.0)
    assert heat[0] == 2.0 and heat[3] == 1.0


def test_hottest_first_order():
    h = HeatTracker(4)
    for _ in range(3):
        h.record(2)
    h.record(0)
    h.close_epoch(1.0)
    order = h.hottest_first()
    assert order[0] == 2
    assert order[1] == 0
    # Ties broken by id (stable).
    assert list(order[2:]) == [1, 3]


def test_total_heat_is_rate():
    h = HeatTracker(4)
    for _ in range(10):
        h.record(1)
    h.close_epoch(5.0)
    assert h.total_heat == pytest.approx(2.0)


def test_prime():
    h = HeatTracker(3)
    h.prime(np.array([1.0, 2.0, 3.0]))
    assert h.epochs_folded >= 1
    assert list(h.hottest_first()) == [2, 1, 0]


def test_prime_validation():
    h = HeatTracker(3)
    with pytest.raises(ValueError):
        h.prime(np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        h.prime(np.array([1.0, -2.0, 3.0]))


def test_constructor_validation():
    with pytest.raises(ValueError):
        HeatTracker(0)
    with pytest.raises(ValueError):
        HeatTracker(4, smoothing=1.0)
    with pytest.raises(ValueError):
        HeatTracker(4, write_weight=0.0)


def test_close_epoch_validation():
    with pytest.raises(ValueError):
        HeatTracker(4).close_epoch(0.0)


def test_window_reset_after_close():
    h = HeatTracker(2)
    h.record(0)
    h.close_epoch(1.0)
    heat = h.close_epoch(1.0)  # empty epoch halves the heat
    assert heat[0] == pytest.approx(0.5)
