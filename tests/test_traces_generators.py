"""Unit tests for the OLTP and Cello99-style generators: each must show
the first-order characteristics the substitution note promises."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.cello import CelloConfig, diurnal_envelope, generate_cello
from repro.traces.oltp import OltpConfig, generate_oltp


class TestOltp:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_oltp(OltpConfig(duration=1800.0, rate=300.0,
                                        num_extents=600, seed=2))

    def test_steady_rate(self, trace):
        """OLTP has no diurnal valley: hourly windows stay near the mean."""
        counts, _ = np.histogram(trace.times, bins=6, range=(0, 1800))
        rates = counts / 300.0
        assert rates.min() > 0.85 * rates.mean()
        assert rates.max() < 1.15 * rates.mean()

    def test_read_mostly(self, trace):
        assert trace.read_fraction == pytest.approx(0.66, abs=0.02)

    def test_small_requests(self, trace):
        assert set(np.unique(trace.sizes)) == {4096, 8192}
        assert trace.sizes.mean() < 6000

    def test_popularity_skewed(self, trace):
        counts = np.bincount(trace.extents, minlength=600)
        top = np.sort(counts)[::-1]
        top10_share = top[:60].sum() / counts.sum()
        assert top10_share > 0.35  # hot tenth carries well over its share

    def test_reproducible(self):
        cfg = OltpConfig(duration=60.0, seed=4)
        a, b = generate_oltp(cfg), generate_oltp(cfg)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.extents, b.extents)

    def test_default_config(self):
        trace = generate_oltp(OltpConfig(duration=120.0))
        assert trace.name == "oltp"
        assert len(trace) > 0


class TestCello:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_cello(CelloConfig(days=1.0, day_rate=80.0, night_rate=4.0,
                                          num_extents=600, seed=3))

    def test_diurnal_valley(self, trace):
        """Night-time (around peak_hour + 12h) must be far quieter than
        the daytime peak — the energy opportunity the generator exists
        to model."""
        hours = trace.times / 3600.0
        counts, _ = np.histogram(hours, bins=24, range=(0, 24))
        assert counts.min() < 0.25 * counts.max()

    def test_peak_near_configured_hour(self, trace):
        hours = trace.times / 3600.0
        counts, _ = np.histogram(hours, bins=24, range=(0, 24))
        peak_hour = int(np.argmax(counts))
        assert abs(peak_hour - 14) <= 2

    def test_mixed_sizes(self, trace):
        assert len(np.unique(trace.sizes)) >= 3
        assert trace.sizes.max() >= 65536

    def test_multiday_drift(self):
        """The hot set must move between days."""
        cfg = CelloConfig(days=2.0, day_rate=60.0, night_rate=5.0,
                          num_extents=400, drift_per_day=0.2, seed=7)
        trace = generate_cello(cfg)
        day1 = trace.slice_time(0, 86400.0)
        day2 = trace.slice_time(86400.0, 2 * 86400.0)
        c1 = np.bincount(day1.extents, minlength=400)
        c2 = np.bincount(day2.extents, minlength=400)
        top1 = set(np.argsort(c1)[-40:])
        top2 = set(np.argsort(c2)[-40:])
        assert len(top1 & top2) < 40  # not identical hot sets

    def test_reproducible(self):
        cfg = CelloConfig(days=0.05, seed=5)
        a, b = generate_cello(cfg), generate_cello(cfg)
        assert np.array_equal(a.times, b.times)

    def test_burstiness(self):
        """With bursts on, short-window rate variance must exceed the
        Poisson baseline."""
        quiet = CelloConfig(days=0.2, day_rate=100.0, night_rate=100.0,
                            burst_fraction=0.0, seed=11)
        bursty = CelloConfig(days=0.2, day_rate=100.0, night_rate=100.0,
                             burst_fraction=0.4, burst_intensity=3.0, seed=11)
        def window_cv(trace):
            counts, _ = np.histogram(trace.times, bins=100,
                                     range=(0, 0.2 * 86400))
            return counts.std() / counts.mean()
        assert window_cv(generate_cello(bursty)) > 1.5 * window_cv(generate_cello(quiet))

    def test_validation(self):
        with pytest.raises(ValueError):
            CelloConfig(day_rate=10.0, night_rate=20.0)
        with pytest.raises(ValueError):
            CelloConfig(burst_fraction=1.5)
        with pytest.raises(ValueError):
            CelloConfig(burst_intensity=0.5)


def test_diurnal_envelope_bounds():
    cfg = CelloConfig(day_rate=100.0, night_rate=10.0)
    rate = diurnal_envelope(cfg)
    t = np.linspace(0, 86400, 1000)
    values = rate(t)
    assert values.max() == pytest.approx(100.0, rel=0.01)
    assert values.min() == pytest.approx(10.0, rel=0.01)
    peak_t = t[np.argmax(values)]
    assert peak_t / 3600 == pytest.approx(14.0, abs=0.2)
